//! Quickstart: two parties privately intersect their customer lists.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Party `S` (a supplier) and party `R` (a retailer) each hold a set of
//! customer emails. They want the common customers — and nothing else:
//! `R` must not learn `S`'s other customers, `S` must not learn `R`'s
//! list at all (only its size). This is the paper's §3.3 intersection
//! protocol.

use minshare::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Agree on public parameters: a safe-prime group. Real deployments
    //    use the 1024-bit group the paper's analysis assumes (or larger);
    //    the demo uses it too — it is just a constant.
    let group = QrGroup::well_known(1024).expect("bundled RFC group");
    println!(
        "group: {}-bit safe prime (RFC 2409 Oakley group 2)",
        group.codeword_bits()
    );

    // 2. Each party's private input.
    let supplier: Vec<Vec<u8>> = [
        "ana@example.com",
        "bob@example.com",
        "carol@example.com",
        "dave@example.com",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();
    let retailer: Vec<Vec<u8>> = ["carol@example.com", "dave@example.com", "erin@example.com"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();

    // 3. Run the protocol: both parties on threads over an in-memory,
    //    byte-counted link.
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(0x5eed_0001);
            intersection::run_sender(t, &group, &supplier, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(0x5eed_0002);
            intersection::run_receiver(t, &group, &retailer, &mut rng)
        },
    )
    .expect("protocol run");

    // 4. What each side learned.
    println!("\nretailer (R) learned:");
    println!("  common customers:");
    for v in &run.receiver.intersection {
        println!("    {}", String::from_utf8_lossy(v));
    }
    println!("  |V_S| = {}", run.receiver.peer_set_size);
    println!("\nsupplier (S) learned:");
    println!("  |V_R| = {}", run.sender.peer_set_size);

    // 5. The §6.1 cost accounting, verified live.
    let total_ce = run.sender.ops.total_ce() + run.receiver.ops.total_ce();
    println!("\ncosts:");
    println!(
        "  exponentiations: {total_ce} (formula 2(|V_S|+|V_R|) = {})",
        2 * (supplier.len() + retailer.len())
    );
    println!("  wire traffic   : {} bits", run.total_bits());
    assert_eq!(
        run.receiver.intersection,
        vec![b"carol@example.com".to_vec(), b"dave@example.com".to_vec()]
    );
    println!("\nOK — intersection correct, nothing else revealed.");
}
