//! Why the straw-man of §3.1 fails — and why the real protocol doesn't.
//!
//! ```text
//! cargo run --example broken_protocol
//! ```
//!
//! The "obvious" private intersection — hash your values with a public
//! hash and exchange the hashes — computes the right answer but reveals
//! far more: the receiver can hash *candidate* values offline and probe
//! the sender's set. Over a small domain (ages, zip codes, SSNs, DNA
//! markers) that recovers the whole set. The paper's fix is to make the
//! "hash" keyed and *commutative*, so neither side can evaluate it alone.

use minshare::naive;
use minshare::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The sender's secret: ages of patients in a trial (domain 0..120!).
    let secret_ages: Vec<u8> = vec![23, 42, 57, 61, 88];
    let vs: Vec<Vec<u8>> = secret_ages.iter().map(|a| vec![*a]).collect();
    // The receiver legitimately holds just one overlapping record.
    let vr: Vec<Vec<u8>> = vec![vec![42u8]];

    println!("=== naive hash protocol (§3.1) ===");
    let (intersection, transcript) = naive::naive_intersection(&vs, &vr);
    println!(
        "protocol answer: {} common value(s) — correct",
        intersection.len()
    );

    // The honest-but-curious receiver now sweeps the domain.
    let domain: Vec<Vec<u8>> = (0u8..=120).map(|a| vec![a]).collect();
    let recovered = naive::dictionary_attack(&transcript, domain.iter().map(|d| d.as_slice()));
    println!(
        "dictionary attack over ages 0..=120 recovered {} of {} secret values:",
        recovered.len(),
        vs.len()
    );
    for v in &recovered {
        println!("  age {}", v[0]);
    }
    assert_eq!(recovered.len(), vs.len(), "the attack recovers everything");

    println!("\n=== fixed protocol (§3.3, commutative encryption) ===");
    let group = QrGroup::well_known(768).expect("bundled group");
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            intersection::run_sender(t, &group, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(2);
            intersection::run_receiver(t, &group, &vr, &mut rng)
        },
    )
    .expect("protocol run");
    println!(
        "protocol answer: {} common value(s) — also correct",
        run.receiver.intersection.len()
    );
    println!(
        "but now R's view is Y_S = f_eS(h(V_S)): {} random-looking {}-bit codewords.",
        run.receiver.peer_set_size,
        group.codeword_bits()
    );
    println!("Hashing a candidate value is useless without S's key e_S —");
    println!("Statement 2 of the paper proves R's whole view is simulatable from");
    println!("the answer alone (under DDH, in the random-oracle model).");
}
