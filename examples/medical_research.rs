//! Medical research (§1.1 Application 2, Figure 2, §6.2.2).
//!
//! ```text
//! cargo run --example medical_research
//! ```
//!
//! A researcher tests whether DNA pattern `D` correlates with adverse
//! reactions to drug `G`. Enterprise `R` knows who carries the pattern;
//! enterprise `S` knows who took the drug and who reacted. The
//! researcher gets the 2×2 contingency table — the enterprises learn
//! nothing about individuals, and the researcher sees only four counts.

use minshare::apps::medical;
use minshare_crypto::QrGroup;
use minshare_privdb::query;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x3d1c);
    let group = QrGroup::generate(&mut rng, 96).expect("group generation");

    // Synthetic population: 200 people, pattern prevalence 30%, drug
    // uptake 55%, and a planted correlation — carriers react with
    // probability 0.8, others with 0.1.
    let (tr, ts) = medical::synthetic_study(&mut rng, 200, 0.30, 0.55, 0.80, 0.10).expect("synthetic study");
    println!(
        "TR holds {} DNA records; TS holds {} prescription records",
        tr.len(),
        ts.len()
    );

    // The private computation: Figure 2's four three-party
    // intersection-size runs.
    let (counts, cost) = medical::run_medical_study(&group, &tr, &ts, 42).expect("study");

    println!("\nresearcher's contingency table (drug takers only):");
    println!("                 reaction   no-reaction");
    println!(
        "  pattern      {:>8}   {:>11}",
        counts.counts[1][1], counts.counts[1][0]
    );
    println!(
        "  no pattern   {:>8}   {:>11}",
        counts.counts[0][1], counts.counts[0][0]
    );

    // Ground truth — what a trusted third party would have computed with
    // the SQL query of §1.1.
    let clear = medical::medical_counts_in_clear(&tr, &ts).expect("oracle");
    assert_eq!(counts, clear);
    println!("\nOK — private counts equal the clear-text SQL result:");
    println!("  select pattern, reaction, count(*)");
    println!("  from TR, TS");
    println!("  where TR.personid = TS.personid and TS.drug = true");
    println!("  group by TR.pattern, TS.reaction");

    // Show the relational substrate run of the same query.
    let joined = query::equijoin(&tr, "personid", &ts, "personid").expect("join");
    let drug_idx = joined.schema().index_of("drug").expect("column");
    let took = joined.filter("took", |row| {
        row[drug_idx] == minshare_privdb::Value::Bool(true)
    });
    let table = query::group_by_count(&took, &["pattern", "reaction"]).expect("group");
    println!("\nclear-text result set ({} groups):", table.len());
    for row in table.rows() {
        println!("  pattern={} reaction={} count={}", row[0], row[1], row[2]);
    }

    println!(
        "\ncosts: {} exponentiations, {} bits across all three links",
        cost.ops.total_ce(),
        cost.total_bits
    );
    let odds_ratio = (counts.counts[1][1] as f64 * counts.counts[0][0] as f64)
        / (counts.counts[1][0] as f64 * counts.counts[0][1] as f64).max(1.0);
    println!("odds ratio ≈ {odds_ratio:.1} — the planted correlation is visible in counts alone");
}
