//! Selective document sharing (§1.1 Application 1, §6.2.1).
//!
//! ```text
//! cargo run --example document_sharing
//! ```
//!
//! Enterprise `R` is shopping for technology; enterprise `S` holds
//! unpublished intellectual property. Neither wants to reveal its
//! portfolio. Both preprocess their documents to significant words
//! (TF-IDF) and run one intersection-size protocol per document pair;
//! only pair similarities — not word sets — are disclosed.

use minshare::apps::docshare;
use minshare_crypto::QrGroup;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xd0c);
    // A small group keeps the demo fast; the protocol is identical at
    // 1024 bits.
    let group = QrGroup::generate(&mut rng, 96).expect("group generation");

    // Synthetic corpora with two genuinely overlapping "technologies".
    let mut r_corpus = docshare::synthetic_corpus(&mut rng, "shopping-", 3, 400, 60);
    let mut s_corpus = docshare::synthetic_corpus(&mut rng, "patent-", 4, 400, 60);
    // Plant a shared topic: documents shopping-0 and patent-2 share
    // vocabulary about "solid-state batteries".
    let topic: Vec<String> = (0..30).map(|i| format!("battery-term-{i}")).collect();
    r_corpus[0].words.extend(topic.iter().cloned());
    s_corpus[2].words.extend(topic.iter().cloned());

    // TF-IDF preprocessing, as the paper prescribes (citing Salton &
    // McGill): keep each document's 40 most significant words.
    let r_docs = docshare::significant_words(&r_corpus, 40);
    let s_docs = docshare::significant_words(&s_corpus, 40);
    println!(
        "prepared {} shopping-list docs × {} patent docs ({} words each)",
        r_docs.len(),
        s_docs.len(),
        40
    );

    // The private similarity join: f = |d_R ∩ d_S| / (|d_R| + |d_S|) > τ.
    let threshold = 0.15;
    let report = docshare::similarity_join(&group, &r_docs, &s_docs, threshold, &mut rng)
        .expect("similarity join");

    println!(
        "\nran {} intersection-size protocols ({} exponentiations, {} bits on the wire)",
        report.protocol_runs,
        report.total_ops.total_ce(),
        report.total_bits
    );
    println!("\nmatches above τ = {threshold}:");
    for m in &report.matches {
        println!(
            "  {} ≈ {}  (overlap {} words, score {:.3})",
            m.r_id, m.s_id, m.overlap, m.score
        );
    }

    // Sanity: the private result equals the clear-text computation.
    let clear = docshare::similarity_join_in_clear(&r_docs, &s_docs, threshold);
    assert_eq!(report.matches, clear);
    println!("\nOK — private matches equal the clear-text similarity join.");

    // Phase two (the paper's motivation): reveal information about the
    // matched technologies only, via one equijoin keyed by document id.
    let s_contents: Vec<(String, Vec<u8>)> = s_corpus
        .iter()
        .map(|d| {
            (
                d.id.clone(),
                format!("FULL TEXT of {} ({} words)", d.id, d.words.len()).into_bytes(),
            )
        })
        .collect();
    let fetched =
        docshare::exchange_matched_documents(&group, &report.matches, &s_contents, &mut rng)
            .expect("document exchange");
    println!("\nphase two — contents received for matched documents only:");
    for (id, contents) in &fetched {
        println!("  {id}: {}", String::from_utf8_lossy(contents));
    }
    assert_eq!(fetched.len(), report.matches.len());
    println!(
        "\nS's other {} documents never crossed the wire in any readable form.",
        s_contents.len() - fetched.len()
    );
}
