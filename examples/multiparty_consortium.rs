//! N-party intersection size: a consortium finds how many customers all
//! of its members share — no member reveals its list to anyone.
//!
//! ```text
//! cargo run --release --example multiparty_consortium
//! ```
//!
//! Five banks want the size of their common-customer pool (say, to scope
//! a joint fraud investigation) without any bank disclosing its customer
//! base. The two-party §5.1 protocol generalizes to a ring: every list
//! collects one commutative-encryption layer per bank (re-sorted at each
//! hop so positions unlink), and the collector counts the codewords
//! common to all fully-encrypted lists.

use minshare::multiparty::multiparty_intersection_size;
use minshare_crypto::QrGroup;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(0xc0504);
    let group = QrGroup::generate(&mut rng, 96).expect("group generation");

    // Synthetic customer bases: ~10k universe, each bank holds a few
    // hundred customers, with a planted common core.
    let n_banks = 5;
    let core: Vec<Vec<u8>> = (0..37u32)
        .map(|i| format!("core-customer-{i}").into_bytes())
        .collect();
    let mut sets = Vec::new();
    for b in 0..n_banks {
        let mut customers = core.clone();
        for _ in 0..200 {
            customers.push(format!("cust-{}", rng.random_range(0..10_000u32)).into_bytes());
        }
        println!("bank {b}: {} customer records (private)", customers.len());
        sets.push(customers);
    }

    let run = multiparty_intersection_size(&group, &sets, 99).expect("protocol run");

    println!(
        "\nconsortium learned: {} customers common to all {n_banks} banks",
        run.intersection_size
    );
    println!("per-bank set sizes disclosed: {:?}", run.set_sizes);
    println!(
        "costs: {} exponentiations total, {} bits across the ring",
        run.ops.total_ce(),
        run.total_bits
    );

    // Oracle: the random extras collide with the core only if a random
    // "cust-N" string happens to be shared by *all five* banks — compute
    // the true intersection in the clear to check.
    let mut common: std::collections::BTreeSet<Vec<u8>> = sets[0].iter().cloned().collect();
    for s in &sets[1..] {
        let set: std::collections::BTreeSet<&Vec<u8>> = s.iter().collect();
        common.retain(|v| set.contains(v));
    }
    assert_eq!(run.intersection_size, common.len());
    println!(
        "\nOK — matches the clear-text N-way intersection ({} values).",
        common.len()
    );
    println!("Each bank saw only encrypted, re-sorted lists passing through the ring.");
}
