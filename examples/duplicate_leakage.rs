//! The §5.2 equijoin-size leak, made visible.
//!
//! ```text
//! cargo run --example duplicate_leakage
//! ```
//!
//! The equijoin-size protocol works on multisets, and the paper is
//! candid that it leaks more than the join size: each side learns the
//! other's duplicate distribution, and `R` learns how many of its values
//! in each duplicate class matched each of `S`'s classes. This example
//! runs the protocol on two contrived workloads — one where the leak is
//! harmless (uniform duplicates) and one where it identifies every
//! matching value (all duplicate counts distinct).

use minshare::leakage;
use minshare::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_case(group: &QrGroup, label: &str, vs: &[&str], vr: &[&str]) {
    let vs_bytes: Vec<Vec<u8>> = vs.iter().map(|s| s.as_bytes().to_vec()).collect();
    let vr_bytes: Vec<Vec<u8>> = vr.iter().map(|s| s.as_bytes().to_vec()).collect();
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            equijoin_size::run_sender(t, group, &vs_bytes, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(2);
            equijoin_size::run_receiver(t, group, &vr_bytes, &mut rng)
        },
    )
    .expect("protocol run");

    println!("--- {label} ---");
    println!("V_S (multiset): {vs:?}");
    println!("V_R (multiset): {vr:?}");
    println!("join size learned by R: {}", run.receiver.join_size);
    println!(
        "S learned R's duplicate distribution: {:?}",
        run.sender.peer_duplicate_distribution
    );
    println!(
        "R learned S's duplicate distribution: {:?}",
        run.receiver.peer_duplicate_distribution
    );
    println!("R's class-intersection matrix (dup_R, dup_S) → count:");
    for (k, v) in &run.receiver.class_intersections {
        println!("  ({}, {}) → {}", k.0, k.1, v);
    }
    let expected = leakage::expected_class_intersections(&vr_bytes, &vs_bytes);
    assert_eq!(run.receiver.class_intersections, expected);
    let frac = leakage::identifiable_match_fraction(&vr_bytes, &vs_bytes);
    println!("fraction of matches R can uniquely identify: {frac:.2}");
    println!();
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xd0b);
    let group = QrGroup::generate(&mut rng, 96).expect("group generation");

    // Case 1 (the paper's benign extreme): no duplicates anywhere.
    // "If all values have the same number of duplicates, R only learns
    // |V_R ∩ V_S|."
    run_case(
        &group,
        "uniform duplicates — leak degenerates to the intersection size",
        &["a", "b", "c", "d"],
        &["b", "c", "e"],
    );

    // Case 2 (the paper's warning): every value has a distinct duplicate
    // count. "At the other extreme, if no two values have the same number
    // of duplicates, R will learn V_R ∩ V_S."
    run_case(
        &group,
        "distinct duplicate counts — R pinpoints every matching value",
        &["x", "y", "y", "z", "z", "z"],
        &["x", "y", "y", "y", "y", "z", "z", "z", "z", "z"],
    );

    // Case 3: a mixed workload.
    run_case(
        &group,
        "mixed workload",
        &["p", "p", "q", "r", "r", "s"],
        &["p", "q", "q", "r", "r", "t"],
    );

    println!("OK — the protocol's observable leak matches the §5.2 characterization exactly.");
}
