//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `Criterion` / `BenchmarkGroup` / `Bencher` surface the
//! minshare benches use, with a simple wall-clock measurement loop (a
//! short warm-up to pick an iteration count, then `sample_size` timed
//! samples reporting the median per-iteration time). There is no
//! statistical analysis, plotting, or baseline comparison — just honest
//! numbers on stderr so `cargo bench` works offline.

use std::time::{Duration, Instant};

/// True when the harness was invoked as `cargo bench -- --test`: each
/// routine runs exactly once (a smoke test) instead of being timed.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`-style calls: plain strings or ids.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure.
pub struct Bencher {
    samples: usize,
    result: Option<Duration>,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // Smoke run: execute once so panics/assertions still fire.
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: find an iteration count lasting ≥ ~5 ms per sample.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        per_iter.sort();
        self.result = Some(per_iter[per_iter.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates following benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Runs one benchmark with an auxiliary input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (provided for API parity; no-op).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Overrides the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(id.into_label(), sample_size, None, |b| f(b));
        self
    }
}

fn run_one(
    label: String,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        result: None,
        test_mode: test_mode(),
    };
    f(&mut bencher);
    if bencher.test_mode {
        eprintln!("bench: {label:<50} ok (--test smoke run)");
        return;
    }
    match bencher.result {
        Some(median) => {
            let extra = match throughput {
                Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                    format!(
                        "  ({:.0} elem/s)",
                        n as f64 / median.as_secs_f64()
                    )
                }
                Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                    format!("  ({:.1} MiB/s)", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
                }
                _ => String::new(),
            };
            eprintln!("bench: {label:<50} median {median:>12.2?}{extra}");
        }
        None => eprintln!("bench: {label:<50} (no measurement)"),
    }
}

/// Declares the benchmark entry list for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1));
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function(BenchmarkId::new("top", "x"), |b| b.iter(|| ()));
    }
}
