//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (marker traits plus, with
//! the `derive` feature, the no-op derive macros from the sibling
//! `serde_derive` stub). No serialization format ships in this workspace,
//! so marker-level fidelity is sufficient for the cost-model structs that
//! carry the derives.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
