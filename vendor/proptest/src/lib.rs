//! Offline stand-in for the `proptest` crate.
//!
//! Implements, from scratch, the subset of the proptest API that the
//! minshare property suites use: the [`strategy::Strategy`] trait with
//! `prop_map`/`boxed`, `any::<T>()`, integer-range and character-class
//! string strategies, tuple and [`collection::vec`] composition,
//! weighted [`prop_oneof!`], and the [`proptest!`] test macro with
//! `prop_assert*!`/`prop_assume!` and `#![proptest_config]`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), there is no shrinking,
//! and failures report the raw assertion panic. That trades debugging
//! convenience for a zero-dependency offline build; the generated
//! distributions cover the same domains the tests were written against.

pub mod strategy {
    use rand::Rng;

    /// The RNG handed to strategies. A deterministic xoshiro generator.
    pub type TestRng = rand::rngs::StdRng;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Combinator returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Types with a canonical whole-domain strategy ([`any`]).
    pub trait Arbitrary {
        /// Draws a uniform value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy form of [`Arbitrary`], returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// `&'static str` patterns act as string strategies. Supported
    /// syntax: a single character class with a bounded repetition,
    /// `[<chars-and-ranges>]{lo,hi}`; any other pattern generates
    /// itself literally.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((alphabet, lo, hi)) => {
                    let len = rng.random_range(lo..=hi);
                    (0..len)
                        .map(|_| alphabet[rng.random_range(0..alphabet.len())])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = reps.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);

        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` range (a dash first or last is a literal dash).
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (start, end) = (class[i], class[i + 2]);
                for c in start..=end {
                    alphabet.push(c);
                }
                i += 3;
            } else if class[i] == '\\' && i + 1 < class.len() {
                alphabet.push(match class[i + 1] {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
                i += 2;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() || lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    /// Weighted choice among type-erased strategies ([`crate::prop_oneof!`]).
    pub struct WeightedUnion<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> WeightedUnion<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            WeightedUnion { arms, total }
        }
    }

    impl<V> Strategy for WeightedUnion<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut ticket = rng.random_range(0..self.total);
            for (w, s) in &self.arms {
                if ticket < *w as u64 {
                    return s.generate(rng);
                }
                ticket -= *w as u64;
            }
            unreachable!("ticket below total weight")
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with sizes drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, 0..n)` — a vector of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range in collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-suite configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the tier-1 gate fast
            // while still exercising each property across a real spread.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for a named test (FNV-1a over the name).
    pub fn seed_rng(test_name: &str) -> super::strategy::TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        rand::rngs::StdRng::seed_from_u64(h)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(x in strategy, ...)`
/// runs its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::seed_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Weighted (or unweighted) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::seed_rng;

    #[test]
    fn ranges_and_any_generate_in_domain() {
        let mut rng = seed_rng("ranges");
        for _ in 0..200 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let _: u8 = any::<u8>().generate(&mut rng);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = seed_rng("vec");
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn string_class_strategy_draws_from_alphabet() {
        let mut rng = seed_rng("string");
        for _ in 0..100 {
            let s = "[a-c,\n ]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ',' | '\n' | ' ')));
        }
    }

    #[test]
    fn oneof_honours_weights_roughly() {
        let mut rng = seed_rng("oneof");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 700, "weighted arm under-sampled: {trues}");
    }

    #[test]
    fn prop_map_and_boxed_compose() {
        let mut rng = seed_rng("map");
        let s: BoxedStrategy<String> = (0u32..10).prop_map(|x| format!("v{x}")).boxed();
        let v = s.generate(&mut rng);
        assert!(v.starts_with('v'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_binds(a in 0u8..10, b in any::<u64>(), v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assume!(a != 9);
            prop_assert!(a < 9);
            prop_assert_eq!(b, b);
            prop_assert!(v.len() < 6);
        }
    }
}
