//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the minshare wire codecs use: the [`Buf`]
//! cursor trait over `&[u8]`, the [`BufMut`] writer trait, a
//! [`BytesMut`] growable buffer, and a cheaply-cloneable shared
//! [`Bytes`] view (`Arc`-backed, sliceable without copying — the
//! upstream zero-copy contract). Integers are big-endian, matching the
//! upstream `get_u32`/`put_u32` contract.

use std::sync::Arc;

/// Read cursor over a byte source. Implemented for `&[u8]`, where reads
/// advance the slice in place.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte and advances.
    ///
    /// # Panics
    /// Panics on an empty buffer.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end of buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u32` and advances.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32 past end of buffer");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64` and advances.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64 past end of buffer");
        let c = self.chunk();
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append-only byte writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, yielding its bytes without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    /// Freezes the buffer into an immutable, cheaply-cloneable [`Bytes`]
    /// without copying the contents.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.inner)
    }
}

/// Immutable shared byte view: an `Arc`-backed buffer plus a window.
/// Cloning and [`Bytes::slice`] are O(1) and never copy the underlying
/// storage.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty view.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Takes ownership of `data` without copying.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }

    /// Copies `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for Bytes of len {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the viewed bytes out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Consumes the view, yielding its bytes. Reuses the backing `Vec`
    /// without copying when this view covers the whole buffer and is the
    /// only reference to it.
    pub fn into_vec(self) -> Vec<u8> {
        if self.start == 0 && self.end == self.data.len() {
            match Arc::try_unwrap(self.data) {
                Ok(vec) => return vec,
                Err(shared) => return shared[..self.end].to_vec(),
            }
        }
        self.data[self.start..self.end].to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes::from_vec(data)
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_buf_and_bufmut() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_slice(b"tail");
        let bytes = w.to_vec();

        let mut r: &[u8] = &bytes;
        assert_eq!(r.remaining(), bytes.len());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.chunk(), b"tail");
        r.advance(4);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn get_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }

    #[test]
    fn big_endian_layout() {
        let mut w = BytesMut::new();
        w.put_u32(1);
        assert_eq!(&w[..], &[0, 0, 0, 1]);
    }

    #[test]
    fn freeze_and_slice_share_storage() {
        let mut w = BytesMut::new();
        w.put_slice(b"hello world");
        let frozen = w.freeze();
        let hello = frozen.slice(0..5);
        let world = frozen.slice(6..11);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        // Slices of a slice re-base correctly.
        assert_eq!(&world.slice(1..4)[..], b"orl");
        assert_eq!(frozen.len(), 11);
        assert_eq!(hello.clone(), hello);
    }

    #[test]
    fn into_vec_reclaims_unique_full_view() {
        let b = Bytes::from_vec(vec![1, 2, 3]);
        assert_eq!(b.into_vec(), vec![1, 2, 3]);
        let b = Bytes::from_vec(vec![1, 2, 3, 4]);
        let tail = b.slice(2..4);
        drop(b);
        assert_eq!(tail.into_vec(), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from_vec(vec![0; 4]);
        let _ = b.slice(2..6);
    }
}
