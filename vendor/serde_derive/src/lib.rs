//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few cost-model
//! structs but never instantiates a serializer (there is no format crate
//! in the dependency tree), so the derives can expand to nothing. This
//! keeps the annotated sources byte-identical while building fully
//! offline.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
