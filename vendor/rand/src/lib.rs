//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements (from scratch) exactly the slice of the `rand` 0.10 API
//! that the minshare workspace uses:
//!
//! * [`Rng`] — `next_u32`/`next_u64`/`fill_bytes` plus the modern
//!   `random`/`random_range`/`random_bool` sampling methods (also
//!   re-exported under the name [`RngExt`]).
//! * [`SeedableRng::seed_from_u64`] for deterministic test RNGs.
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64.
//! * [`rng()`] — a process-entropy RNG for non-deterministic callers.
//!
//! The generators are statistically solid general-purpose PRNGs but are
//! **not** cryptographically secure; the protocol code only feeds them
//! into rejection samplers for test/bench/demo key material, and the
//! sequence values are not compatible with upstream `rand`.

/// Sampling source. Mirrors `rand::Rng`: implementors supply
/// [`Rng::next_u64`]; everything else has blanket defaults.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&last[..rest.len()]);
        }
    }

    /// Samples a uniform value of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Compatibility alias: `rand 0.10` splits the sampling conveniences
/// into an extension trait; here they live directly on [`Rng`].
pub use Rng as RngExt;

/// Compatibility alias for code written against the `RngCore`/`Rng`
/// split of earlier rand versions.
pub use Rng as RngCore;

/// Types samplable uniformly over their whole domain via
/// [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for i128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire-style
/// rejection on the widening multiply).
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// RNGs constructible from seeds. Only the `seed_from_u64` entry point
/// is needed by this workspace.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard seeding permutation for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            let mut s = [0u64; 4];
            for limb in &mut s {
                *limb = splitmix64(&mut seed);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Process-entropy generator returned by [`crate::rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            use std::collections::hash_map::RandomState;
            use std::hash::{BuildHasher, Hasher};
            use std::time::{SystemTime, UNIX_EPOCH};
            // RandomState draws per-process OS entropy; fold in the clock
            // and a monotonically bumped counter so repeated calls differ.
            static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let mut h = RandomState::new().build_hasher();
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0);
            h.write_u64(nanos);
            h.write_u64(COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
            ThreadRng {
                inner: StdRng::from_state(h.finish()),
            }
        }
    }

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a generator seeded from process entropy (`rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(0usize..3);
            assert!(y < 3);
            let z = r.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.random_range(0u8..=2) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(11);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len={len}");
            }
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn process_rng_varies() {
        let a = super::rng().next_u64();
        let b = super::rng().next_u64();
        // Two fresh generators share entropy source but differ by counter.
        assert_ne!(a, b);
    }
}
