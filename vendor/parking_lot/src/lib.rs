//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot surface: `lock()`
//! returns the guard directly (a poisoned lock just yields the inner
//! guard — parking_lot has no poisoning).

/// Mutual exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, yielding its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Reader-writer lock whose acquisitions return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, yielding its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u8);
        assert_eq!(*l.read(), 5);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
        assert_eq!(l.into_inner(), 9);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
