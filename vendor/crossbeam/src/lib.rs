//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The minshare duplex transport uses the unbounded single-consumer
//! pattern; the mux server additionally uses bounded channels with
//! non-blocking `try_send` for per-session backpressure. For both, the
//! std channels have identical semantics to crossbeam-channel's (FIFO
//! order, disconnect on drop of either end, `Full` when a bounded
//! queue is at capacity).

/// MPSC channels with the crossbeam-channel surface.
pub mod channel {
    pub use std::sync::mpsc::{
        RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError,
    };

    enum SenderInner<T> {
        Unbounded(std::sync::mpsc::Sender<T>),
        Bounded(std::sync::mpsc::SyncSender<T>),
    }

    /// Sending half of a channel.
    pub struct Sender<T>(SenderInner<T>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderInner::Unbounded(tx) => Sender(SenderInner::Unbounded(tx.clone())),
                SenderInner::Bounded(tx) => Sender(SenderInner::Bounded(tx.clone())),
            }
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(SenderInner::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded FIFO channel holding at most `cap` messages.
    /// `send` blocks while full; `try_send` reports `Full` instead.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(SenderInner::Bounded(tx)), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails if the receiver is gone. On a
        /// bounded channel this blocks while the queue is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Unbounded(tx) => tx.send(value),
                SenderInner::Bounded(tx) => tx.send(value),
            }
        }

        /// Non-blocking enqueue: `Full` when a bounded queue is at
        /// capacity (an unbounded queue never is), `Disconnected` when
        /// the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderInner::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|SendError(v)| TrySendError::Disconnected(v)),
                SenderInner::Bounded(tx) => tx.try_send(value),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a message arrives, all senders are gone, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};

    #[test]
    fn fifo_and_disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        drop(tx);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3).unwrap_err(), TrySendError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn unbounded_try_send_never_full() {
        let (tx, rx) = unbounded();
        for i in 0..1000 {
            tx.try_send(i).unwrap();
        }
        drop(rx);
        assert!(matches!(
            tx.try_send(0).unwrap_err(),
            TrySendError::Disconnected(0)
        ));
    }
}
