//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The minshare duplex transport uses exactly the unbounded
//! single-consumer pattern, for which the std channel has identical
//! semantics (FIFO order, disconnect on drop of either end).

/// MPSC channels with the crossbeam-channel surface.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a message arrives, all senders are gone, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_and_disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        drop(tx);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }
}
