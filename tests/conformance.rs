//! Protocol conformance under adversarial network conditions.
//!
//! Every protocol (§3 intersection, §4 equijoin, §5.1 intersection-size,
//! §5.2 equijoin-size) is replayed over the deterministic fault-injecting
//! simulated network (`minshare_net::simnet`) wrapped in the bounded-retry
//! transport, across a fixed set of seeded fault schedules. The contract,
//! for every schedule:
//!
//! 1. **No panic**, ever ([`SimOutcome::Panicked`] is an instant failure).
//! 2. **No hang**: the virtual-clock deadline (plus a wall-clock backstop
//!    inside the simulator) bounds every run.
//! 3. **No wrong answer**: a party either fails with a typed
//!    [`ProtocolError`] or produces *exactly* the output of the same
//!    engine on a perfect link — which in turn is validated against the
//!    clear-text reference (`naive.rs` set algebra / `leakage.rs`).
//! 4. **No extra leakage**: protocol-layer bytes (counted above the retry
//!    layer, so retransmits are excluded) of any completing party equal
//!    the perfect-link profile — faults never change what goes on the
//!    wire at the protocol layer.
//! 5. **Reproducibility**: re-running a schedule from its seed yields a
//!    byte-identical fault trace.
//!
//! One-sided typed failures are accepted: on a lossy channel the party
//! sending the final message can lose every acknowledgement and give up
//! even though its peer completed (the two-generals tail).

use std::collections::BTreeSet;
use std::sync::OnceLock;

use minshare::naive::naive_intersection;
use minshare::prelude::*;
use minshare::simrun::{run_two_party_sim, SimOutcome, SimRunConfig, SimTwoPartyRun};
use minshare_net::{FaultPlan, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> &'static QrGroup {
    static GROUP: OnceLock<QrGroup> = OnceLock::new();
    GROUP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xc0f0);
        QrGroup::generate(&mut rng, 64).expect("group")
    })
}

fn pool() -> &'static EncryptPool {
    static POOL: OnceLock<EncryptPool> = OnceLock::new();
    POOL.get_or_init(|| EncryptPool::new(2))
}

fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
    strs.iter().map(|s| s.as_bytes().to_vec()).collect()
}

/// `V_S`: a set with a non-trivial overlap with `V_R`.
fn vs() -> Vec<Vec<u8>> {
    to_values(&["apple", "grape", "melon", "peach", "berry", "mango", "lemon"])
}

/// `V_R`.
fn vr() -> Vec<Vec<u8>> {
    to_values(&["grape", "kiwi", "apple", "plum", "melon"])
}

/// `T_S.A` as a multiset (duplicate classes 3, 2, 1).
fn ms() -> Vec<Vec<u8>> {
    to_values(&["ash", "ash", "ash", "oak", "oak", "elm", "fir"])
}

/// `T_R.A` as a multiset.
fn mr() -> Vec<Vec<u8>> {
    to_values(&["oak", "ash", "oak", "yew", "yew", "elm"])
}

fn sim_cfg() -> SimRunConfig {
    SimRunConfig::default()
}

fn chunked() -> PipelineConfig {
    // Small chunks so the pipelined wire format (multi-frame lists) is
    // actually exercised against reordering and loss.
    PipelineConfig::chunked(3)
}

/// The fixed seed set every protocol is replayed over. `tools/verify.sh`
/// runs this file, so the set is deliberately modest; the `fault_sweep`
/// binary covers hundreds more.
const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

/// Checks the universal contract for one faulty run against the
/// perfect-link baseline, given per-party equality checks.
fn check_run<SO, RO>(
    tag: &str,
    baseline: &SimTwoPartyRun<SO, RO>,
    faulty: &SimTwoPartyRun<SO, RO>,
) where
    SO: PartialEq + std::fmt::Debug,
    RO: PartialEq + std::fmt::Debug,
{
    assert_ne!(
        faulty.outcome(),
        SimOutcome::Panicked,
        "{tag}: a party panicked: {:?} / {:?}",
        faulty.sender,
        faulty.receiver,
    );
    // Any party that completed must have produced the perfect-link
    // output — never a corrupted or partial answer.
    if let (Ok(b), Ok(f)) = (&baseline.sender, &faulty.sender) {
        assert_eq!(b, f, "{tag}: sender output diverged under faults");
        assert_eq!(
            baseline.sender_traffic.bytes_sent(),
            faulty.sender_traffic.bytes_sent(),
            "{tag}: sender protocol-layer bytes changed under faults",
        );
    }
    if let (Ok(b), Ok(f)) = (&baseline.receiver, &faulty.receiver) {
        assert_eq!(b, f, "{tag}: receiver output diverged under faults");
        assert_eq!(
            baseline.receiver_traffic.bytes_sent(),
            faulty.receiver_traffic.bytes_sent(),
            "{tag}: receiver protocol-layer bytes changed under faults",
        );
    }
}

fn run_intersection(plan: &FaultPlan) -> SimTwoPartyRun<
    minshare::intersection::IntersectionSenderOutput,
    minshare::intersection::IntersectionReceiverOutput,
> {
    let (g, p) = (group(), pool());
    let (s_vals, r_vals) = (vs(), vr());
    run_two_party_sim(
        sim_cfg(),
        plan,
        move |t| {
            let mut rng = StdRng::seed_from_u64(7);
            pipeline::run_intersection_sender(t, g, &s_vals, &mut rng, p, chunked())
        },
        move |t| {
            let mut rng = StdRng::seed_from_u64(8);
            pipeline::run_intersection_receiver(t, g, &r_vals, &mut rng, p, chunked())
        },
    )
}

fn run_equijoin(plan: &FaultPlan) -> SimTwoPartyRun<
    minshare::equijoin::EquijoinSenderOutput,
    minshare::equijoin::EquijoinReceiverOutput,
> {
    let (g, p) = (group(), pool());
    let entries: Vec<(Vec<u8>, Vec<u8>)> = vs()
        .into_iter()
        .map(|v| {
            let mut ext = b"ext:".to_vec();
            ext.extend_from_slice(&v);
            (v, ext)
        })
        .collect();
    let r_vals = vr();
    run_two_party_sim(
        sim_cfg(),
        plan,
        move |t| {
            let cipher = HybridCipher::new(g.clone(), 16);
            let mut rng = StdRng::seed_from_u64(9);
            pipeline::run_equijoin_sender(t, g, &cipher, &entries, &mut rng, p, chunked())
        },
        move |t| {
            let cipher = HybridCipher::new(g.clone(), 16);
            let mut rng = StdRng::seed_from_u64(10);
            pipeline::run_equijoin_receiver(t, g, &cipher, &r_vals, &mut rng, p, chunked())
        },
    )
}

fn run_intersection_size(plan: &FaultPlan) -> SimTwoPartyRun<
    minshare::intersection_size::IntersectionSizeSenderOutput,
    minshare::intersection_size::IntersectionSizeReceiverOutput,
> {
    let g = group();
    let (s_vals, r_vals) = (vs(), vr());
    run_two_party_sim(
        sim_cfg(),
        plan,
        move |t| {
            let mut rng = StdRng::seed_from_u64(11);
            intersection_size::run_sender(t, g, &s_vals, &mut rng)
        },
        move |t| {
            let mut rng = StdRng::seed_from_u64(12);
            intersection_size::run_receiver(t, g, &r_vals, &mut rng)
        },
    )
}

fn run_equijoin_size(plan: &FaultPlan) -> SimTwoPartyRun<
    minshare::equijoin_size::EquijoinSizeSenderOutput,
    minshare::equijoin_size::EquijoinSizeReceiverOutput,
> {
    let g = group();
    let (s_vals, r_vals) = (ms(), mr());
    run_two_party_sim(
        sim_cfg(),
        plan,
        move |t| {
            let mut rng = StdRng::seed_from_u64(13);
            equijoin_size::run_sender(t, g, &s_vals, &mut rng)
        },
        move |t| {
            let mut rng = StdRng::seed_from_u64(14);
            equijoin_size::run_receiver(t, g, &r_vals, &mut rng)
        },
    )
}

/// Replays `run` over the fixed seed set, checking the universal
/// contract and trace reproducibility against the given baseline.
fn sweep<SO, RO>(
    tag: &str,
    run: impl Fn(&FaultPlan) -> SimTwoPartyRun<SO, RO>,
    namespace: u64,
) -> SimTwoPartyRun<SO, RO>
where
    SO: PartialEq + std::fmt::Debug,
    RO: PartialEq + std::fmt::Debug,
{
    let baseline = run(&FaultPlan::perfect());
    assert_eq!(
        baseline.outcome(),
        SimOutcome::Complete,
        "{tag}: perfect link must complete: {:?} / {:?}",
        baseline.sender,
        baseline.receiver,
    );
    let mut completed = 0u32;
    for seed in SEEDS {
        let plan = FaultPlan::from_seed(namespace.wrapping_mul(1 << 32) | seed);
        let faulty = run(&plan);
        check_run(&format!("{tag} seed {seed}"), &baseline, &faulty);
        if faulty.outcome() == SimOutcome::Complete {
            completed += 1;
        }
    }
    // The retry layer must actually be winning against moderate fault
    // schedules, not just failing politely every time.
    assert!(
        completed >= SEEDS.len() as u32 / 2,
        "{tag}: only {completed}/{} schedules completed",
        SEEDS.len(),
    );
    // Reproducibility: the first seed, replayed, gives a byte-identical
    // fault trace and the same outcome.
    let plan = FaultPlan::from_seed(namespace.wrapping_mul(1 << 32) | SEEDS[0]);
    let (r1, r2) = (run(&plan), run(&plan));
    assert_eq!(
        r1.trace.digest(),
        r2.trace.digest(),
        "{tag}: trace not reproducible from its seed",
    );
    assert_eq!(r1.outcome(), r2.outcome(), "{tag}: outcome not reproducible");
    baseline
}

#[test]
fn intersection_conforms_under_faults() {
    let baseline = sweep("intersection", run_intersection, 1);
    // The perfect-link pipelined output agrees with the clear reference.
    let out = baseline.receiver.expect("baseline receiver");
    let (reference, _) = naive_intersection(&vs(), &vr());
    assert_eq!(out.intersection, reference);
    assert_eq!(out.peer_set_size, vs().len());
}

#[test]
fn equijoin_conforms_under_faults() {
    let baseline = sweep("equijoin", run_equijoin, 2);
    let out = baseline.receiver.expect("baseline receiver");
    let r_set: BTreeSet<Vec<u8>> = vr().into_iter().collect();
    let expect: Vec<(Vec<u8>, Vec<u8>)> = vs()
        .into_iter()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .filter(|v| r_set.contains(v))
        .map(|v| {
            let mut ext = b"ext:".to_vec();
            ext.extend_from_slice(&v);
            (v, ext)
        })
        .collect();
    assert_eq!(out.matches, expect);
}

#[test]
fn intersection_size_conforms_under_faults() {
    let baseline = sweep("intersection-size", run_intersection_size, 3);
    let out = baseline.receiver.expect("baseline receiver");
    let (reference, _) = naive_intersection(&vs(), &vr());
    assert_eq!(out.intersection_size, reference.len());
}

#[test]
fn equijoin_size_conforms_under_faults() {
    let baseline = sweep("equijoin-size", run_equijoin_size, 4);
    let out = baseline.receiver.expect("baseline receiver");
    let expect: u64 = {
        use std::collections::BTreeMap;
        let mut s_counts: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for v in ms() {
            *s_counts.entry(v).or_insert(0) += 1;
        }
        mr()
            .into_iter()
            .map(|v| s_counts.get(&v).copied().unwrap_or(0))
            .sum()
    };
    assert_eq!(out.join_size, expect);
    assert_eq!(
        out.class_intersections,
        minshare::leakage::expected_class_intersections(&mr(), &ms()),
    );
}

#[test]
fn total_loss_is_always_a_typed_failure() {
    let plan = FaultPlan {
        drop: 1.0,
        ..FaultPlan::perfect()
    };
    assert_eq!(run_intersection(&plan).outcome(), SimOutcome::TypedFailure);
    assert_eq!(run_equijoin_size(&plan).outcome(), SimOutcome::TypedFailure);
}

#[test]
fn heavy_corruption_never_yields_a_wrong_answer() {
    // Truncation and bit flips beyond what the retry layer's checksum
    // budget is tuned for: runs may fail, but a completing party must
    // still be exactly right (checksums + protocol-level sort/length
    // checks catch everything else).
    let baseline = run_intersection(&FaultPlan::perfect());
    for seed in SEEDS {
        let plan = FaultPlan {
            seed,
            truncate: 0.25,
            bitflip: 0.25,
            delay: 0.2,
            max_delay_ms: 10,
            ..FaultPlan::perfect()
        };
        let faulty = run_intersection(&plan);
        check_run(&format!("corruption seed {seed}"), &baseline, &faulty);
    }
}

// ---------------------------------------------------------------------
// Serial-fallback wire identity: a pipelined engine whose config says
// "fall back" (`serial_below` above every list size — what `calibrated`
// returns on a worker-less pool) must put *byte-identical frames* on the
// wire as the serial engine, in the same order, on both sides.
// ---------------------------------------------------------------------

/// Records every frame a party sends, in order. The default
/// `send_batch` loops over `send`, so batched frames are recorded
/// individually — exactly the granularity the serial engine uses.
struct RecordingTransport<T: Transport> {
    inner: T,
    sent: std::sync::Arc<std::sync::Mutex<Vec<Vec<u8>>>>,
}

impl<T: Transport> RecordingTransport<T> {
    fn new(inner: T) -> (Self, std::sync::Arc<std::sync::Mutex<Vec<Vec<u8>>>>) {
        let sent = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        (
            RecordingTransport {
                inner,
                sent: sent.clone(),
            },
            sent,
        )
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), minshare_net::NetError> {
        self.inner.send(frame)?;
        self.sent.lock().unwrap().push(frame.to_vec());
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, minshare_net::NetError> {
        self.inner.recv()
    }
}

/// Runs a two-party exchange over duplex with frame recording on both
/// sides; returns (sender frames, receiver frames).
fn record_frames<SO: Send, RO: Send>(
    sender: impl FnOnce(&mut dyn Transport) -> Result<SO, ProtocolError> + Send,
    receiver: impl FnOnce(&mut dyn Transport) -> Result<RO, ProtocolError> + Send,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>, SO, RO) {
    use minshare_net::duplex_pair;
    let (s_end, r_end) = duplex_pair();
    let (mut s_t, s_frames) = RecordingTransport::new(s_end);
    let (mut r_t, r_frames) = RecordingTransport::new(r_end);
    let (s_out, r_out) = std::thread::scope(|scope| {
        let s = scope.spawn(move || sender(&mut s_t));
        let r = scope.spawn(move || receiver(&mut r_t));
        (s.join().unwrap(), r.join().unwrap())
    });
    let s_frames = std::sync::Arc::try_unwrap(s_frames).unwrap().into_inner().unwrap();
    let r_frames = std::sync::Arc::try_unwrap(r_frames).unwrap().into_inner().unwrap();
    (s_frames, r_frames, s_out.unwrap(), r_out.unwrap())
}

/// The fallback config `PipelineConfig::calibrated` produces on a pool
/// with no workers: tiny chunks on paper, but every list is under the
/// serial threshold.
fn fallback_cfg() -> PipelineConfig {
    PipelineConfig {
        chunk_size: 3,
        serial_below: usize::MAX,
    }
}

#[test]
fn intersection_serial_fallback_is_wire_identical_to_serial() {
    let g = group();
    let p = pool();
    let (s_vals, r_vals) = (vs(), vr());

    let (ser_s, ser_r, _, ser_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(7);
            intersection::run_sender(t, g, &s_vals, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(8);
            intersection::run_receiver(t, g, &r_vals, &mut rng)
        },
    );
    let (pip_s, pip_r, _, pip_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(7);
            pipeline::run_intersection_sender(t, g, &s_vals, &mut rng, p, fallback_cfg())
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(8);
            pipeline::run_intersection_receiver(t, g, &r_vals, &mut rng, p, fallback_cfg())
        },
    );
    assert_eq!(ser_s, pip_s, "sender frames diverge in fallback mode");
    assert_eq!(ser_r, pip_r, "receiver frames diverge in fallback mode");
    assert_eq!(ser_out.intersection, pip_out.intersection);
}

#[test]
fn equijoin_serial_fallback_is_wire_identical_to_serial() {
    let g = group();
    let p = pool();
    let entries: Vec<(Vec<u8>, Vec<u8>)> = vs()
        .into_iter()
        .map(|v| {
            let mut ext = b"ext:".to_vec();
            ext.extend_from_slice(&v);
            (v, ext)
        })
        .collect();
    let r_vals = vr();

    let (ser_s, ser_r, _, ser_out) = record_frames(
        |t| {
            let cipher = HybridCipher::new(g.clone(), 16);
            let mut rng = StdRng::seed_from_u64(9);
            equijoin::run_sender(t, g, &cipher, &entries, &mut rng)
        },
        |t| {
            let cipher = HybridCipher::new(g.clone(), 16);
            let mut rng = StdRng::seed_from_u64(10);
            equijoin::run_receiver(t, g, &cipher, &r_vals, &mut rng)
        },
    );
    let (pip_s, pip_r, _, pip_out) = record_frames(
        |t| {
            let cipher = HybridCipher::new(g.clone(), 16);
            let mut rng = StdRng::seed_from_u64(9);
            pipeline::run_equijoin_sender(t, g, &cipher, &entries, &mut rng, p, fallback_cfg())
        },
        |t| {
            let cipher = HybridCipher::new(g.clone(), 16);
            let mut rng = StdRng::seed_from_u64(10);
            pipeline::run_equijoin_receiver(t, g, &cipher, &r_vals, &mut rng, p, fallback_cfg())
        },
    );
    assert_eq!(ser_s, pip_s, "sender frames diverge in fallback mode");
    assert_eq!(ser_r, pip_r, "receiver frames diverge in fallback mode");
    assert_eq!(ser_out.matches, pip_out.matches);
}

#[test]
fn calibrated_config_on_workerless_pool_always_falls_back() {
    let g = group();
    let solo = EncryptPool::new(1); // clamps to zero workers on any host
    assert_eq!(solo.threads(), 0);
    let cfg = PipelineConfig::calibrated(g, &solo);
    assert_eq!(cfg.serial_below, usize::MAX);
}

// ---------------------------------------------------------------------
// Trace-layer conformance: the telemetry must itself be deterministic
// (same simnet seed ⇒ same per-party event digest) and must aggregate
// identically across execution strategies (a pipelined run's metrics
// equal the serial run's §6.1 counters).
// ---------------------------------------------------------------------

use std::sync::Arc;

use minshare_trace::sink::{MetricsSink, RingSink};
use minshare_trace::TraceSink;

fn traced<S: TraceSink + 'static>(sink: &Arc<S>) -> minshare_trace::Tracer {
    minshare_trace::Tracer::to_sink(Arc::clone(sink) as Arc<dyn TraceSink>)
}

#[test]
fn trace_digest_is_reproducible_from_the_simnet_seed() {
    let plan = FaultPlan::from_seed(0x7ace_0001);
    let go = || {
        let (g, p) = (group(), pool());
        let (s_vals, r_vals) = (vs(), vr());
        let s_sink = Arc::new(RingSink::new(4096));
        let r_sink = Arc::new(RingSink::new(4096));
        let run = {
            let (ss, rs) = (Arc::clone(&s_sink), Arc::clone(&r_sink));
            run_two_party_sim(
                sim_cfg(),
                &plan,
                move |t| {
                    let _trace = minshare_trace::install(traced(&ss));
                    let mut rng = StdRng::seed_from_u64(7);
                    pipeline::run_intersection_sender(t, g, &s_vals, &mut rng, p, chunked())
                },
                move |t| {
                    let _trace = minshare_trace::install(traced(&rs));
                    let mut rng = StdRng::seed_from_u64(8);
                    pipeline::run_intersection_receiver(t, g, &r_vals, &mut rng, p, chunked())
                },
            )
        };
        assert!(s_sink.recorded() > 0, "sender emitted no events");
        assert!(r_sink.recorded() > 0, "receiver emitted no events");
        (run.outcome(), s_sink.digest(), r_sink.digest())
    };
    let (o1, s1, r1) = go();
    let (o2, s2, r2) = go();
    assert_eq!(o1, o2, "outcome not reproducible");
    assert_eq!(s1, s2, "sender event digest not reproducible from seed");
    assert_eq!(r1, r2, "receiver event digest not reproducible from seed");
}

/// Runs a perfect-link two-party exchange with both parties feeding one
/// shared metrics sink; returns the sink.
fn metrics_of<SO: Send, RO: Send>(
    sender: impl FnOnce(&mut dyn Transport) -> Result<SO, ProtocolError> + Send,
    receiver: impl FnOnce(&mut dyn Transport) -> Result<RO, ProtocolError> + Send,
) -> Arc<MetricsSink> {
    let sink = Arc::new(MetricsSink::new());
    let (ss, rs) = (Arc::clone(&sink), Arc::clone(&sink));
    run_two_party(
        move |t| {
            let _trace = minshare_trace::install(traced(&ss));
            sender(t)
        },
        move |t| {
            let _trace = minshare_trace::install(traced(&rs));
            receiver(t)
        },
    )
    .expect("perfect-link run");
    sink
}

/// §6.1 `Ce` units charged across both parties' `*_done` events.
fn ce_ops(sink: &MetricsSink, scope: &str) -> u64 {
    sink.sum(scope, "sender_done", "encryptions")
        + sink.sum(scope, "sender_done", "decryptions")
        + sink.sum(scope, "receiver_done", "encryptions")
        + sink.sum(scope, "receiver_done", "decryptions")
}

#[test]
fn pipelined_metrics_equal_serial_metrics() {
    let g = group();
    let p = pool();
    let serial = metrics_of(
        |t| {
            let mut rng = StdRng::seed_from_u64(7);
            intersection::run_sender(t, g, &vs(), &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(8);
            intersection::run_receiver(t, g, &vr(), &mut rng)
        },
    );
    // Fallback mode is wire-identical to serial, so the aggregated
    // metrics must agree on *everything*: Ce operations, frames, bytes.
    let fallback = metrics_of(
        |t| {
            let mut rng = StdRng::seed_from_u64(7);
            pipeline::run_intersection_sender(t, g, &vs(), &mut rng, p, fallback_cfg())
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(8);
            pipeline::run_intersection_receiver(t, g, &vr(), &mut rng, p, fallback_cfg())
        },
    );
    let serial_ce = ce_ops(&serial, "intersection");
    assert!(serial_ce > 0, "serial run charged no Ce operations");
    assert_eq!(ce_ops(&fallback, "intersection"), serial_ce);
    assert_eq!(
        fallback.sum("net", "frame_sent", "frames"),
        serial.sum("net", "frame_sent", "frames"),
    );
    assert_eq!(
        fallback.sum("net", "frame_sent", "bytes"),
        serial.sum("net", "frame_sent", "bytes"),
    );
    // Genuinely chunked streaming re-frames the wire (envelope headers)
    // but must charge exactly the same §6.1 encryption work.
    let streamed = metrics_of(
        |t| {
            let mut rng = StdRng::seed_from_u64(7);
            pipeline::run_intersection_sender(t, g, &vs(), &mut rng, p, chunked())
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(8);
            pipeline::run_intersection_receiver(t, g, &vr(), &mut rng, p, chunked())
        },
    );
    assert_eq!(ce_ops(&streamed, "intersection"), serial_ce);
    assert!(
        streamed.sum("net", "frame_sent", "bytes")
            >= serial.sum("net", "frame_sent", "bytes"),
        "chunked streaming cannot shrink protocol-layer bytes",
    );
}
