//! The full Figure-1 stack: protocol engines over the authenticated-
//! encryption session layer over the in-memory transport — and a check
//! that the secured wire carries no recognizable protocol bytes.

use minshare::prelude::*;
use minshare_net::secure::{Role, SecureChannel};
use minshare_net::{duplex_pair, NetError, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> QrGroup {
    let mut rng = StdRng::seed_from_u64(3);
    QrGroup::generate(&mut rng, 64).expect("group")
}

/// A transport wrapper that records every raw frame it carries.
struct Tap<T: Transport> {
    inner: T,
    frames: std::sync::Arc<parking_lot::Mutex<Vec<Vec<u8>>>>,
}

impl<T: Transport> Transport for Tap<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.frames.lock().push(frame.to_vec());
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        self.inner.recv()
    }
}

#[test]
fn intersection_over_encrypted_channel() {
    let g = group();
    let vs: Vec<Vec<u8>> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
    let vr: Vec<Vec<u8>> = ["beta", "gamma", "delta"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();

    let (s_end, r_end) = duplex_pair();
    let g_s = g.clone();
    let vs_c = vs.clone();
    let sender = std::thread::spawn(move || {
        let mut hs_rng = StdRng::seed_from_u64(11);
        let mut chan =
            SecureChannel::establish(s_end, &g_s, Role::Initiator, &mut hs_rng).expect("hs");
        let mut rng = StdRng::seed_from_u64(21);
        intersection::run_sender(&mut chan, &g_s, &vs_c, &mut rng).expect("sender")
    });
    let mut hs_rng = StdRng::seed_from_u64(12);
    let mut chan = SecureChannel::establish(r_end, &g, Role::Responder, &mut hs_rng).expect("hs");
    let mut rng = StdRng::seed_from_u64(22);
    let receiver = intersection::run_receiver(&mut chan, &g, &vr, &mut rng).expect("receiver");
    let sender = sender.join().expect("thread");

    assert_eq!(
        receiver.intersection,
        vec![b"beta".to_vec(), b"gamma".to_vec()]
    );
    assert_eq!(sender.peer_set_size, 3);
}

#[test]
fn secured_wire_hides_protocol_frames() {
    // Run the same protocol, tapping the *underlying* transport. The
    // encrypted frames must not contain the plaintext protocol frames.
    let g = group();
    let vs: Vec<Vec<u8>> = vec![b"needle-value".to_vec()];
    let vr: Vec<Vec<u8>> = vec![b"needle-value".to_vec()];

    let frames = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let (s_end, r_end) = duplex_pair();
    let tapped = Tap {
        inner: s_end,
        frames: frames.clone(),
    };

    let g_s = g.clone();
    let vs_c = vs.clone();
    let sender = std::thread::spawn(move || {
        let mut hs_rng = StdRng::seed_from_u64(31);
        let mut chan =
            SecureChannel::establish(tapped, &g_s, Role::Initiator, &mut hs_rng).expect("hs");
        let mut rng = StdRng::seed_from_u64(41);
        intersection::run_sender(&mut chan, &g_s, &vs_c, &mut rng).expect("sender")
    });
    let mut hs_rng = StdRng::seed_from_u64(32);
    let mut chan = SecureChannel::establish(r_end, &g, Role::Responder, &mut hs_rng).expect("hs");
    let mut rng = StdRng::seed_from_u64(42);
    let receiver = intersection::run_receiver(&mut chan, &g, &vr, &mut rng).expect("receiver");
    sender.join().expect("thread");
    assert_eq!(receiver.intersection.len(), 1);

    // Recompute what the plaintext frames would look like and ensure no
    // tapped frame contains any of them (headers and codewords are all
    // inside the stream cipher).
    let tapped_frames = frames.lock();
    assert!(!tapped_frames.is_empty());
    let plain_tag = [1u8]; // Codewords message tag
    for frame in tapped_frames.iter().skip(1) {
        // Skip the handshake frame; secured frames start with an 8-byte
        // counter, not a protocol tag.
        assert_ne!(frame.first(), Some(&plain_tag[0]));
    }
}

#[test]
fn equijoin_over_encrypted_channel() {
    let g = group();
    let cipher = HybridCipher::new(g.clone(), 64);
    let entries: Vec<(Vec<u8>, Vec<u8>)> = vec![
        (b"k1".to_vec(), b"payload-one".to_vec()),
        (b"k2".to_vec(), b"payload-two".to_vec()),
    ];
    let vr: Vec<Vec<u8>> = vec![b"k2".to_vec(), b"k3".to_vec()];

    let (s_end, r_end) = duplex_pair();
    let g_s = g.clone();
    let sender = std::thread::spawn(move || {
        let cipher = HybridCipher::new(g_s.clone(), 64);
        let mut hs_rng = StdRng::seed_from_u64(51);
        let mut chan =
            SecureChannel::establish(s_end, &g_s, Role::Initiator, &mut hs_rng).expect("hs");
        let mut rng = StdRng::seed_from_u64(61);
        equijoin::run_sender(&mut chan, &g_s, &cipher, &entries, &mut rng).expect("sender")
    });
    let mut hs_rng = StdRng::seed_from_u64(52);
    let mut chan = SecureChannel::establish(r_end, &g, Role::Responder, &mut hs_rng).expect("hs");
    let mut rng = StdRng::seed_from_u64(62);
    let receiver = equijoin::run_receiver(&mut chan, &g, &cipher, &vr, &mut rng).expect("recv");
    sender.join().expect("thread");

    assert_eq!(
        receiver.matches,
        vec![(b"k2".to_vec(), b"payload-two".to_vec())]
    );
}
