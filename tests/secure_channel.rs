//! The full Figure-1 stack: protocol engines over the authenticated-
//! encryption session layer over the in-memory transport — and a check
//! that the secured wire carries no recognizable protocol bytes.

use minshare::prelude::*;
use minshare_net::secure::{Role, SecureChannel};
use minshare_net::{duplex_pair, NetError, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> QrGroup {
    let mut rng = StdRng::seed_from_u64(3);
    QrGroup::generate(&mut rng, 64).expect("group")
}

/// A transport wrapper that records every raw frame it carries.
struct Tap<T: Transport> {
    inner: T,
    frames: std::sync::Arc<parking_lot::Mutex<Vec<Vec<u8>>>>,
}

impl<T: Transport> Transport for Tap<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.frames.lock().push(frame.to_vec());
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        self.inner.recv()
    }
}

#[test]
fn intersection_over_encrypted_channel() {
    let g = group();
    let vs: Vec<Vec<u8>> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
    let vr: Vec<Vec<u8>> = ["beta", "gamma", "delta"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();

    let (s_end, r_end) = duplex_pair();
    let g_s = g.clone();
    let vs_c = vs.clone();
    let sender = std::thread::spawn(move || {
        let mut hs_rng = StdRng::seed_from_u64(11);
        let mut chan =
            SecureChannel::establish(s_end, &g_s, Role::Initiator, &mut hs_rng).expect("hs");
        let mut rng = StdRng::seed_from_u64(21);
        intersection::run_sender(&mut chan, &g_s, &vs_c, &mut rng).expect("sender")
    });
    let mut hs_rng = StdRng::seed_from_u64(12);
    let mut chan = SecureChannel::establish(r_end, &g, Role::Responder, &mut hs_rng).expect("hs");
    let mut rng = StdRng::seed_from_u64(22);
    let receiver = intersection::run_receiver(&mut chan, &g, &vr, &mut rng).expect("receiver");
    let sender = sender.join().expect("thread");

    assert_eq!(
        receiver.intersection,
        vec![b"beta".to_vec(), b"gamma".to_vec()]
    );
    assert_eq!(sender.peer_set_size, 3);
}

#[test]
fn secured_wire_hides_protocol_frames() {
    // Run the same protocol, tapping the *underlying* transport. The
    // encrypted frames must not contain the plaintext protocol frames.
    let g = group();
    let vs: Vec<Vec<u8>> = vec![b"needle-value".to_vec()];
    let vr: Vec<Vec<u8>> = vec![b"needle-value".to_vec()];

    let frames = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let (s_end, r_end) = duplex_pair();
    let tapped = Tap {
        inner: s_end,
        frames: frames.clone(),
    };

    let g_s = g.clone();
    let vs_c = vs.clone();
    let sender = std::thread::spawn(move || {
        let mut hs_rng = StdRng::seed_from_u64(31);
        let mut chan =
            SecureChannel::establish(tapped, &g_s, Role::Initiator, &mut hs_rng).expect("hs");
        let mut rng = StdRng::seed_from_u64(41);
        intersection::run_sender(&mut chan, &g_s, &vs_c, &mut rng).expect("sender")
    });
    let mut hs_rng = StdRng::seed_from_u64(32);
    let mut chan = SecureChannel::establish(r_end, &g, Role::Responder, &mut hs_rng).expect("hs");
    let mut rng = StdRng::seed_from_u64(42);
    let receiver = intersection::run_receiver(&mut chan, &g, &vr, &mut rng).expect("receiver");
    sender.join().expect("thread");
    assert_eq!(receiver.intersection.len(), 1);

    // Recompute what the plaintext frames would look like and ensure no
    // tapped frame contains any of them (headers and codewords are all
    // inside the stream cipher).
    let tapped_frames = frames.lock();
    assert!(!tapped_frames.is_empty());
    let plain_tag = [1u8]; // Codewords message tag
    for frame in tapped_frames.iter().skip(1) {
        // Skip the handshake frame; secured frames start with an 8-byte
        // counter, not a protocol tag.
        assert_ne!(frame.first(), Some(&plain_tag[0]));
    }
}

#[test]
fn equijoin_over_encrypted_channel() {
    let g = group();
    let cipher = HybridCipher::new(g.clone(), 64);
    let entries: Vec<(Vec<u8>, Vec<u8>)> = vec![
        (b"k1".to_vec(), b"payload-one".to_vec()),
        (b"k2".to_vec(), b"payload-two".to_vec()),
    ];
    let vr: Vec<Vec<u8>> = vec![b"k2".to_vec(), b"k3".to_vec()];

    let (s_end, r_end) = duplex_pair();
    let g_s = g.clone();
    let sender = std::thread::spawn(move || {
        let cipher = HybridCipher::new(g_s.clone(), 64);
        let mut hs_rng = StdRng::seed_from_u64(51);
        let mut chan =
            SecureChannel::establish(s_end, &g_s, Role::Initiator, &mut hs_rng).expect("hs");
        let mut rng = StdRng::seed_from_u64(61);
        equijoin::run_sender(&mut chan, &g_s, &cipher, &entries, &mut rng).expect("sender")
    });
    let mut hs_rng = StdRng::seed_from_u64(52);
    let mut chan = SecureChannel::establish(r_end, &g, Role::Responder, &mut hs_rng).expect("hs");
    let mut rng = StdRng::seed_from_u64(62);
    let receiver = equijoin::run_receiver(&mut chan, &g, &cipher, &vr, &mut rng).expect("recv");
    sender.join().expect("thread");

    assert_eq!(
        receiver.matches,
        vec![(b"k2".to_vec(), b"payload-two".to_vec())]
    );
}

/// A transport wrapper that can replay or swap incoming raw frames once
/// a shared switch is flipped (pass-through until then, so the handshake
/// goes through untouched).
#[derive(Clone, Copy, PartialEq)]
enum Meddle {
    Pass,
    Replay,
    Swap,
}

struct Meddler<T: Transport> {
    inner: T,
    mode: std::sync::Arc<parking_lot::Mutex<Meddle>>,
    stash: Option<Vec<u8>>,
}

impl<T: Transport> Transport for Meddler<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let mode = *self.mode.lock();
        match mode {
            Meddle::Pass => self.inner.recv(),
            Meddle::Replay => {
                // Deliver each frame, then deliver it again.
                if let Some(copy) = self.stash.take() {
                    return Ok(copy);
                }
                let frame = self.inner.recv()?;
                self.stash = Some(frame.clone());
                Ok(frame)
            }
            Meddle::Swap => {
                // Deliver frames pairwise in reversed order.
                if let Some(first) = self.stash.take() {
                    return Ok(first);
                }
                let first = self.inner.recv()?;
                let second = self.inner.recv()?;
                self.stash = Some(first);
                Ok(second)
            }
        }
    }
}

fn meddled_pair() -> (
    std::thread::JoinHandle<()>,
    SecureChannel<Meddler<impl Transport>>,
    std::sync::Arc<parking_lot::Mutex<Meddle>>,
) {
    let g = group();
    let (s_end, r_end) = duplex_pair();
    let g_s = g.clone();
    let sender = std::thread::spawn(move || {
        let mut hs_rng = StdRng::seed_from_u64(71);
        let mut chan =
            SecureChannel::establish(s_end, &g_s, Role::Initiator, &mut hs_rng).expect("hs");
        chan.send(b"frame-one").expect("send one");
        chan.send(b"frame-two").expect("send two");
    });
    let switch = std::sync::Arc::new(parking_lot::Mutex::new(Meddle::Pass));
    let meddler = Meddler {
        inner: r_end,
        mode: switch.clone(),
        stash: None,
    };
    let mut hs_rng = StdRng::seed_from_u64(72);
    let chan = SecureChannel::establish(meddler, &g, Role::Responder, &mut hs_rng).expect("hs");
    (sender, chan, switch)
}

#[test]
fn replayed_ciphertext_frame_is_rejected() {
    let (sender, mut chan, switch) = meddled_pair();
    *switch.lock() = Meddle::Replay;
    // The first delivery decrypts fine; the byte-identical replay must
    // fail the sequence check before any plaintext is produced.
    assert_eq!(chan.recv().expect("first"), b"frame-one");
    assert!(matches!(
        chan.recv().expect_err("replay must be rejected"),
        NetError::MalformedFrame { .. } | NetError::AuthenticationFailed
    ));
    sender.join().expect("sender");
}

#[test]
fn reordered_ciphertext_frames_are_rejected() {
    let (sender, mut chan, switch) = meddled_pair();
    *switch.lock() = Meddle::Swap;
    // Frame two arrives first: its sequence number (1) does not match
    // the expected counter (0), so the channel refuses it — a swapped
    // pair can never silently reorder the plaintext stream.
    assert!(matches!(
        chan.recv().expect_err("reordered frame must be rejected"),
        NetError::MalformedFrame { .. } | NetError::AuthenticationFailed
    ));
    sender.join().expect("sender");
}

#[test]
fn secure_counters_survive_retransmits_on_a_faulty_link() {
    // SecureChannel on top of the bounded-retry transport on top of a
    // seeded-fault simulated link. Retransmits happen *below* the secure
    // layer and duplicates are filtered by the ARQ sequence numbers, so
    // the per-direction secure counters never desynchronize and no
    // nonce/sequence is ever reused — every frame that decrypts is the
    // next expected one. One-sided typed errors are tolerated (a lost
    // final acknowledgement), but at least one seed must complete
    // cleanly on both sides.
    use minshare_net::{sim_pair, FaultPlan, RobustTransport, SimConfig};

    let g = group();
    let mut clean = 0u32;
    for seed in 0..6u64 {
        let plan = FaultPlan::from_seed(0xbeef_0000 + seed);
        let (a_end, b_end, _trace) = sim_pair(SimConfig::default(), &plan);
        let g_a = g.clone();
        let side_a = std::thread::spawn(move || -> Result<(), NetError> {
            let mut hs_rng = StdRng::seed_from_u64(81);
            let mut chan =
                SecureChannel::establish(RobustTransport::new(a_end), &g_a, Role::Initiator, &mut hs_rng)?;
            for i in 0..6u8 {
                chan.send(&[i; 24])?;
            }
            assert_eq!(chan.recv()?, b"all six arrived in order");
            Ok(())
        });
        let g_b = g.clone();
        let side_b = std::thread::spawn(move || -> Result<(), NetError> {
            let mut hs_rng = StdRng::seed_from_u64(82);
            let mut chan =
                SecureChannel::establish(RobustTransport::new(b_end), &g_b, Role::Responder, &mut hs_rng)?;
            for i in 0..6u8 {
                // In-order, exactly-once delivery even though the link
                // below dropped/duplicated/reordered raw frames.
                assert_eq!(chan.recv()?, [i; 24]);
            }
            chan.send(b"all six arrived in order")?;
            Ok(())
        });
        let ra = side_a.join().expect("side a");
        let rb = side_b.join().expect("side b");
        let tail_ok = |r: &Result<(), NetError>| {
            matches!(
                r,
                Ok(())
                    | Err(NetError::Closed)
                    | Err(NetError::RetriesExhausted { .. })
                    | Err(NetError::TimedOut { .. })
            )
        };
        assert!(tail_ok(&ra), "seed {seed}: side a: {ra:?}");
        assert!(tail_ok(&rb), "seed {seed}: side b: {rb:?}");
        if ra.is_ok() && rb.is_ok() {
            clean += 1;
        }
    }
    assert!(clean > 0, "no seed completed cleanly on both sides");
}
