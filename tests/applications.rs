//! Integration tests for the two §1.1 applications, run end to end on
//! synthetic workloads and validated against clear-text oracles.

use minshare::apps::{docshare, medical};
use minshare_crypto::QrGroup;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> QrGroup {
    let mut rng = StdRng::seed_from_u64(7);
    QrGroup::generate(&mut rng, 64).expect("group")
}

#[test]
fn document_sharing_full_pipeline() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    let g = group();

    // Synthetic corpora with a planted shared topic.
    let mut r_corpus = docshare::synthetic_corpus(&mut rng, "r", 3, 200, 40);
    let mut s_corpus = docshare::synthetic_corpus(&mut rng, "s", 3, 200, 40);
    let topic: Vec<String> = (0..25).map(|i| format!("topic{i}")).collect();
    r_corpus[1].words.extend(topic.iter().cloned());
    s_corpus[0].words.extend(topic.iter().cloned());

    let r_docs = docshare::significant_words(&r_corpus, 30);
    let s_docs = docshare::significant_words(&s_corpus, 30);

    let threshold = 0.1;
    let report =
        docshare::similarity_join(&g, &r_docs, &s_docs, threshold, &mut rng).expect("join");
    let clear = docshare::similarity_join_in_clear(&r_docs, &s_docs, threshold);
    assert_eq!(report.matches, clear);
    // The planted pair must be found.
    assert!(
        report
            .matches
            .iter()
            .any(|m| m.r_id == "r1" && m.s_id == "s0"),
        "planted topic pair not found: {:?}",
        report.matches
    );
    assert_eq!(report.protocol_runs, 9);
    // §6.2.1 cost formula: Σ pairs (|dR|+|dS|)·2 Ce.
    let expect_ce: u64 = r_docs
        .iter()
        .flat_map(|dr| s_docs.iter().map(move |ds| (dr, ds)))
        .map(|(dr, ds)| 2 * (dr.words.len() + ds.words.len()) as u64)
        .sum();
    assert_eq!(report.total_ops.total_ce(), expect_ce);
}

#[test]
fn document_sharing_handles_no_matches() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = group();
    let r_docs = vec![docshare::SignificantDoc {
        id: "r0".into(),
        words: ["alpha", "beta"].iter().map(|s| s.to_string()).collect(),
    }];
    let s_docs = vec![docshare::SignificantDoc {
        id: "s0".into(),
        words: ["gamma", "delta"].iter().map(|s| s.to_string()).collect(),
    }];
    let report = docshare::similarity_join(&g, &r_docs, &s_docs, 0.01, &mut rng).expect("join");
    assert!(report.matches.is_empty());
}

#[test]
fn medical_study_matches_sql_oracle_at_scale() {
    let g = group();
    let mut rng = StdRng::seed_from_u64(0xabc);
    let (tr, ts) = medical::synthetic_study(&mut rng, 300, 0.25, 0.5, 0.9, 0.05).expect("synthetic study");
    let (private, cost) = medical::run_medical_study(&g, &tr, &ts, 99).expect("study");
    let clear = medical::medical_counts_in_clear(&tr, &ts).expect("oracle");
    assert_eq!(private, clear);

    // Total counted must equal the number of drug takers.
    let drug_idx = ts.schema().index_of("drug").expect("col");
    let takers = ts
        .rows()
        .iter()
        .filter(|r| r[drug_idx] == minshare_privdb::Value::Bool(true))
        .count() as u64;
    let total: u64 = private.counts.iter().flatten().sum();
    assert_eq!(total, takers);

    // §6.2.2 cost formula: four runs, combined 2(|VR|+|VS|)·2 Ce where
    // the partitions sum to |VR| and |VS| respectively.
    assert_eq!(cost.ops.total_ce(), 2 * 2 * (tr.len() as u64 + takers));
}

#[test]
fn medical_study_with_skewed_population() {
    // Nobody has the pattern; every cell with pattern=true must be 0.
    let g = group();
    let mut rng = StdRng::seed_from_u64(0x111);
    let (tr, ts) = medical::synthetic_study(&mut rng, 60, 0.0, 0.7, 0.9, 0.2).expect("synthetic study");
    let (counts, _) = medical::run_medical_study(&g, &tr, &ts, 1).expect("study");
    assert_eq!(counts.counts[1][0] + counts.counts[1][1], 0);
    let clear = medical::medical_counts_in_clear(&tr, &ts).expect("oracle");
    assert_eq!(counts, clear);
}

#[test]
fn three_party_researcher_sees_sizes_only() {
    // The researcher's output is sizes; check they equal the true input
    // sizes (that is the paper's declared disclosure I).
    let g = group();
    let vs: Vec<Vec<u8>> = (0..9u8).map(|b| vec![b]).collect();
    let vr: Vec<Vec<u8>> = (5..12u8).map(|b| vec![b]).collect();
    let run = medical::three_party_intersection_size(&g, &vs, &vr, 3).expect("run");
    assert_eq!(run.intersection_size, 4); // values 5..9
    assert_eq!(run.vs_size, 9);
    assert_eq!(run.vr_size, 7);
}
