//! End-to-end integration tests: all four protocols against clear-text
//! oracles, across set shapes and group sizes, including the 768-bit
//! RFC group the paper's parameter regime uses.

use std::collections::BTreeSet;

use minshare::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn small_group() -> QrGroup {
    let mut rng = StdRng::seed_from_u64(77);
    QrGroup::generate(&mut rng, 64).expect("group")
}

fn oracle_intersection(vs: &[Vec<u8>], vr: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let s: BTreeSet<&Vec<u8>> = vs.iter().collect();
    let r: BTreeSet<&Vec<u8>> = vr.iter().collect();
    s.intersection(&r).map(|v| (*v).clone()).collect()
}

fn random_sets(seed: u64, max: usize) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab: Vec<Vec<u8>> = (0..30u32).map(|i| format!("val{i}").into_bytes()).collect();
    let pick = |rng: &mut StdRng| -> Vec<Vec<u8>> {
        let n = rng.random_range(0..max);
        (0..n)
            .map(|_| vocab[rng.random_range(0..vocab.len())].clone())
            .collect()
    };
    (pick(&mut rng), pick(&mut rng))
}

#[test]
fn intersection_matches_oracle_randomized() {
    let group = small_group();
    for seed in 0..8u64 {
        let (vs, vr) = random_sets(seed, 20);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed + 1000);
                intersection::run_sender(t, &group, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed + 2000);
                intersection::run_receiver(t, &group, &vr, &mut rng)
            },
        )
        .expect("run");
        assert_eq!(
            run.receiver.intersection,
            oracle_intersection(&vs, &vr),
            "seed={seed}"
        );
        // Size disclosures match deduplicated inputs.
        let vs_set: BTreeSet<&Vec<u8>> = vs.iter().collect();
        let vr_set: BTreeSet<&Vec<u8>> = vr.iter().collect();
        assert_eq!(run.receiver.peer_set_size, vs_set.len());
        assert_eq!(run.sender.peer_set_size, vr_set.len());
    }
}

#[test]
fn intersection_size_matches_oracle_randomized() {
    let group = small_group();
    for seed in 0..8u64 {
        let (vs, vr) = random_sets(seed.wrapping_mul(31), 20);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed + 1);
                intersection_size::run_sender(t, &group, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed + 2);
                intersection_size::run_receiver(t, &group, &vr, &mut rng)
            },
        )
        .expect("run");
        assert_eq!(
            run.receiver.intersection_size,
            oracle_intersection(&vs, &vr).len(),
            "seed={seed}"
        );
    }
}

#[test]
fn equijoin_returns_payloads_for_exactly_the_intersection() {
    let group = small_group();
    let cipher = HybridCipher::new(group.clone(), 128);
    for seed in 0..5u64 {
        let (vs, vr) = random_sets(seed.wrapping_mul(97) + 5, 15);
        let vs_dedup: Vec<Vec<u8>> = vs
            .iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .cloned()
            .collect();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = vs_dedup
            .iter()
            .map(|v| {
                let mut payload = b"ext:".to_vec();
                payload.extend_from_slice(v);
                (v.clone(), payload)
            })
            .collect();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed + 10);
                equijoin::run_sender(t, &group, &cipher, &entries, &mut rng)
            },
            |t| {
                let cipher = HybridCipher::new(group.clone(), 128);
                let mut rng = StdRng::seed_from_u64(seed + 20);
                equijoin::run_receiver(t, &group, &cipher, &vr, &mut rng)
            },
        )
        .expect("run");
        let expect: Vec<(Vec<u8>, Vec<u8>)> = oracle_intersection(&vs, &vr)
            .into_iter()
            .map(|v| {
                let mut payload = b"ext:".to_vec();
                payload.extend_from_slice(&v);
                (v, payload)
            })
            .collect();
        assert_eq!(run.receiver.matches, expect, "seed={seed}");
    }
}

#[test]
fn equijoin_ships_relational_rows_as_payloads() {
    // Full pipeline: privdb rows → rowcodec → protocol → rowcodec → rows.
    let group = small_group();
    let cipher = HybridCipher::new(group.clone(), 256);

    let schema = Schema::new(vec![
        ("sku", ColumnType::Text),
        ("qty", ColumnType::Int),
        ("fragile", ColumnType::Bool),
    ])
    .expect("schema");
    let mut table = Table::new("inventory", schema);
    table
        .insert_all(vec![
            vec![Value::from("widget"), Value::Int(7), Value::Bool(false)],
            vec![Value::from("widget"), Value::Int(3), Value::Bool(true)],
            vec![Value::from("gadget"), Value::Int(1), Value::Bool(false)],
        ])
        .expect("rows");

    let ext = table.extension_map("sku").expect("ext map");
    let entries: Vec<(Vec<u8>, Vec<u8>)> = ext
        .iter()
        .map(|(v, rows)| (rowcodec::encode_value(v), rowcodec::encode_rows(rows)))
        .collect();
    let vr = vec![rowcodec::encode_value(&Value::from("widget"))];

    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            equijoin::run_sender(t, &group, &cipher, &entries, &mut rng)
        },
        |t| {
            let cipher = HybridCipher::new(group.clone(), 256);
            let mut rng = StdRng::seed_from_u64(2);
            equijoin::run_receiver(t, &group, &cipher, &vr, &mut rng)
        },
    )
    .expect("run");

    assert_eq!(run.receiver.matches.len(), 1);
    let (value, payload) = &run.receiver.matches[0];
    assert_eq!(
        rowcodec::decode_value(value).unwrap(),
        Value::from("widget")
    );
    let rows = rowcodec::decode_rows(payload).expect("decode rows");
    assert_eq!(rows.len(), 2, "both widget rows travel as ext(v)");
    assert_eq!(rows[0][1], Value::Int(7));
    assert_eq!(rows[1][2], Value::Bool(true));
}

#[test]
fn equijoin_size_matches_oracle_randomized() {
    let group = small_group();
    for seed in 0..6u64 {
        let (vs, vr) = random_sets(seed.wrapping_mul(7) + 3, 15);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed + 100);
                equijoin_size::run_sender(t, &group, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed + 200);
                equijoin_size::run_receiver(t, &group, &vr, &mut rng)
            },
        )
        .expect("run");
        // Oracle: Σ_v dup_S(v)·dup_R(v).
        let mut s_counts = std::collections::BTreeMap::new();
        for v in &vs {
            *s_counts.entry(v).or_insert(0u64) += 1;
        }
        let mut expect = 0u64;
        let mut r_counts = std::collections::BTreeMap::new();
        for v in &vr {
            *r_counts.entry(v).or_insert(0u64) += 1;
        }
        for (v, d_r) in r_counts {
            expect += d_r * s_counts.get(v).copied().unwrap_or(0);
        }
        assert_eq!(run.receiver.join_size, expect, "seed={seed}");
    }
}

#[test]
fn works_over_paper_scale_768_bit_group() {
    // One run at a realistic parameter size — slower, so just one case.
    let group = QrGroup::well_known(768).expect("bundled group");
    let vs: Vec<Vec<u8>> = (0..12u32).map(|i| format!("s{i}").into_bytes()).collect();
    let mut vr: Vec<Vec<u8>> = (6..18u32).map(|i| format!("s{i}").into_bytes()).collect();
    vr.push(b"only-r".to_vec());
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            intersection::run_sender(t, &group, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(2);
            intersection::run_receiver(t, &group, &vr, &mut rng)
        },
    )
    .expect("run");
    assert_eq!(run.receiver.intersection.len(), 6); // s6..s11
                                                    // §6.1 communication formula at k = 768 (plus framing headers).
    let k = 768u64;
    let formula_bits = (12 + 2 * 13) * k;
    let measured = run.total_bits();
    assert!(
        measured >= formula_bits && measured <= formula_bits + 1000,
        "measured {measured} vs formula {formula_bits}"
    );
}

#[test]
fn deterministic_given_seeds() {
    let group = small_group();
    let (vs, vr) = random_sets(9, 15);
    let run_once = || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(42);
                intersection::run_sender(t, &group, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(43);
                intersection::run_receiver(t, &group, &vr, &mut rng)
            },
        )
        .expect("run")
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.receiver.intersection, b.receiver.intersection);
    assert_eq!(a.total_bits(), b.total_bits());
}
