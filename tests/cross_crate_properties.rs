//! Cross-crate property tests: for arbitrary generated inputs, the
//! private protocols must agree with plain set algebra, and the whole
//! privdb → rowcodec → protocol pipeline must round-trip.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

use minshare::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> &'static QrGroup {
    static GROUP: OnceLock<QrGroup> = OnceLock::new();
    GROUP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xabcd);
        QrGroup::generate(&mut rng, 64).expect("group")
    })
}

/// Small-vocabulary value lists so that intersections are non-trivial.
fn values(max_len: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(0u8..12, 0..max_len)
        .prop_map(|v| v.into_iter().map(|b| vec![b]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn intersection_agrees_with_set_algebra(vs in values(12), vr in values(12), seed in any::<u64>()) {
        let g = group();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                intersection::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xffff);
                intersection::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        let s: BTreeSet<&Vec<u8>> = vs.iter().collect();
        let r: BTreeSet<&Vec<u8>> = vr.iter().collect();
        let expect: Vec<Vec<u8>> = s.intersection(&r).map(|v| (*v).clone()).collect();
        prop_assert_eq!(run.receiver.intersection, expect);
    }

    #[test]
    fn size_protocol_agrees_with_intersection_protocol(vs in values(12), vr in values(12), seed in any::<u64>()) {
        let g = group();
        let full = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                intersection::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 1);
                intersection::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        let size = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 2);
                intersection_size::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 3);
                intersection_size::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        prop_assert_eq!(full.receiver.intersection.len(), size.receiver.intersection_size);
        // Both runs transfer identical bit counts (§6.1).
        prop_assert_eq!(full.total_bits(), size.total_bits());
    }

    #[test]
    fn equijoin_payloads_are_exact(vs in values(8), vr in values(8), seed in any::<u64>()) {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 16);
        let distinct: BTreeSet<&Vec<u8>> = vs.iter().collect();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = distinct
            .iter()
            .map(|v| ((*v).clone(), (*v).clone()))
            .collect();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                equijoin::run_sender(t, g, &cipher, &entries, &mut rng)
            },
            |t| {
                let cipher = HybridCipher::new(g.clone(), 16);
                let mut rng = StdRng::seed_from_u64(seed ^ 9);
                equijoin::run_receiver(t, g, &cipher, &vr, &mut rng)
            },
        ).expect("run");
        // Every match carries its own value as payload, and the match set
        // is the intersection.
        let r: BTreeSet<&Vec<u8>> = vr.iter().collect();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = distinct
            .iter()
            .filter(|v| r.contains(**v))
            .map(|v| ((*v).clone(), (*v).clone()))
            .collect();
        prop_assert_eq!(run.receiver.matches, expect);
    }

    #[test]
    fn equijoin_size_is_sum_of_products(vs in values(10), vr in values(10), seed in any::<u64>()) {
        let g = group();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                equijoin_size::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 5);
                equijoin_size::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        let mut s_counts: BTreeMap<&Vec<u8>, u64> = BTreeMap::new();
        for v in &vs {
            *s_counts.entry(v).or_insert(0) += 1;
        }
        let mut r_counts: BTreeMap<&Vec<u8>, u64> = BTreeMap::new();
        for v in &vr {
            *r_counts.entry(v).or_insert(0) += 1;
        }
        let expect: u64 = r_counts
            .iter()
            .map(|(v, d_r)| d_r * s_counts.get(*v).copied().unwrap_or(0))
            .sum();
        prop_assert_eq!(run.receiver.join_size, expect);
        // The class-intersection matrix must match the clear calculator.
        prop_assert_eq!(
            run.receiver.class_intersections,
            minshare::leakage::expected_class_intersections(&vr, &vs)
        );
    }

    #[test]
    fn rowcodec_values_survive_protocol(ints in proptest::collection::vec(any::<i64>(), 0..8), seed in any::<u64>()) {
        // Int values → canonical bytes → intersection → decode.
        let g = group();
        let vs: Vec<Vec<u8>> = ints
            .iter()
            .map(|i| rowcodec::encode_value(&Value::Int(*i)))
            .collect();
        let vr = vs.clone();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                intersection::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 7);
                intersection::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        // Identical sets → intersection is the deduplicated input, and
        // every element decodes back to an Int.
        let distinct: BTreeSet<&Vec<u8>> = vs.iter().collect();
        prop_assert_eq!(run.receiver.intersection.len(), distinct.len());
        for v in &run.receiver.intersection {
            let decoded = rowcodec::decode_value(v).expect("decode");
            prop_assert!(matches!(decoded, Value::Int(_)));
        }
    }
}
