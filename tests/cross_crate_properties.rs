//! Cross-crate property tests: for arbitrary generated inputs, the
//! private protocols must agree with plain set algebra, and the whole
//! privdb → rowcodec → protocol pipeline must round-trip.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

use minshare::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> &'static QrGroup {
    static GROUP: OnceLock<QrGroup> = OnceLock::new();
    GROUP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xabcd);
        QrGroup::generate(&mut rng, 64).expect("group")
    })
}

/// Small-vocabulary value lists so that intersections are non-trivial.
fn values(max_len: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(0u8..12, 0..max_len)
        .prop_map(|v| v.into_iter().map(|b| vec![b]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn intersection_agrees_with_set_algebra(vs in values(12), vr in values(12), seed in any::<u64>()) {
        let g = group();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                intersection::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xffff);
                intersection::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        let s: BTreeSet<&Vec<u8>> = vs.iter().collect();
        let r: BTreeSet<&Vec<u8>> = vr.iter().collect();
        let expect: Vec<Vec<u8>> = s.intersection(&r).map(|v| (*v).clone()).collect();
        prop_assert_eq!(run.receiver.intersection, expect);
    }

    #[test]
    fn size_protocol_agrees_with_intersection_protocol(vs in values(12), vr in values(12), seed in any::<u64>()) {
        let g = group();
        let full = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                intersection::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 1);
                intersection::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        let size = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 2);
                intersection_size::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 3);
                intersection_size::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        prop_assert_eq!(full.receiver.intersection.len(), size.receiver.intersection_size);
        // Both runs transfer identical bit counts (§6.1).
        prop_assert_eq!(full.total_bits(), size.total_bits());
    }

    #[test]
    fn equijoin_payloads_are_exact(vs in values(8), vr in values(8), seed in any::<u64>()) {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 16);
        let distinct: BTreeSet<&Vec<u8>> = vs.iter().collect();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = distinct
            .iter()
            .map(|v| ((*v).clone(), (*v).clone()))
            .collect();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                equijoin::run_sender(t, g, &cipher, &entries, &mut rng)
            },
            |t| {
                let cipher = HybridCipher::new(g.clone(), 16);
                let mut rng = StdRng::seed_from_u64(seed ^ 9);
                equijoin::run_receiver(t, g, &cipher, &vr, &mut rng)
            },
        ).expect("run");
        // Every match carries its own value as payload, and the match set
        // is the intersection.
        let r: BTreeSet<&Vec<u8>> = vr.iter().collect();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = distinct
            .iter()
            .filter(|v| r.contains(**v))
            .map(|v| ((*v).clone(), (*v).clone()))
            .collect();
        prop_assert_eq!(run.receiver.matches, expect);
    }

    #[test]
    fn equijoin_size_is_sum_of_products(vs in values(10), vr in values(10), seed in any::<u64>()) {
        let g = group();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                equijoin_size::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 5);
                equijoin_size::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        let mut s_counts: BTreeMap<&Vec<u8>, u64> = BTreeMap::new();
        for v in &vs {
            *s_counts.entry(v).or_insert(0) += 1;
        }
        let mut r_counts: BTreeMap<&Vec<u8>, u64> = BTreeMap::new();
        for v in &vr {
            *r_counts.entry(v).or_insert(0) += 1;
        }
        let expect: u64 = r_counts
            .iter()
            .map(|(v, d_r)| d_r * s_counts.get(*v).copied().unwrap_or(0))
            .sum();
        prop_assert_eq!(run.receiver.join_size, expect);
        // The class-intersection matrix must match the clear calculator.
        prop_assert_eq!(
            run.receiver.class_intersections,
            minshare::leakage::expected_class_intersections(&vr, &vs)
        );
    }

    #[test]
    fn rowcodec_values_survive_protocol(ints in proptest::collection::vec(any::<i64>(), 0..8), seed in any::<u64>()) {
        // Int values → canonical bytes → intersection → decode.
        let g = group();
        let vs: Vec<Vec<u8>> = ints
            .iter()
            .map(|i| rowcodec::encode_value(&Value::Int(*i)))
            .collect();
        let vr = vs.clone();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                intersection::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 7);
                intersection::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("run");
        // Identical sets → intersection is the deduplicated input, and
        // every element decodes back to an Int.
        let distinct: BTreeSet<&Vec<u8>> = vs.iter().collect();
        prop_assert_eq!(run.receiver.intersection.len(), distinct.len());
        for v in &run.receiver.intersection {
            let decoded = rowcodec::decode_value(v).expect("decode");
            prop_assert!(matches!(decoded, Value::Int(_)));
        }
    }
}

// ---------------------------------------------------------------------
// Pipelined-vs-serial-vs-naive differential suite: for arbitrary value
// sets (duplicates, empty sides, tiny overlaps all arise from the
// generator; the explicit edge test below pins the important shapes),
// the chunk-pipelined engines must agree with the serial engines, and
// both must agree with clear-text set algebra (`naive.rs`).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipelined_serial_and_naive_agree(
        vs in values(14),
        vr in values(14),
        seed in any::<u64>(),
        chunk in 1usize..6,
    ) {
        let g = group();
        let pool = EncryptPool::new(2);
        let cfg = PipelineConfig::chunked(chunk);
        let serial = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                intersection::run_sender(t, g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xaaaa);
                intersection::run_receiver(t, g, &vr, &mut rng)
            },
        ).expect("serial");
        let piped = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(seed);
                pipeline::run_intersection_sender(t, g, &vs, &mut rng, &pool, cfg)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xaaaa);
                pipeline::run_intersection_receiver(t, g, &vr, &mut rng, &pool, cfg)
            },
        ).expect("pipelined");
        prop_assert_eq!(&piped.sender, &serial.sender);
        prop_assert_eq!(&piped.receiver, &serial.receiver);
        let (clear, _) = minshare::naive::naive_intersection(&vs, &vr);
        prop_assert_eq!(&piped.receiver.intersection, &clear);
    }
}

#[test]
fn pipelined_edge_shapes_agree_with_naive() {
    let g = group();
    let pool = EncryptPool::new(2);
    let cfg = PipelineConfig::chunked(2);
    let cases: Vec<(Vec<Vec<u8>>, Vec<Vec<u8>>)> = vec![
        (vec![], vec![]),                                     // both empty
        (vec![], vec![vec![1], vec![2]]),                     // empty sender
        (vec![vec![1], vec![2]], vec![]),                     // empty receiver
        (vec![vec![7]], vec![vec![7]]),                       // singleton overlap
        (vec![vec![3]; 4], vec![vec![3], vec![4]]),           // sender all duplicates
        (vec![vec![1], vec![2]], vec![vec![3], vec![4]]),     // disjoint
    ];
    for (vs, vr) in cases {
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(31);
                pipeline::run_intersection_sender(t, g, &vs, &mut rng, &pool, cfg)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(32);
                pipeline::run_intersection_receiver(t, g, &vr, &mut rng, &pool, cfg)
            },
        )
        .expect("run");
        let (clear, _) = minshare::naive::naive_intersection(&vs, &vr);
        assert_eq!(run.receiver.intersection, clear, "vs={vs:?} vr={vr:?}");
    }
}

// ---------------------------------------------------------------------
// Equijoin-size multiset edges (§5.2).
// ---------------------------------------------------------------------

fn run_equijoin_size_pair(
    vs: &[Vec<u8>],
    vr: &[Vec<u8>],
) -> (
    minshare::equijoin_size::EquijoinSizeSenderOutput,
    minshare::equijoin_size::EquijoinSizeReceiverOutput,
) {
    let g = group();
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(41);
            equijoin_size::run_sender(t, g, vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(42);
            equijoin_size::run_receiver(t, g, vr, &mut rng)
        },
    )
    .expect("run");
    (run.sender, run.receiver)
}

#[test]
fn equijoin_size_all_duplicates_single_class() {
    // Both sides hold one value many times: the join size is the product
    // of the multiplicities and the §5.2 leak collapses to one class
    // pair |VR(3) ∩ VS(5)| = 1.
    let vs = vec![b"dup".to_vec(); 5];
    let vr = vec![b"dup".to_vec(); 3];
    let (sender, receiver) = run_equijoin_size_pair(&vs, &vr);
    assert_eq!(receiver.join_size, 15);
    assert_eq!(
        receiver.class_intersections,
        minshare::leakage::expected_class_intersections(&vr, &vs)
    );
    assert_eq!(receiver.class_intersections, BTreeMap::from([((3, 5), 1)]));
    // Each party sees exactly the peer's duplicate distribution, nothing
    // about the value itself.
    assert_eq!(sender.peer_multiset_size, 3);
    assert_eq!(sender.peer_duplicate_distribution, BTreeMap::from([(3, 1)]));
    assert_eq!(receiver.peer_multiset_size, 5);
    assert_eq!(receiver.peer_duplicate_distribution, BTreeMap::from([(5, 1)]));
}

#[test]
fn equijoin_size_disjoint_duplicate_classes() {
    // No value crosses sides: the join is empty and the class matrix has
    // no entries — but the duplicate distributions still leak, exactly
    // as §5.2 concedes.
    let vs: Vec<Vec<u8>> = [b"a", b"a", b"b", b"b", b"c"].map(|v| v.to_vec()).into();
    let vr: Vec<Vec<u8>> = [b"d", b"d", b"d", b"e"].map(|v| v.to_vec()).into();
    let (sender, receiver) = run_equijoin_size_pair(&vs, &vr);
    assert_eq!(receiver.join_size, 0);
    assert!(receiver.class_intersections.is_empty());
    assert_eq!(
        receiver.class_intersections,
        minshare::leakage::expected_class_intersections(&vr, &vs)
    );
    // S's classes: two values twice, one once → {2: 2, 1: 1}.
    assert_eq!(
        receiver.peer_duplicate_distribution,
        BTreeMap::from([(1, 1), (2, 2)])
    );
    // R's classes: one value three times, one once.
    assert_eq!(
        sender.peer_duplicate_distribution,
        BTreeMap::from([(1, 1), (3, 1)])
    );
}

#[test]
fn equijoin_size_mixed_classes_match_leakage_prediction() {
    // Overlapping classes with different multiplicities on each side:
    // the |VR(d) ∩ VS(d')| matrix must match the clear calculator cell
    // for cell.
    let vs: Vec<Vec<u8>> = [b"x", b"x", b"x", b"y", b"z", b"z"].map(|v| v.to_vec()).into();
    let vr: Vec<Vec<u8>> = [b"x", b"y", b"y", b"z", b"z", b"w"].map(|v| v.to_vec()).into();
    let (_, receiver) = run_equijoin_size_pair(&vs, &vr);
    // x: 1×3, y: 2×1, z: 2×2 → join size 3 + 2 + 4 = 9.
    assert_eq!(receiver.join_size, 9);
    let expected = minshare::leakage::expected_class_intersections(&vr, &vs);
    assert_eq!(receiver.class_intersections, expected);
    assert_eq!(
        expected,
        BTreeMap::from([((1, 3), 1), ((2, 1), 1), ((2, 2), 1)])
    );
}
