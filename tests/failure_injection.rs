//! Failure injection: malformed frames, out-of-phase messages, unsorted
//! lists, non-group elements, truncation — every corruption must surface
//! as a typed [`minshare::ProtocolError`], never a panic or a wrong
//! answer.

use minshare::prelude::*;
use minshare::wire::Message;
use minshare::ProtocolError;
use minshare_bignum::UBig;
use minshare_net::{duplex_pair, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> QrGroup {
    let mut rng = StdRng::seed_from_u64(13);
    QrGroup::generate(&mut rng, 64).expect("group")
}

/// Runs the receiver against a scripted fake sender that plays the given
/// frames in order.
fn receiver_against_script(
    g: &QrGroup,
    vr: &[Vec<u8>],
    frames: Vec<Vec<u8>>,
) -> Result<minshare::intersection::IntersectionReceiverOutput, ProtocolError> {
    let (mut fake_sender, mut r_end) = duplex_pair();
    let handle = std::thread::spawn(move || {
        // Consume Y_R, then play the script.
        let _ = fake_sender.recv();
        for f in frames {
            if fake_sender.send(&f).is_err() {
                break;
            }
        }
    });
    let mut rng = StdRng::seed_from_u64(999);
    let out = intersection::run_receiver(&mut r_end, g, vr, &mut rng);
    drop(r_end);
    handle.join().expect("script thread");
    out
}

fn some_codewords(g: &QrGroup, n: usize) -> Vec<UBig> {
    let mut rng = StdRng::seed_from_u64(5);
    let mut v: Vec<UBig> = (0..n).map(|_| g.sample_element(&mut rng)).collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn garbage_frame_is_malformed_error() {
    let g = group();
    let err = receiver_against_script(&g, &[b"x".to_vec()], vec![vec![0xff, 0, 1, 2]])
        .expect_err("must fail");
    assert!(
        matches!(err, ProtocolError::MalformedMessage { .. }),
        "{err}"
    );
}

#[test]
fn truncated_frame_is_malformed_error() {
    let g = group();
    let frame = Message::Codewords(some_codewords(&g, 3))
        .encode(&g)
        .expect("encode");
    let err = receiver_against_script(
        &g,
        &[b"x".to_vec()],
        vec![frame[..frame.len() - 2].to_vec()],
    )
    .expect_err("must fail");
    assert!(
        matches!(err, ProtocolError::MalformedMessage { .. }),
        "{err}"
    );
}

#[test]
fn non_group_element_rejected() {
    let g = group();
    // Hand-craft a Codewords frame containing a non-residue.
    let mut non_member = UBig::from(2u64);
    while g.is_member(&non_member) {
        non_member = non_member.add_small(1);
    }
    let mut frame = vec![1u8, 0, 0, 0, 1];
    frame.extend(non_member.to_be_bytes_padded(g.codeword_bytes()).unwrap());
    let err = receiver_against_script(&g, &[b"x".to_vec()], vec![frame]).expect_err("must fail");
    assert!(matches!(err, ProtocolError::Crypto(_)), "{err}");
}

#[test]
fn unsorted_ys_rejected() {
    let g = group();
    let mut cw = some_codewords(&g, 3);
    cw.reverse(); // now descending
    let frame = Message::Codewords(cw).encode(&g).expect("encode");
    let err = receiver_against_script(&g, &[b"x".to_vec()], vec![frame]).expect_err("must fail");
    assert!(matches!(err, ProtocolError::NotSorted { .. }), "{err}");
}

#[test]
fn duplicate_codewords_in_set_rejected() {
    let g = group();
    let cw = some_codewords(&g, 1);
    let dup = vec![cw[0].clone(), cw[0].clone()];
    let frame = Message::Codewords(dup).encode(&g).expect("encode");
    let err = receiver_against_script(&g, &[b"x".to_vec()], vec![frame]).expect_err("must fail");
    assert!(matches!(err, ProtocolError::NotSorted { .. }), "{err}");
}

#[test]
fn wrong_message_kind_rejected() {
    let g = group();
    let cw = some_codewords(&g, 2);
    let frame = Message::CodewordPairs(vec![(cw[0].clone(), cw[1].clone())])
        .encode(&g)
        .expect("encode");
    let err = receiver_against_script(&g, &[b"x".to_vec()], vec![frame]).expect_err("must fail");
    assert!(
        matches!(err, ProtocolError::UnexpectedMessage { .. }),
        "{err}"
    );
}

#[test]
fn reencryption_length_mismatch_rejected() {
    let g = group();
    // Valid Y_S, then a re-encryption list with the wrong length.
    let ys = Message::Codewords(some_codewords(&g, 2))
        .encode(&g)
        .expect("encode");
    let wrong = Message::Codewords(some_codewords(&g, 3))
        .encode(&g)
        .expect("encode");
    let err = receiver_against_script(&g, &[b"only-one-value".to_vec()], vec![ys, wrong])
        .expect_err("must fail");
    assert!(matches!(err, ProtocolError::LengthMismatch { .. }), "{err}");
}

#[test]
fn peer_disconnect_is_net_error() {
    let g = group();
    // Script with no frames: the fake sender hangs up after Y_R.
    let err = receiver_against_script(&g, &[b"x".to_vec()], vec![]).expect_err("must fail");
    assert!(matches!(err, ProtocolError::Net(_)), "{err}");
}

#[test]
fn sender_validates_too() {
    // Drive the *sender* with an unsorted Y_R.
    let g = group();
    let (mut fake_receiver, mut s_end) = duplex_pair();
    let g2 = g.clone();
    let handle = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(1);
        intersection::run_sender(&mut s_end, &g2, &[b"v".to_vec()], &mut rng)
    });
    let mut cw = some_codewords(&g, 3);
    cw.reverse();
    let frame = Message::Codewords(cw).encode(&g).expect("encode");
    fake_receiver.send(&frame).expect("send");
    let err = handle.join().expect("thread").expect_err("must fail");
    assert!(matches!(err, ProtocolError::NotSorted { .. }), "{err}");
}

#[test]
fn equijoin_rejects_unsorted_payload_table() {
    let g = group();
    let cipher = HybridCipher::new(g.clone(), 16);
    let (mut fake_sender, mut r_end) = duplex_pair();
    let g2 = g.clone();
    let handle = std::thread::spawn(move || {
        let cipher = HybridCipher::new(g2.clone(), 16);
        let mut rng = StdRng::seed_from_u64(2);
        equijoin::run_receiver(&mut r_end, &g2, &cipher, &[b"v".to_vec()], &mut rng)
    });
    // Consume Y_R; reply with a valid pair list, then an unsorted payload
    // table.
    let yr_frame = fake_sender.recv().expect("yr");
    let yr = match Message::decode(&yr_frame, &g).expect("decode") {
        Message::Codewords(l) => l,
        _ => panic!("expected codewords"),
    };
    let mut rng = StdRng::seed_from_u64(3);
    let pairs: Vec<(UBig, UBig)> = yr
        .iter()
        .map(|_| (g.sample_element(&mut rng), g.sample_element(&mut rng)))
        .collect();
    fake_sender
        .send(&Message::CodewordPairs(pairs).encode(&g).expect("enc"))
        .expect("send");
    let mut tags = some_codewords(&g, 2);
    tags.reverse();
    let kappa = g.sample_element(&mut rng);
    let payload: Vec<(UBig, Vec<u8>)> = tags
        .into_iter()
        .map(|t| (t, cipher.encrypt(&kappa, b"x").expect("enc")))
        .collect();
    fake_sender
        .send(&Message::PayloadPairs(payload).encode(&g).expect("enc"))
        .expect("send");
    let err = handle.join().expect("thread").expect_err("must fail");
    assert!(matches!(err, ProtocolError::NotSorted { .. }), "{err}");
}

#[test]
fn hash_collision_detection_hook_works() {
    // Cannot make SHA-256 collide, but the engine also reports
    // HashCollision when two receiver values map to the same sender tag.
    // Simulate by answering Y_R (two values) with identical pair entries.
    let g = group();
    let cipher = HybridCipher::new(g.clone(), 16);
    let (mut fake_sender, mut r_end) = duplex_pair();
    let g2 = g.clone();
    let handle = std::thread::spawn(move || {
        let cipher = HybridCipher::new(g2.clone(), 16);
        let mut rng = StdRng::seed_from_u64(4);
        equijoin::run_receiver(
            &mut r_end,
            &g2,
            &cipher,
            &[b"v1".to_vec(), b"v2".to_vec()],
            &mut rng,
        )
    });
    let _ = fake_sender.recv().expect("yr");
    let mut rng = StdRng::seed_from_u64(5);
    let same = g.sample_element(&mut rng);
    // Same (f_eS(y), f_e'S(y)) for both y's → R sees colliding tags.
    // (Decryption by e_R differs per y... use the *identity* structure:
    // actually colliding tags require equal f_eR^-1 images; send pairs
    // that decrypt to equal values by exploiting that R's decryption is a
    // bijection — impossible to force without e_R. Instead both entries
    // equal means tags differ post-decryption; so this path exercises the
    // PayloadPairs duplicate check instead.)
    let pairs = vec![(same.clone(), same.clone()), (same.clone(), same.clone())];
    fake_sender
        .send(&Message::CodewordPairs(pairs).encode(&g).expect("enc"))
        .expect("send");
    let kappa = g.sample_element(&mut rng);
    let ct = cipher.encrypt(&kappa, b"x").expect("enc");
    let payload = vec![(same.clone(), ct.clone()), (same, ct)];
    fake_sender
        .send(&Message::PayloadPairs(payload).encode(&g).expect("enc"))
        .expect("send");
    let err = handle.join().expect("thread").expect_err("must fail");
    // Duplicate first components in the payload table violate strict
    // sortedness (the paper's collision detection by sorting).
    assert!(
        matches!(
            err,
            ProtocolError::NotSorted { .. } | ProtocolError::HashCollision
        ),
        "{err}"
    );
}
