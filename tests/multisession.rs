//! Multi-session daemon conformance: N concurrent sessions over one mux
//! connection, under seeded fault schedules, checked for **isolation**.
//!
//! The headline property of the daemon (`minshare_net::server` +
//! `minshare::service`): a session's answer, trace digest, and byte
//! counters depend only on *that session's* inputs — never on what the
//! other sessions on the same connection are doing. The harness checks
//! this the strong way: every well-behaved session's concurrent outcome
//! must be **byte-identical** to a solo replay of the same session id
//! over a private perfect link, while
//!
//! * seven other sessions (a mix of §3 intersections, §4 equijoins and
//!   the §5 `-size` variants, including empty and empty-overlap sets,
//!   one of them a client-elected *sharded* bounded-memory session the
//!   daemon adopts mid-connection) run interleaved on the same
//!   connection,
//! * one rogue peer opens a session with a malformed request (typed
//!   per-session failure, nothing else), and
//! * one rogue peer aborts mid-protocol by dropping its session (typed
//!   per-session failure, nothing else),
//!
//! across `SCHEDULES` seeded drop/dup/delay/reorder/corrupt fault plans
//! injected *below* the retry layer. Faults may slow a session down;
//! they may never change any answer, digest, or payload-byte count.
//!
//! Two deterministic sub-tests cover the admission-control edges:
//! typed `Busy` load-shedding at the registry cap (the surviving
//! session is unperturbed), and graceful shutdown draining an active
//! session while shedding new OPENs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use minshare::prelude::*;
use minshare::service::ClientTraffic;
use minshare_net::{
    serve_mux_connection, sim_pair, FaultPlan, MuxClient, MuxConfig, NetError, RobustConfig,
    RobustTransport, SessionRegistry, ShutdownHandle, SimConfig, StatsProvider,
};
use minshare_trace::metrics::{MetricsRegistry, RegistrySink};
use minshare_trace::sink::{RingSink, TeeSink};
use minshare_trace::Tracer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeded fault schedules the concurrent matrix runs under.
const SCHEDULES: u64 = 20;
/// Well-behaved sessions per schedule (plus two rogue peers).
const WELL_BEHAVED: u32 = 8;
/// Session id of the rogue peer whose OPEN request is garbage.
const MALFORMED_SID: u32 = WELL_BEHAVED + 1;
/// Session id of the rogue peer that aborts mid-protocol.
const ABORT_SID: u32 = WELL_BEHAVED + 2;

fn group() -> QrGroup {
    let mut rng = StdRng::seed_from_u64(0x5e55);
    QrGroup::generate(&mut rng, 64).unwrap()
}

fn to_values(names: &[&str]) -> Vec<Vec<u8>> {
    names.iter().map(|n| n.as_bytes().to_vec()).collect()
}

/// The daemon's private database: values with fixed-length ext payloads
/// (the equijoin sessions decrypt these for matches).
fn server_entries() -> Vec<(Vec<u8>, Vec<u8>)> {
    [
        "apple", "grape", "melon", "peach", "mango", "lemon", "olive", "guava", "plumb", "caper",
    ]
    .iter()
    .map(|v| (v.as_bytes().to_vec(), format!("ext:{v}").into_bytes()))
    .collect()
}

fn make_service(workers: usize) -> Service {
    Service::new(
        group(),
        server_entries(),
        EncryptPool::new(workers),
        PipelineConfig::default(),
        32,
        0xDAE_0_5EED,
    )
}

/// One well-behaved client session: which protocol it runs, with which
/// value set, and over how many shard buckets (`1` = the plain
/// pipelined engines). Indexed by `session id - 1` — the mux client
/// assigns ids in open order, which is what lets the solo baseline use
/// the same id (and hence the same per-session server keys).
#[derive(Clone)]
struct SessionSpec {
    protocol: ProtocolKind,
    values: Vec<Vec<u8>>,
    shards: u32,
}

fn session_specs() -> Vec<SessionSpec> {
    let inter = |names: &[&str]| SessionSpec {
        protocol: ProtocolKind::Intersection,
        values: to_values(names),
        shards: 1,
    };
    let join = |names: &[&str]| SessionSpec {
        protocol: ProtocolKind::Equijoin,
        values: to_values(names),
        shards: 1,
    };
    vec![
        inter(&["grape", "melon", "pear"]),
        inter(&["apple", "caper", "quark", "zesty"]),
        // Size variant with empty overlap: the answer must still be
        // exact (zero).
        SessionSpec {
            protocol: ProtocolKind::IntersectionSize,
            values: to_values(&["durian", "lychee"]),
            shards: 1,
        },
        // Empty client set: degenerate but legal.
        inter(&[]),
        join(&["grape", "kiwi"]),
        // Multiset size variant: duplicates are kept, priced, and part
        // of the §5.2 disclosure the telemetry counters must reproduce.
        SessionSpec {
            protocol: ProtocolKind::EquijoinSize,
            values: to_values(&["olive", "guava", "olive", "apple", "wrong"]),
            shards: 1,
        },
        // Sharding is client-elected: this session announces 3 buckets
        // with a spill-forcing memory budget, and the daemon adopts
        // them mid-connection while every other session stays on the
        // unsharded path. Same isolation contract, same baseline
        // comparison — the bucketed frames and spill machinery must
        // survive the fault schedules byte-for-byte too.
        SessionSpec {
            protocol: ProtocolKind::Intersection,
            values: to_values(&["mango", "lemon", "olive", "melon", "apple", "grape"]),
            shards: 3,
        },
        join(&["durian"]),
    ]
}

/// The sharded session's client-side config: 3 buckets and a budget
/// small enough that the external sorter genuinely spills even at this
/// set size. Must be identical in the solo baseline and every
/// concurrent run — the deterministic `spill_done` events are part of
/// the compared trace digests.
fn shard_cfg_for(spec: &SessionSpec) -> ShardConfig {
    ShardConfig {
        shards: spec.shards,
        mem_budget: 1 << 10,
        ..ShardConfig::default()
    }
}

/// Per-session client randomness: distinct per session, identical
/// between the solo baseline and every concurrent run.
fn client_rng(session: u32) -> StdRng {
    StdRng::seed_from_u64(0xC11E_0000 ^ u64::from(session).wrapping_mul(0x9E37_79B9))
}

/// What the client side of one session produced.
#[derive(Debug, PartialEq)]
enum Answer {
    Intersection(Vec<Vec<u8>>),
    Equijoin(Vec<(Vec<u8>, Vec<u8>)>),
    /// The `-size` variants answer with a bare cardinality.
    Count(u64),
}

/// Runs one client session over `transport` and returns its answer plus
/// byte counts. Used identically for the solo baseline and the
/// concurrent runs — only the transport differs.
fn run_client<T: minshare_net::Transport>(
    spec: &SessionSpec,
    session: u32,
    transport: T,
    pool: &EncryptPool,
) -> Result<(Answer, ClientTraffic), ProtocolError> {
    let g = group();
    let mut rng = client_rng(session);
    match (spec.protocol, spec.shards > 1) {
        (ProtocolKind::Intersection, false) => {
            let (out, traffic) = run_client_intersection(
                transport,
                &g,
                &spec.values,
                &mut rng,
                pool,
                PipelineConfig::default(),
            )?;
            Ok((Answer::Intersection(out.intersection), traffic))
        }
        (ProtocolKind::Intersection, true) => {
            let (out, traffic) = run_client_intersection_sharded(
                transport,
                &g,
                &spec.values,
                &mut rng,
                pool,
                PipelineConfig::default(),
                &shard_cfg_for(spec),
            )?;
            Ok((Answer::Intersection(out.intersection), traffic))
        }
        (ProtocolKind::Equijoin, false) => {
            let (out, traffic) = run_client_equijoin(
                transport,
                &g,
                &spec.values,
                &mut rng,
                pool,
                PipelineConfig::default(),
                32,
            )?;
            Ok((Answer::Equijoin(out.matches), traffic))
        }
        (ProtocolKind::Equijoin, true) => {
            let (out, traffic) = run_client_equijoin_sharded(
                transport,
                &g,
                &spec.values,
                &mut rng,
                pool,
                PipelineConfig::default(),
                32,
                &shard_cfg_for(spec),
            )?;
            Ok((Answer::Equijoin(out.matches), traffic))
        }
        (ProtocolKind::IntersectionSize, sharded) => {
            // The sharded receiver degenerates to the serial engine at
            // `shards <= 1`, so one arm covers both spellings.
            let (out, traffic) = if sharded {
                run_client_intersection_size_sharded(
                    transport,
                    &g,
                    &spec.values,
                    &mut rng,
                    pool,
                    PipelineConfig::default(),
                    &shard_cfg_for(spec),
                )?
            } else {
                run_client_intersection_size(transport, &g, &spec.values, &mut rng)?
            };
            Ok((Answer::Count(out.intersection_size as u64), traffic))
        }
        (ProtocolKind::EquijoinSize, sharded) => {
            let (out, traffic) = if sharded {
                run_client_equijoin_size_sharded(
                    transport,
                    &g,
                    &spec.values,
                    &mut rng,
                    pool,
                    PipelineConfig::default(),
                    &shard_cfg_for(spec),
                )?
            } else {
                run_client_equijoin_size(transport, &g, &spec.values, &mut rng)?
            };
            Ok((Answer::Count(out.join_size as u64), traffic))
        }
    }
}

/// Everything one session's two halves produced, compared wholesale
/// between solo and concurrent runs.
#[derive(Debug, PartialEq)]
struct SessionOutcome {
    answer: Answer,
    traffic: ClientTraffic,
    report: SessionReport,
    /// Order-sensitive digest of the server side's deterministic trace
    /// events for this session.
    digest: u64,
}

/// What the server handler recorded for one session.
struct ServerSide {
    report: Result<SessionReport, String>,
    digest: u64,
}

/// Solo baseline: the same session id, request, and client seed as the
/// concurrent run, but over a private perfect duplex link with nothing
/// else happening. This is the ground truth every concurrent run must
/// reproduce byte-for-byte.
fn solo_baseline(service: &Arc<Service>, session: u32, spec: &SessionSpec) -> SessionOutcome {
    let (server_t, client_t) = minshare_net::duplex_pair();
    let request = SessionRequest::new(spec.protocol).encode();
    let svc = Arc::clone(service);
    let server = std::thread::spawn(move || {
        let ring = Arc::new(RingSink::new(1 << 14));
        let sink: Arc<dyn minshare_trace::TraceSink> = ring.clone();
        let _installed = minshare_trace::install(Tracer::to_sink(sink));
        let report = svc.handle(session, &request, server_t);
        (report, ring.digest())
    });
    let pool = EncryptPool::new(0);
    let (answer, traffic) = run_client(spec, session, client_t, &pool).expect("solo session");
    let (report, digest) = server.join().expect("solo server thread");
    SessionOutcome {
        answer,
        traffic,
        report: report.expect("solo report"),
        digest,
    }
}

/// Runs the whole concurrent matrix once under the fault schedule for
/// `seed`: 8 well-behaved sessions + 2 rogue peers over one mux
/// connection on a faulty simulated link. Returns per-session client
/// outcomes, per-session server records, and the connection stats.
#[allow(clippy::type_complexity)]
fn run_concurrent(
    service: &Arc<Service>,
    seed: u64,
) -> (
    HashMap<u32, (Answer, ClientTraffic)>,
    HashMap<u32, ServerSide>,
    minshare_net::ServerStats,
) {
    let specs = session_specs();
    let plan = FaultPlan::from_seed(seed);
    let sim = SimConfig {
        latency_ms: 1,
        // The mux loops poll the transport, and every quiet poll advances
        // the virtual clock; a protocol's worth of polling burns virtual
        // time far faster than wall time, so the deadline is effectively
        // "never" and the wall-clock backstop is the real hang guard.
        run_deadline_ms: 1 << 40,
        real_backstop_ms: 120_000,
    };
    let (server_end, client_end, _trace) = sim_pair(sim, &plan);
    let server_rt = RobustTransport::with_config(server_end, RobustConfig::default());
    let client_rt = RobustTransport::with_config(client_end, RobustConfig::default());

    let mux = MuxConfig {
        poll_interval_ms: 1,
        ..MuxConfig::default()
    };
    let registry = SessionRegistry::new(64);
    let shutdown = ShutdownHandle::new();
    let server_sides: Arc<Mutex<HashMap<u32, ServerSide>>> = Arc::new(Mutex::new(HashMap::new()));

    let svc = Arc::clone(service);
    let sides = Arc::clone(&server_sides);
    let server_mux = mux.clone();
    let server_registry = Arc::clone(&registry);
    let server_shutdown = shutdown.clone();
    let server = std::thread::spawn(move || {
        serve_mux_connection(
            server_rt,
            &server_mux,
            &server_registry,
            &server_shutdown,
            None,
            |sid, request, session_t| {
                // Per-session tracer: the handler thread is the only
                // thread emitting this session's deterministic events.
                let ring = Arc::new(RingSink::new(1 << 14));
                let sink: Arc<dyn minshare_trace::TraceSink> = ring.clone();
                let _installed = minshare_trace::install(Tracer::to_sink(sink));
                let report = svc
                    .handle(sid, &request, session_t)
                    .map_err(|e| e.to_string());
                let mut map = sides.lock().unwrap_or_else(|e| e.into_inner());
                map.insert(
                    sid,
                    ServerSide {
                        report,
                        digest: ring.digest(),
                    },
                );
            },
        )
    });

    let mut client = MuxClient::new(client_rt, mux);
    // Open in spec order so ids land 1..=8, matching the baselines.
    let mut opened = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let request = SessionRequest::new(spec.protocol).encode();
        let st = client.open_session(&request).expect("open well-behaved");
        assert_eq!(st.session_id(), i as u32 + 1);
        opened.push((i as u32 + 1, spec.clone(), st));
    }
    // Rogue peer #1: the OPEN payload is not a session request at all.
    // Admission happens before the handler looks at the payload, so the
    // open itself succeeds; the handler must fail *that session only*.
    let rogue_malformed = client
        .open_session(b"not a session request")
        .expect("open malformed rogue");
    assert_eq!(rogue_malformed.session_id(), MALFORMED_SID);
    // Rogue peer #2: a legal open, then the peer vanishes mid-protocol.
    let rogue_abort = client
        .open_session(&SessionRequest::new(ProtocolKind::Intersection).encode())
        .expect("open aborting rogue");
    assert_eq!(rogue_abort.session_id(), ABORT_SID);
    drop(rogue_abort);
    drop(rogue_malformed);

    // Drive all eight well-behaved sessions concurrently.
    let client_pool = EncryptPool::new(0);
    let mut outcomes: HashMap<u32, (Answer, ClientTraffic)> = HashMap::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (sid, spec, st) in opened {
            let pool = &client_pool;
            joins.push((
                sid,
                scope.spawn(move || run_client(&spec, sid, st, pool).expect("concurrent session")),
            ));
        }
        for (sid, join) in joins {
            outcomes.insert(sid, join.join().expect("client session thread"));
        }
    });

    client.close().expect("client close");
    let stats = server.join().expect("server thread").expect("server loop");
    let sides = Arc::try_unwrap(server_sides)
        .unwrap_or_else(|_| panic!("server sides still shared after join"))
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    (outcomes, sides, stats)
}

/// The headline matrix: for every seeded fault schedule, every
/// well-behaved session's concurrent outcome — answer, payload bytes in
/// both directions, §6.1 op counts, and server trace digest — is
/// byte-identical to its solo baseline, while two rogue peers fail with
/// typed per-session errors on the same connection.
#[test]
fn concurrent_sessions_match_solo_baselines_across_fault_schedules() {
    let service = Arc::new(make_service(2));
    let specs = session_specs();
    assert_eq!(specs.len(), WELL_BEHAVED as usize);

    // Ground truth, one solo run per session id.
    let baselines: HashMap<u32, SessionOutcome> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| (i as u32 + 1, solo_baseline(&service, i as u32 + 1, spec)))
        .collect();

    for seed in 0..SCHEDULES {
        let (outcomes, sides, stats) = run_concurrent(&service, seed);

        for sid in 1..=WELL_BEHAVED {
            let base = &baselines[&sid];
            let (answer, traffic) = &outcomes[&sid];
            let side = &sides[&sid];
            let report = side
                .report
                .as_ref()
                .unwrap_or_else(|e| panic!("seed {seed} session {sid} server error: {e}"));
            // Same answer, same payload bytes, same op counts, same
            // per-session server trace — as if the session ran alone.
            assert_eq!(answer, &base.answer, "seed {seed} session {sid} answer");
            assert_eq!(traffic, &base.traffic, "seed {seed} session {sid} traffic");
            assert_eq!(report, &base.report, "seed {seed} session {sid} report");
            assert_eq!(
                side.digest, base.digest,
                "seed {seed} session {sid} server trace digest"
            );
            // Cross-reconciliation inside the concurrent run itself.
            assert_eq!(report.bytes_sent, traffic.bytes_received);
            assert_eq!(report.bytes_received, traffic.bytes_sent);
        }

        // The rogue peers failed — typed, and only for themselves.
        let malformed = &sides[&MALFORMED_SID];
        let aborted = &sides[&ABORT_SID];
        assert!(
            malformed.report.is_err(),
            "seed {seed}: malformed OPEN must fail its own session"
        );
        assert!(
            aborted.report.is_err(),
            "seed {seed}: aborted peer must fail its own session"
        );

        // Connection accounting: everything opened, nothing shed.
        assert_eq!(stats.opened, u64::from(WELL_BEHAVED) + 2, "seed {seed}");
        assert_eq!(stats.rejected_busy, 0, "seed {seed}");
        assert_eq!(stats.shed_overflow, 0, "seed {seed}");
        assert_eq!(
            stats.completed + stats.closed_by_peer,
            u64::from(WELL_BEHAVED) + 2,
            "seed {seed}: every session accounted for exactly once"
        );
    }
}

/// Admission control: with a one-slot registry, a second OPEN while the
/// first session is still running is refused with a typed `Busy`
/// carrying the limit — and the surviving session's answer is exactly
/// its solo baseline.
#[test]
fn admission_cap_rejects_with_typed_busy_and_leaves_peers_unperturbed() {
    let service = Arc::new(make_service(0));
    let spec = &session_specs()[0];
    let baseline = solo_baseline(&service, 1, spec);

    let (server_t, client_t) = minshare_net::duplex_pair();
    let mux = MuxConfig {
        poll_interval_ms: 1,
        ..MuxConfig::default()
    };
    let registry = SessionRegistry::new(1);
    let shutdown = ShutdownHandle::new();
    let sides: Arc<Mutex<HashMap<u32, ServerSide>>> = Arc::new(Mutex::new(HashMap::new()));

    let svc = Arc::clone(&service);
    let sides_in = Arc::clone(&sides);
    let server_mux = mux.clone();
    let server_registry = Arc::clone(&registry);
    let server_shutdown = shutdown.clone();
    let server = std::thread::spawn(move || {
        serve_mux_connection(
            server_t,
            &server_mux,
            &server_registry,
            &server_shutdown,
            None,
            |sid, request, session_t| {
                let ring = Arc::new(RingSink::new(1 << 14));
                let sink: Arc<dyn minshare_trace::TraceSink> = ring.clone();
                let _installed = minshare_trace::install(Tracer::to_sink(sink));
                let report = svc
                    .handle(sid, &request, session_t)
                    .map_err(|e| e.to_string());
                sides_in
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(sid, ServerSide { report, digest: ring.digest() });
            },
        )
    });

    let mut client = MuxClient::new(client_t, mux);
    let request = SessionRequest::new(spec.protocol).encode();
    let held = client.open_session(&request).expect("first open");
    assert_eq!(held.session_id(), 1);
    // The slot is held until session 1's handler finishes, which cannot
    // happen before we run the client side — so this OPEN must shed.
    match client.open_session(&request) {
        Err(NetError::Busy { limit }) => assert_eq!(limit, 1),
        other => panic!("expected typed Busy, got {other:?}"),
    }

    // The shed OPEN did not perturb the admitted session.
    let pool = EncryptPool::new(0);
    let (answer, traffic) = run_client(spec, 1, held, &pool).expect("held session");
    assert_eq!(answer, baseline.answer);
    assert_eq!(traffic, baseline.traffic);

    client.close().expect("client close");
    let stats = server.join().expect("server thread").expect("server loop");
    let sides = sides.lock().unwrap_or_else(|e| e.into_inner());
    let side = &sides[&1];
    assert_eq!(side.report.as_ref().expect("session 1 report"), &baseline.report);
    assert_eq!(side.digest, baseline.digest);
    assert_eq!(stats.opened, 1);
    assert_eq!(stats.rejected_busy, 1);
}

/// Graceful shutdown: a session admitted before shutdown runs to
/// completion with its exact solo answer; an OPEN arriving after
/// shutdown is shed with a typed `Busy` even though the registry has
/// free capacity; the connection loop then drains and returns.
#[test]
fn graceful_shutdown_drains_active_sessions_and_sheds_new_opens() {
    let service = Arc::new(make_service(0));
    let spec = &session_specs()[4];
    let baseline = solo_baseline(&service, 1, spec);

    let (server_t, client_t) = minshare_net::duplex_pair();
    let mux = MuxConfig {
        poll_interval_ms: 1,
        ..MuxConfig::default()
    };
    let registry = SessionRegistry::new(8);
    let shutdown = ShutdownHandle::new();

    let svc = Arc::clone(&service);
    let server_mux = mux.clone();
    let server_registry = Arc::clone(&registry);
    let server_shutdown = shutdown.clone();
    let reports: Arc<Mutex<Vec<Result<SessionReport, String>>>> = Arc::new(Mutex::new(Vec::new()));
    let reports_in = Arc::clone(&reports);
    let server = std::thread::spawn(move || {
        serve_mux_connection(
            server_t,
            &server_mux,
            &server_registry,
            &server_shutdown,
            None,
            |sid, request, session_t| {
                let report = svc
                    .handle(sid, &request, session_t)
                    .map_err(|e| e.to_string());
                reports_in
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(report);
            },
        )
    });

    let mut client = MuxClient::new(client_t, mux);
    let request = SessionRequest::new(spec.protocol).encode();
    let admitted = client.open_session(&request).expect("open before shutdown");

    // Shutdown begins while the session is mid-flight: it must drain,
    // not be cut off.
    shutdown.shutdown();

    // A new OPEN after shutdown sheds even though 7 slots are free.
    match client.open_session(&request) {
        Err(NetError::Busy { .. }) => {}
        other => panic!("expected Busy while draining, got {other:?}"),
    }

    let pool = EncryptPool::new(0);
    let (answer, traffic) = run_client(spec, 1, admitted, &pool).expect("drained session");
    assert_eq!(answer, baseline.answer);
    assert_eq!(traffic, baseline.traffic);

    // The server loop exits on its own once the session drains — no
    // client GOAWAY needed.
    let stats = server.join().expect("server thread").expect("server loop");
    assert_eq!(stats.opened, 1);
    assert_eq!(stats.rejected_busy, 1);
    assert_eq!(stats.completed + stats.closed_by_peer, 1);
    let reports = reports.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].as_ref().expect("drained report"), &baseline.report);
    drop(client);
}

/// Live telemetry over the STATS frame: run the full well-behaved
/// matrix with the daemon's metrics registry wired in (a `TeeSink`
/// beside each per-session ring, exactly as `minshare serve` wires it),
/// scrape the endpoint mid-connection, and check the snapshot against
/// ground truth computed by the harness itself — lifecycle counters, a
/// populated per-protocol latency histogram, and per-peer cumulative
/// size-disclosure totals exactly equal to the §5.2 leakage model.
#[test]
fn stats_endpoint_reports_lifecycle_histograms_and_leakage_ground_truth() {
    const PEER: u64 = 7;
    let service = Arc::new(make_service(2));
    let specs = session_specs();

    // The same registrations `minshare serve` performs at startup.
    let metrics = Arc::new(MetricsRegistry::new());
    metrics.register_gauge("pool", "queue", "depth");
    metrics.register_gauge("pool", "session_vtime", "vtime");
    for kind in [
        ProtocolKind::Intersection,
        ProtocolKind::Equijoin,
        ProtocolKind::IntersectionSize,
        ProtocolKind::EquijoinSize,
    ] {
        metrics.register_histogram("protocol", kind.name(), "ce_per_sec");
    }
    let provider: StatsProvider = {
        let m = Arc::clone(&metrics);
        Arc::new(move || m.snapshot_json().into_bytes())
    };

    let (server_t, client_t) = minshare_net::duplex_pair();
    let mux = MuxConfig {
        poll_interval_ms: 1,
        ..MuxConfig::default()
    };
    let registry = SessionRegistry::new(64);
    let shutdown = ShutdownHandle::new();
    let done: Arc<Mutex<HashMap<u32, SessionReport>>> = Arc::new(Mutex::new(HashMap::new()));

    let svc = Arc::clone(&service);
    let done_in = Arc::clone(&done);
    let metrics_in = Arc::clone(&metrics);
    let server_mux = mux.clone();
    let server_registry = Arc::clone(&registry);
    let server_shutdown = shutdown.clone();
    let server = std::thread::spawn(move || {
        // The connection thread's lifecycle events feed the registry;
        // handler threads wire their own tee below (tracers are
        // thread-local and handler threads are spawned per session).
        let _conn_trace = minshare_trace::install(Tracer::to_sink(Arc::new(RegistrySink::new(
            Arc::clone(&metrics_in),
        ))));
        serve_mux_connection(
            server_t,
            &server_mux,
            &server_registry,
            &server_shutdown,
            Some(provider),
            |sid, request, session_t| {
                let ring = Arc::new(RingSink::new(1 << 14));
                let sink: Arc<dyn minshare_trace::TraceSink> = Arc::new(TeeSink::new(vec![
                    ring,
                    Arc::new(RegistrySink::new(Arc::clone(&metrics_in))),
                ]));
                let _installed = minshare_trace::install(Tracer::to_sink(sink));
                let report = svc
                    .handle_for_peer(PEER, sid, &request, session_t)
                    .expect("telemetry matrix session");
                done_in
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(sid, report);
            },
        )
    });

    let mut client = MuxClient::new(client_t, mux);
    let mut opened = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let st = client
            .open_session(&SessionRequest::new(spec.protocol).encode())
            .expect("open telemetry session");
        assert_eq!(st.session_id(), i as u32 + 1);
        opened.push((i as u32 + 1, spec.clone(), st));
    }
    let client_pool = EncryptPool::new(0);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (sid, spec, st) in opened {
            let pool = &client_pool;
            joins.push(scope.spawn(move || run_client(&spec, sid, st, pool).expect("session")));
        }
        for join in joins {
            join.join().expect("client session thread");
        }
    });

    // A handler records its report only after every telemetry event for
    // its session has been emitted; wait for all of them so the scrape
    // below is deterministic, not racing the handlers' tails.
    for _ in 0..2000 {
        if done.lock().unwrap_or_else(|e| e.into_inner()).len() == specs.len() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let learned_total: u64 = {
        let g = done.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(g.len(), specs.len(), "all handlers recorded a report");
        g.values().map(|r| r.peer_set_size as u64).sum()
    };

    // Ground truth from the leakage model: each set-protocol session
    // reveals the daemon's distinct value count to its peer, and the
    // multiset variant (equijoin-size) its occurrence count.
    let server_values: Vec<Vec<u8>> = server_entries().into_iter().map(|(v, _)| v).collect();
    let distinct: u64 = minshare::leakage::bucket_size_disclosure(&server_values, 1, &|_| 0)
        .iter()
        .sum();
    let multiset: u64 = minshare::leakage::bucket_multiset_disclosure(&server_values, 1, &|_| 0)
        .iter()
        .sum();
    let revealed_total: u64 = specs
        .iter()
        .map(|s| {
            if s.protocol.discloses_multiset() {
                multiset
            } else {
                distinct
            }
        })
        .sum();
    let intersections = specs
        .iter()
        .filter(|s| s.protocol == ProtocolKind::Intersection)
        .count() as u64;

    // Scrape the live endpoint mid-connection — this is the exact
    // payload `minshare stats` prints.
    let scraped = client.fetch_stats().expect("stats scrape");
    let json = String::from_utf8(scraped).expect("snapshot is utf-8");
    assert!(json.contains("\"stats_version\":1"), "version: {json}");
    assert!(
        json.contains(&format!("\"server/session_open/events\":{},", specs.len())),
        "lifecycle counters in scrape: {json}"
    );
    assert!(
        json.contains(&format!(
            "\"leakage/size_disclosure/revealed{{peer={PEER}}}\":{revealed_total},"
        )),
        "per-peer revealed total in scrape: {json}"
    );
    assert!(
        json.contains(&format!(
            "\"leakage/size_disclosure/learned{{peer={PEER}}}\":{learned_total},"
        )),
        "per-peer learned total in scrape: {json}"
    );
    assert!(
        json.contains(&format!(
            "\"protocol/intersection/duration_ns\":{{\"count\":{intersections},"
        )),
        "populated latency histogram in scrape: {json}"
    );

    client.close().expect("client close");
    let stats = server.join().expect("server thread").expect("server loop");
    assert_eq!(stats.opened, specs.len() as u64);
    assert_eq!(stats.stats_served, 1);

    // Post-drain registry: full lifecycle accounting, both latency
    // histograms populated exactly once per session, and the cumulative
    // per-peer disclosure counters equal to the leakage-model totals.
    assert_eq!(
        metrics.counter("server", "session_open", "events"),
        specs.len() as u64
    );
    assert_eq!(
        metrics.counter("server", "session_complete", "events")
            + metrics.counter("server", "closed_by_peer", "events"),
        specs.len() as u64,
        "every session reaped exactly once"
    );
    assert_eq!(metrics.counter("server", "drained", "events"), 1);
    assert_eq!(metrics.counter("server", "stats_served", "events"), 1);
    let inter = metrics
        .histogram("protocol", "intersection", "duration_ns")
        .expect("intersection latency histogram");
    assert_eq!(inter.count(), intersections);
    assert!(inter.sum() > 0, "latency sums are nonzero");
    let equijoins = specs
        .iter()
        .filter(|s| s.protocol == ProtocolKind::Equijoin)
        .count() as u64;
    let join_h = metrics
        .histogram("protocol", "equijoin", "duration_ns")
        .expect("equijoin latency histogram");
    assert_eq!(join_h.count(), equijoins);
    // Every protocol kind that ran left a latency histogram, including
    // the size variants.
    for kind in [ProtocolKind::IntersectionSize, ProtocolKind::EquijoinSize] {
        let h = metrics
            .histogram("protocol", kind.name(), "duration_ns")
            .unwrap_or_else(|| panic!("{} latency histogram", kind.name()));
        assert_eq!(h.count(), 1);
    }
    assert_eq!(
        metrics.counter_labeled("leakage", "size_disclosure", "revealed", "peer", PEER),
        revealed_total
    );
    assert_eq!(
        metrics.counter_labeled("leakage", "size_disclosure", "learned", "peer", PEER),
        learned_total
    );
    assert!(
        metrics.counter("pool", "submit", "events") > 0,
        "pool telemetry flowed through the handler tracers"
    );
}
