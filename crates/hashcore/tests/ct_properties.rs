//! Property tests for the constant-time comparison module: `ct_eq` and
//! `ct_eq_u64` must be extensionally identical to `==` — the whole point
//! is changing *how* the answer is computed, never *what* it is.

use minshare_hash::ct::{ct_eq, ct_eq_u64};
use proptest::prelude::*;

proptest! {
    // On arbitrary byte-slice pairs (including length mismatches),
    // `ct_eq` agrees with `==`.
    #[test]
    fn ct_eq_matches_slice_eq(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    // Reflexivity: every slice compares equal to itself.
    #[test]
    fn ct_eq_reflexive(a in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert!(ct_eq(&a, &a));
    }

    // Flipping exactly one bit anywhere must break equality — this is
    // the "touches every byte" contract observed extensionally: if any
    // position were skipped, a flip there would go unnoticed.
    #[test]
    fn ct_eq_detects_any_single_bit_flip(
        a in proptest::collection::vec(any::<u8>(), 1..64),
        idx in any::<u64>(),
        bit in 0u32..8,
    ) {
        let pos = (idx as usize) % a.len();
        let mut b = a.clone();
        b[pos] ^= 1u8 << bit;
        prop_assert!(!ct_eq(&a, &b));
        prop_assert!(!ct_eq(&b, &a));
    }

    // Word-level variant agrees with `==` on arbitrary limb vectors.
    #[test]
    fn ct_eq_u64_matches_slice_eq(
        a in proptest::collection::vec(any::<u64>(), 0..16),
        b in proptest::collection::vec(any::<u64>(), 0..16),
    ) {
        prop_assert_eq!(ct_eq_u64(&a, &b), a == b);
    }

    // Flipping one bit of one limb must break word-level equality.
    #[test]
    fn ct_eq_u64_detects_any_single_bit_flip(
        a in proptest::collection::vec(any::<u64>(), 1..16),
        idx in any::<u64>(),
        bit in 0u32..64,
    ) {
        let pos = (idx as usize) % a.len();
        let mut b = a.clone();
        b[pos] ^= 1u64 << bit;
        prop_assert!(!ct_eq_u64(&a, &b));
    }
}
