//! # minshare-hash
//!
//! From-scratch symmetric primitives for the `minshare` reproduction of
//! *"Information Sharing Across Private Databases"* (SIGMOD 2003):
//!
//! * [`ct`] — constant-time equality over bytes and words, the single
//!   funnel for comparing secret material anywhere in the workspace,
//! * [`sha256`] — the SHA-256 compression function and streaming hasher,
//! * [`hmac`] — HMAC-SHA-256,
//! * [`hkdf`] — HKDF (RFC 5869) extract-and-expand key derivation,
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439),
//! * [`oracle`] — counter-mode expansion of SHA-256 into arbitrary-length
//!   outputs, the concrete stand-in for the paper's ideal hash
//!   `h : V → DomF` (random-oracle model, §3.2.2).
//!
//! Like `minshare-bignum`, this crate implements rather than imports its
//! primitives: the hash and cipher layers are substrates the paper's
//! protocol stack depends on (Figure 1 lists "libraries including
//! encryption primitives" as a component of the system).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod chacha20;
pub mod ct;
pub mod hkdf;
pub mod hmac;
pub mod oracle;
pub mod sha256;

pub use oracle::RandomOracle;
pub use sha256::Sha256;
