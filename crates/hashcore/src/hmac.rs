//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Streaming HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// The outer-pad key block, kept for finalization.
    opad_block: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key` (any length; longer than one
    /// block is hashed first, per the spec).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad_block = [0u8; BLOCK_LEN];
        let mut opad_block = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_block[i] = key_block[i] ^ 0x36;
            opad_block[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_block);
        HmacSha256 { inner, opad_block }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_block);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-time tag comparison. Returns `true` iff the tags match.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct::ct_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        // Key "Jefe", data "what do ya want for nothing?".
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // Keys longer than one block must behave as their digest.
        let long_key = vec![0xaau8; 100];
        let mut short_key = [0u8; DIGEST_LEN];
        short_key.copy_from_slice(&Sha256::digest(&long_key));
        assert_eq!(
            HmacSha256::mac(&long_key, b"msg"),
            HmacSha256::mac(&short_key, b"msg")
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let key = b"streaming-key";
        let data = b"split across several updates";
        let mut h = HmacSha256::new(key);
        h.update(&data[..5]);
        h.update(&data[5..12]);
        h.update(&data[12..]);
        assert_eq!(h.finalize(), HmacSha256::mac(key, data));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"m", &bad));
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..31]));
        assert!(!HmacSha256::verify(b"k2", b"m", &tag));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(HmacSha256::mac(b"a", b"m"), HmacSha256::mac(b"b", b"m"));
    }
}
