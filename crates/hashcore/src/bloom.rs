//! A Bloom filter, used by the §7 tradeoff study (`minshare`'s
//! `tradeoff` module): trading extra disclosure for protocols that avoid
//! modular exponentiation entirely.

use crate::oracle::RandomOracle;

/// A fixed-size Bloom filter with `k` independent hash functions derived
//  from the random oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    k_hashes: u32,
}

impl BloomFilter {
    /// Creates an empty filter with `m_bits` bits and `k_hashes` hash
    /// functions.
    ///
    /// # Panics
    /// Panics if `m_bits == 0` or `k_hashes == 0`.
    pub fn new(m_bits: usize, k_hashes: u32) -> Self {
        assert!(m_bits > 0 && k_hashes > 0, "degenerate Bloom parameters");
        BloomFilter {
            bits: vec![0u64; m_bits.div_ceil(64)],
            m_bits,
            k_hashes,
        }
    }

    /// Chooses near-optimal parameters for `n` items at false-positive
    /// rate `p`: `m = -n·ln p / (ln 2)²`, `k = (m/n)·ln 2`.
    pub fn with_rate(n: usize, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p) && p > 0.0, "rate must be in (0,1)");
        let n = n.max(1) as f64;
        let m = (-n * p.ln() / (2f64.ln() * 2f64.ln())).ceil().max(8.0) as usize;
        let k = ((m as f64 / n) * 2f64.ln()).round().max(1.0) as u32;
        BloomFilter::new(m, k)
    }

    /// Filter size in bits.
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Number of hash functions.
    pub fn k_hashes(&self) -> u32 {
        self.k_hashes
    }

    /// The bit positions item `v` maps to.
    fn positions(&self, v: &[u8]) -> Vec<usize> {
        // One oracle call yields 8 bytes per hash function; reduce mod m.
        // The slight mod bias is irrelevant for a filter.
        let oracle = RandomOracle::new(b"minshare/bloom/v1");
        let bytes = oracle.expand(v, self.k_hashes as usize * 8);
        bytes
            .chunks(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                (u64::from_be_bytes(b) % self.m_bits as u64) as usize
            })
            .collect()
    }

    /// Inserts an item.
    pub fn insert(&mut self, v: &[u8]) {
        for pos in self.positions(v) {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
    }

    /// Membership test (no false negatives; false positives at the
    /// configured rate).
    pub fn contains(&self, v: &[u8]) -> bool {
        self.positions(v)
            .into_iter()
            .all(|pos| self.bits[pos / 64] >> (pos % 64) & 1 == 1)
    }

    /// Fraction of set bits — drives the actual false-positive rate
    /// `fill^k`.
    pub fn fill_ratio(&self) -> f64 {
        let ones: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        ones as f64 / self.m_bits as f64
    }

    /// The false-positive probability implied by the current fill.
    pub fn false_positive_rate(&self) -> f64 {
        self.fill_ratio().powi(self.k_hashes as i32)
    }

    /// Serializes as `m ‖ k ‖ bit words` (all big-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&(self.m_bits as u64).to_be_bytes());
        out.extend_from_slice(&self.k_hashes.to_be_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Parses [`BloomFilter::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 12 {
            return None;
        }
        let mut m8 = [0u8; 8];
        m8.copy_from_slice(&bytes[..8]);
        let m_bits = u64::from_be_bytes(m8) as usize;
        let mut k4 = [0u8; 4];
        k4.copy_from_slice(&bytes[8..12]);
        let k_hashes = u32::from_be_bytes(k4);
        if m_bits == 0 || k_hashes == 0 {
            return None;
        }
        let words = m_bits.div_ceil(64);
        if bytes.len() != 12 + words * 8 {
            return None;
        }
        let bits = bytes[12..]
            .chunks(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w.copy_from_slice(c);
                u64::from_be_bytes(w)
            })
            .collect();
        Some(BloomFilter {
            bits,
            m_bits,
            k_hashes,
        })
    }

    /// Wire size in bits (what the tradeoff protocol sends).
    pub fn wire_bits(&self) -> u64 {
        (self.to_bytes().len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(100, 0.01);
        let items: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_be_bytes().to_vec()).collect();
        for item in &items {
            f.insert(item);
        }
        for item in &items {
            assert!(f.contains(item));
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::with_rate(500, 0.02);
        for i in 0..500u32 {
            f.insert(&i.to_be_bytes());
        }
        // Probe 10_000 non-members.
        let fp = (10_000u32..20_000)
            .filter(|i| f.contains(&i.to_be_bytes()))
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.06, "rate={rate}");
        // The analytic estimate should be in the same ballpark.
        assert!((f.false_positive_rate() - rate).abs() < 0.03);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 4);
        assert!(!f.contains(b"anything"));
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn serialization_round_trip() {
        let mut f = BloomFilter::new(300, 5); // non-multiple of 64
        for i in 0..40u32 {
            f.insert(&i.to_be_bytes());
        }
        let bytes = f.to_bytes();
        let back = BloomFilter::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        assert!(BloomFilter::from_bytes(&bytes[..5]).is_none());
        assert!(BloomFilter::from_bytes(&[]).is_none());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(BloomFilter::from_bytes(&longer).is_none());
    }

    #[test]
    fn parameter_formula_sane() {
        let f = BloomFilter::with_rate(1000, 0.01);
        // ≈ 9.6 bits/item and ≈ 7 hashes for 1% FP.
        assert!((9000..11000).contains(&f.m_bits()), "{}", f.m_bits());
        assert!((6..=8).contains(&f.k_hashes()), "{}", f.k_hashes());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_bits_panics() {
        BloomFilter::new(0, 3);
    }
}
