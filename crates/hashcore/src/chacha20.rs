//! The ChaCha20 stream cipher (RFC 8439), from the specification.
//!
//! Used by the hybrid payload cipher `K` (paper §4.2, length-extension
//! variant) and by the secure-channel session layer.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;

/// Nonce length in bytes (the RFC 8439 96-bit nonce).
pub const NONCE_LEN: usize = 12;

const BLOCK_WORDS: usize = 16;
const BLOCK_BYTES: usize = 64;

/// The ChaCha20 quarter round on four state words.
#[inline]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte keystream block for (key, nonce, counter).
pub fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; BLOCK_BYTES] {
    let mut state = [0u32; BLOCK_WORDS];
    // "expand 32-byte k"
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_BYTES];
    for i in 0..BLOCK_WORDS {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream into `data` in place, starting at block
/// `initial_counter`. Applying it twice with the same parameters decrypts.
pub fn apply_keystream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK_BYTES) {
        let ks = block(key, nonce, counter);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter
            .checked_add(1)
            .expect("ChaCha20 counter overflow: message too long");
    }
}

/// Encrypts (or decrypts) a copy of `data`.
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    apply_keystream(key, nonce, initial_counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn rfc_key() -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let key = rfc_key();
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let ks = block(&key, &nonce, 1);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector_prefix() {
        // RFC 8439 §2.4.2: plaintext sunscreen message, counter starts at 1.
        let key = rfc_key();
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = xor_stream(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
    }

    #[test]
    fn round_trip() {
        let key = [7u8; KEY_LEN];
        let nonce = [3u8; NONCE_LEN];
        let msg: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let ct = xor_stream(&key, &nonce, 0, &msg);
        assert_ne!(ct, msg);
        assert_eq!(xor_stream(&key, &nonce, 0, &ct), msg);
    }

    #[test]
    fn counter_continuity() {
        // Encrypting in one call equals encrypting per-block with advancing
        // counters.
        let key = [1u8; KEY_LEN];
        let nonce = [2u8; NONCE_LEN];
        let msg = vec![0u8; 200];
        let whole = xor_stream(&key, &nonce, 5, &msg);
        let mut parts = Vec::new();
        parts.extend(xor_stream(&key, &nonce, 5, &msg[..64]));
        parts.extend(xor_stream(&key, &nonce, 6, &msg[64..128]));
        parts.extend(xor_stream(&key, &nonce, 7, &msg[128..]));
        assert_eq!(whole, parts);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [9u8; KEY_LEN];
        let a = block(&key, &[0u8; NONCE_LEN], 0);
        let mut n2 = [0u8; NONCE_LEN];
        n2[11] = 1;
        let b = block(&key, &n2, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_message() {
        let key = [0u8; KEY_LEN];
        let nonce = [0u8; NONCE_LEN];
        assert!(xor_stream(&key, &nonce, 0, &[]).is_empty());
    }
}
