//! Constant-time comparison primitives.
//!
//! Every comparison of secret byte material in the workspace funnels
//! through this module so the timing-safety argument lives in one place:
//! both functions examine *every* element of their inputs regardless of
//! where (or whether) a mismatch occurs, accumulating the difference with
//! bitwise OR and collapsing to a `bool` only at the end. Early-exit
//! comparisons (`==` on slices, `Iterator::eq`) leak the position of the
//! first differing byte through timing, which lets a network attacker
//! forge MAC tags one byte at a time; the accumulate-then-test shape
//! removes that signal.
//!
//! Callers: [`crate::hmac::HmacSha256::verify`] for tag checks, and the
//! secret-key `PartialEq` impls in `minshare-crypto` (via
//! [`ct_eq_u64`] over bignum limbs).

/// Constant-time equality over byte slices.
///
/// Returns `true` iff `a == b`. When the lengths match, runs in time
/// dependent only on the length, touching every byte of both slices.
/// Unequal lengths return `false`; the length itself is treated as
/// public (MAC tags and serialized keys have fixed, known sizes).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // black_box keeps the optimizer from turning the accumulated-OR loop
    // back into an early-exit memcmp.
    std::hint::black_box(diff) == 0
}

/// Constant-time equality over `u64` words (e.g. bignum limbs).
///
/// Same contract as [`ct_eq`]: every word of both slices is read, the
/// differences are OR-accumulated, and only the final accumulator is
/// branched on. Word count is treated as public.
#[must_use]
pub fn ct_eq_u64(a: &[u64], b: &[u64]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u64;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    std::hint::black_box(diff) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq_u64(&[], &[]));
        assert!(ct_eq_u64(&[1, u64::MAX], &[1, u64::MAX]));
    }

    #[test]
    fn unequal_content() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"xbc"));
        assert!(!ct_eq_u64(&[1, 2], &[1, 3]));
        assert!(!ct_eq_u64(&[0], &[1 << 63]));
    }

    #[test]
    fn unequal_length() {
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"a"));
        assert!(!ct_eq_u64(&[1], &[1, 0]));
    }

    #[test]
    fn single_bit_differences_detected() {
        // A difference in any one bit of any one byte must flip the result.
        let base = [0x5au8; 16];
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut other = base;
                other[byte] ^= 1 << bit;
                assert!(!ct_eq(&base, &other), "missed byte {byte} bit {bit}");
            }
        }
    }
}
