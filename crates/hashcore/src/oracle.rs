//! Random-oracle expansion: SHA-256 in counter mode, producing
//! arbitrary-length pseudorandom output bound to a domain-separation tag.
//!
//! The paper (§3.2.2) analyzes its protocols in the random oracle model,
//! assuming an ideal hash `h : V → DomF` whose outputs are independent and
//! uniform. [`RandomOracle`] is the standard concrete instantiation:
//! `H(sep ‖ len ‖ ctr ‖ input)` blocks concatenated and truncated. The
//! group-specific mapping *into* `DomF` (uniform below `p`, then squared
//! into the quadratic residues) lives in `minshare-crypto`, built on
//! [`RandomOracle::expand`].

use crate::sha256::{Sha256, DIGEST_LEN};

/// A domain-separated random oracle `{0,1}* → {0,1}^(8·len)`.
///
/// Two oracles with different tags are independent functions; this is how
/// the protocol layer keeps `h(v)`, payload-key derivation and transcript
/// hashing from interfering.
#[derive(Clone, Debug)]
pub struct RandomOracle {
    tag: Vec<u8>,
}

impl RandomOracle {
    /// Creates an oracle under the given domain-separation tag.
    pub fn new(tag: &[u8]) -> Self {
        RandomOracle { tag: tag.to_vec() }
    }

    /// Expands `input` to `len` pseudorandom bytes.
    pub fn expand(&self, input: &[u8], len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut counter: u64 = 0;
        while out.len() < len {
            let mut h = Sha256::new();
            // Unambiguous framing: tag length, tag, output length, counter,
            // then the input.
            h.update(&(self.tag.len() as u64).to_be_bytes());
            h.update(&self.tag);
            h.update(&(len as u64).to_be_bytes());
            h.update(&counter.to_be_bytes());
            h.update(input);
            let block = h.finalize();
            let take = (len - out.len()).min(DIGEST_LEN);
            out.extend_from_slice(&block[..take]);
            counter += 1;
        }
        out
    }

    /// Convenience: a single 32-byte digest of `input` under this tag.
    pub fn digest(&self, input: &[u8]) -> [u8; DIGEST_LEN] {
        let v = self.expand(input, DIGEST_LEN);
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(&v);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let o = RandomOracle::new(b"test");
        assert_eq!(o.expand(b"x", 100), o.expand(b"x", 100));
    }

    #[test]
    fn tags_separate_domains() {
        let a = RandomOracle::new(b"a");
        let b = RandomOracle::new(b"b");
        assert_ne!(a.expand(b"x", 32), b.expand(b"x", 32));
    }

    #[test]
    fn inputs_separate() {
        let o = RandomOracle::new(b"t");
        assert_ne!(o.expand(b"x", 32), o.expand(b"y", 32));
    }

    #[test]
    fn output_length_exact() {
        let o = RandomOracle::new(b"t");
        for len in [0usize, 1, 31, 32, 33, 64, 65, 1000] {
            assert_eq!(o.expand(b"x", len).len(), len, "len={len}");
        }
    }

    #[test]
    fn not_prefix_consistent_across_lengths() {
        // The requested length is part of the framing, so asking for
        // different lengths yields unrelated streams — this prevents
        // cross-protocol truncation games.
        let o = RandomOracle::new(b"t");
        let long = o.expand(b"x", 64);
        let short = o.expand(b"x", 32);
        assert_ne!(&long[..32], &short[..]);
    }

    #[test]
    fn tag_length_framing_unambiguous() {
        // ("ab", "c") and ("a", "bc") as (tag, input) must differ.
        let o1 = RandomOracle::new(b"ab");
        let o2 = RandomOracle::new(b"a");
        assert_ne!(o1.expand(b"c", 32), o2.expand(b"bc", 32));
    }

    #[test]
    fn digest_matches_expand() {
        let o = RandomOracle::new(b"t");
        assert_eq!(o.digest(b"x").to_vec(), o.expand(b"x", 32));
    }

    #[test]
    fn rough_uniformity() {
        // Bit-balance sanity check over 8 KiB of expansion.
        let o = RandomOracle::new(b"balance");
        let bytes = o.expand(b"seed", 8192);
        let ones: u64 = bytes.iter().map(|b| b.count_ones() as u64).sum();
        let total = 8192 * 8;
        // Expect ~50% ± 2%.
        assert!(
            (ones as f64 / total as f64 - 0.5).abs() < 0.02,
            "ones={ones}"
        );
    }
}
