//! HKDF — extract-and-expand key derivation (RFC 5869) over HMAC-SHA-256.
//!
//! The equijoin protocol's hybrid payload cipher derives its symmetric key
//! material from the group element `κ(v) = f_{e'S}(h(v))` via HKDF, and the
//! secure-channel substrate derives session keys from a Diffie–Hellman
//! shared secret the same way.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// `HKDF-Extract(salt, ikm)` → pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// `HKDF-Expand(prk, info, len)` → output keying material.
///
/// # Panics
/// Panics if `len > 255 * 32` (the RFC 5869 limit).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output length limit exceeded");
    let mut okm = Vec::with_capacity(len);
    let mut block: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&block);
        mac.update(info);
        mac.update(&[counter]);
        block = mac.finalize().to_vec();
        let take = (len - okm.len()).min(DIGEST_LEN);
        okm.extend_from_slice(&block[..take]);
        counter = counter
            .checked_add(1)
            .expect("counter bounded by len check");
    }
    okm
}

/// One-call extract-then-expand.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_3_no_salt_no_info() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        let okm = expand(&prk, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_composes() {
        assert_eq!(
            derive(b"salt", b"ikm", b"info", 64),
            expand(&extract(b"salt", b"ikm"), b"info", 64)
        );
    }

    #[test]
    fn lengths_and_prefix_property() {
        let prk = extract(b"s", b"k");
        let long = expand(&prk, b"i", 100);
        let short = expand(&prk, b"i", 33);
        assert_eq!(long.len(), 100);
        // HKDF outputs are prefix-consistent across lengths.
        assert_eq!(&long[..33], &short[..]);
        assert!(expand(&prk, b"i", 0).is_empty());
    }

    #[test]
    fn info_separates_domains() {
        let prk = extract(b"s", b"k");
        assert_ne!(expand(&prk, b"a", 32), expand(&prk, b"b", 32));
    }

    #[test]
    #[should_panic(expected = "length limit")]
    fn output_limit_enforced() {
        let prk = extract(b"s", b"k");
        let _ = expand(&prk, b"i", 255 * 32 + 1);
    }
}
