//! Two-process end-to-end tests: spawn the real `minshare` binary twice
//! and let the processes talk over localhost TCP.

use std::io::Write;
use std::process::{Child, Command, Stdio};

fn binary() -> &'static str {
    env!("CARGO_BIN_EXE_minshare")
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("minshare-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(content.as_bytes()).expect("write");
    path
}

/// Picks a free localhost port by binding port 0 and dropping the socket.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .expect("addr")
        .port()
}

fn spawn(args: &[&str]) -> Child {
    Command::new(binary())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn minshare")
}

fn finish(child: Child, who: &str) -> String {
    let out = child.wait_with_output().expect("wait");
    assert!(
        out.status.success(),
        "{who} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Runs sender+receiver as two processes and returns the receiver stdout.
fn run_pair(
    command: &str,
    sender_file: &str,
    receiver_file: &str,
    extra: &[&str],
) -> (String, String) {
    let port = free_port();
    let addr = format!("127.0.0.1:{port}");
    let s_path = write_temp(&format!("{command}-s.txt"), sender_file);
    let r_path = write_temp(&format!("{command}-r.txt"), receiver_file);

    let mut s_args = vec![
        command,
        "--listen",
        &addr,
        "--values",
        s_path.to_str().unwrap(),
        "--seed",
        "1",
    ];
    s_args.extend_from_slice(extra);
    let sender = spawn(&s_args);
    // Give the listener a moment to bind before connecting; retry loop on
    // the client side is handled by spawning after a short wait.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let mut r_args = vec![
        command,
        "--connect",
        &addr,
        "--values",
        r_path.to_str().unwrap(),
        "--seed",
        "2",
    ];
    r_args.extend_from_slice(extra);
    let receiver = spawn(&r_args);

    let r_out = finish(receiver, "receiver");
    let s_out = finish(sender, "sender");
    (s_out, r_out)
}

#[test]
fn intersect_between_processes() {
    let (_, r_out) = run_pair("intersect", "ana\nbob\ncarol\n", "bob\ncarol\ndave\n", &[]);
    let mut lines: Vec<&str> = r_out.lines().collect();
    lines.sort();
    assert_eq!(lines, vec!["bob", "carol"]);
}

#[test]
fn intersect_size_between_processes() {
    let (_, r_out) = run_pair("intersect-size", "a\nb\nc\nd\n", "c\nd\ne\n", &[]);
    assert_eq!(r_out.trim(), "2");
}

#[test]
fn join_between_processes() {
    let (_, r_out) = run_pair(
        "join",
        "sku1\tprice=10\nsku2\tprice=20\nsku3\tprice=30\n",
        "sku2\nsku3\nsku9\n",
        &[],
    );
    let mut lines: Vec<&str> = r_out.lines().collect();
    lines.sort();
    assert_eq!(lines, vec!["sku2\tprice=20", "sku3\tprice=30"]);
}

#[test]
fn join_size_between_processes() {
    let (_, r_out) = run_pair("join-size", "x\nx\ny\n", "x\ny\ny\n", &[]);
    // x: 2·1 + y: 1·2 = 4.
    assert_eq!(r_out.trim(), "4");
}

#[test]
fn sum_between_processes() {
    let (s_out, r_out) = run_pair(
        "sum",
        "a\t100\nb\t250\nc\t7\n",
        "b\nc\nz\n",
        &["--key-bits", "64"],
    );
    for out in [&s_out, &r_out] {
        assert!(out.contains("count\t2"), "{out}");
        assert!(out.contains("sum\t257"), "{out}");
    }
}

#[test]
fn intersect_over_secure_channel() {
    let (_, r_out) = run_pair("intersect", "k1\nk2\n", "k2\nk3\n", &["--secure"]);
    assert_eq!(r_out.trim(), "k2");
}

#[test]
fn help_prints_usage() {
    let out = Command::new(binary()).arg("--help").output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: minshare"));
}

#[test]
fn bad_args_exit_nonzero() {
    let out = Command::new(binary())
        .args(["frobnicate"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn local_query_mode_runs_the_papers_sql() {
    let tr = write_temp("q-tr.csv", "personid,pattern\n1,true\n2,false\n3,true\n");
    let ts = write_temp(
        "q-ts.csv",
        "personid,drug,reaction\n1,true,true\n2,true,false\n3,false,false\n",
    );
    let out = Command::new(binary())
        .args([
            "query",
            "--sql",
            "select pattern, reaction, count(*) \
             from TR join TS on TR.personid = TS.personid \
             where TS.drug = true group by pattern, reaction \
             order by pattern",
            "--table",
            &format!("TR={};personid:int,pattern:bool", tr.display()),
            "--table",
            &format!("TS={};personid:int,drug:bool,reaction:bool", ts.display()),
        ])
        .output()
        .expect("run query");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pattern,reaction,count"), "{stdout}");
    assert!(stdout.contains("false,false,1"), "{stdout}");
    assert!(stdout.contains("true,true,1"), "{stdout}");
}

#[test]
fn local_query_mode_rejects_bad_specs() {
    let out = Command::new(binary())
        .args(["query", "--sql", "select 1", "--table", "nonsense"])
        .output()
        .expect("run query");
    assert!(!out.status.success());
}
