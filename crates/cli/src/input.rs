//! Input-file parsing: one value per line, with optional tab-separated
//! payload (for `join` senders) or weight (for `sum` senders).

use std::fmt;
use std::io::BufRead;

/// An input-parsing failure.
#[derive(Debug)]
pub struct InputError(pub String);

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input error: {}", self.0)
    }
}

impl std::error::Error for InputError {}

/// Reads one value per line (trimmed; empty lines and `#` comments are
/// skipped).
pub fn read_values<R: BufRead>(reader: R) -> Result<Vec<Vec<u8>>, InputError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| InputError(format!("line {}: {e}", lineno + 1)))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(trimmed.as_bytes().to_vec());
    }
    Ok(out)
}

/// Parsed `(value, payload)` entries.
pub type ValuePayloads = Vec<(Vec<u8>, Vec<u8>)>;

/// Reads `value<TAB>payload` lines (payload may be empty).
pub fn read_value_payloads<R: BufRead>(reader: R) -> Result<ValuePayloads, InputError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| InputError(format!("line {}: {e}", lineno + 1)))?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.trim().is_empty() || trimmed.trim_start().starts_with('#') {
            continue;
        }
        let (value, payload) = match trimmed.split_once('\t') {
            Some((v, p)) => (v, p),
            None => (trimmed, ""),
        };
        out.push((value.as_bytes().to_vec(), payload.as_bytes().to_vec()));
    }
    Ok(out)
}

/// Reads `value<TAB>weight` lines (missing weight = 0).
pub fn read_value_weights<R: BufRead>(reader: R) -> Result<Vec<(Vec<u8>, u64)>, InputError> {
    read_value_payloads(reader)?
        .into_iter()
        .enumerate()
        .map(|(i, (v, w))| {
            let weight = if w.is_empty() {
                0
            } else {
                std::str::from_utf8(&w)
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
                    .ok_or_else(|| {
                        InputError(format!(
                            "entry {}: weight is not a non-negative integer",
                            i + 1
                        ))
                    })?
            };
            Ok((v, weight))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_skip_blanks_and_comments() {
        let text = "alice\n\n# comment\n  bob  \n";
        let v = read_values(text.as_bytes()).unwrap();
        assert_eq!(v, vec![b"alice".to_vec(), b"bob".to_vec()]);
    }

    #[test]
    fn payload_lines_split_on_first_tab() {
        let text = "k1\tsome payload\twith tab\nk2\nk3\t\n";
        let v = read_value_payloads(text.as_bytes()).unwrap();
        assert_eq!(v[0], (b"k1".to_vec(), b"some payload\twith tab".to_vec()));
        assert_eq!(v[1], (b"k2".to_vec(), b"".to_vec()));
        assert_eq!(v[2], (b"k3".to_vec(), b"".to_vec()));
    }

    #[test]
    fn weights_parse_and_validate() {
        let good = "a\t10\nb\t0\nc\n";
        let v = read_value_weights(good.as_bytes()).unwrap();
        assert_eq!(
            v,
            vec![(b"a".to_vec(), 10), (b"b".to_vec(), 0), (b"c".to_vec(), 0),]
        );
        assert!(read_value_weights("a\tnotanumber\n".as_bytes()).is_err());
        assert!(read_value_weights("a\t-3\n".as_bytes()).is_err());
    }
}
