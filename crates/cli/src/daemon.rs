//! `minshare serve` / `minshare client` — the long-running protocol
//! daemon and its session client.
//!
//! ```text
//! # terminal 1: the daemon (sender S), serving its private list
//! minshare serve --listen 127.0.0.1:7200 --values supplier.txt
//!
//! # terminal 2+: any number of concurrent receiver sessions
//! minshare client --connect 127.0.0.1:7200 --protocol intersection --values retailer.txt
//! ```
//!
//! One TCP connection carries one mux envelope; each `client` invocation
//! opens one session inside it. The daemon multiplexes sessions across
//! all connections against a shared [`SessionRegistry`] (admission cap)
//! and a shared [`EncryptPool`] (per-session fair scheduling), prints a
//! per-session reconciliation line for every session it runs, and on
//! graceful shutdown drains active sessions before exiting.
//!
//! Both sides must agree on `--group-bits` (a well-known group, so no
//! parameters travel out of band) and, for equijoins, `--record-len`.

use std::fs::File;
use std::io::{BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minshare::prelude::*;
use minshare_net::tcp::{TcpAcceptor, TcpTransport};
use minshare_net::{
    serve_mux_connection, MuxClient, MuxConfig, NetError, SessionRegistry, ShutdownHandle,
    StatsProvider,
};
use minshare_trace::metrics::{MetricsRegistry, RegistrySink};
use minshare_trace::Tracer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::input;

type AnyError = Box<dyn std::error::Error>;

/// Well-known group lookup shared by both subcommands: the daemon and
/// its clients must land on the *same* group without any out-of-band
/// parameter exchange, so only the baked-in moduli are allowed here.
fn well_known_group(bits: u64) -> Result<QrGroup, AnyError> {
    match bits {
        768 | 1024 | 1536 | 2048 => Ok(QrGroup::well_known(bits)?),
        other => Err(format!(
            "--group-bits {other} is not a well-known group; daemon mode requires 768, 1024, 1536 or 2048"
        )
        .into()),
    }
}

/// `minshare serve`: accept connections forever (or until
/// `--shutdown-after` admission outcomes), one mux connection loop per
/// TCP peer, all sharing one session registry and one encrypt pool.
pub fn run_serve(raw: &[String]) -> Result<(), AnyError> {
    let mut listen = None;
    let mut values_path = None;
    let mut max_sessions = 8usize;
    let mut group_bits = 768u64;
    let mut record_len = 64usize;
    let mut seed = 0x5e55_10b5u64;
    let mut shutdown_after: Option<u64> = None;
    let mut port_file: Option<String> = None;
    let mut mem_budget: Option<usize> = None;
    let mut spill_dir: Option<String> = None;
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, AnyError> {
            Ok(it.next().ok_or(format!("{name} requires a value"))?.clone())
        };
        match arg.as_str() {
            "--listen" => listen = Some(take("--listen")?),
            "--values" => values_path = Some(take("--values")?),
            "--max-sessions" => max_sessions = take("--max-sessions")?.parse()?,
            "--group-bits" => group_bits = take("--group-bits")?.parse()?,
            "--record-len" => record_len = take("--record-len")?.parse()?,
            "--seed" => seed = take("--seed")?.parse()?,
            "--shutdown-after" => shutdown_after = Some(take("--shutdown-after")?.parse()?),
            "--port-file" => port_file = Some(take("--port-file")?),
            "--mem-budget" => mem_budget = Some(take("--mem-budget")?.parse()?),
            "--spill-dir" => spill_dir = Some(take("--spill-dir")?),
            other => return Err(format!("unknown serve option {other:?}").into()),
        }
    }
    let listen = listen.ok_or("--listen is required")?;
    let values_path = values_path.ok_or("--values is required")?;

    let group = well_known_group(group_bits)?;
    let file = File::open(&values_path).map_err(|e| format!("cannot open {values_path}: {e}"))?;
    let entries = input::read_value_payloads(BufReader::new(file))?;
    eprintln!(
        "serving {} entries ({group_bits}-bit group, {max_sessions} session slots)",
        entries.len()
    );

    // Spill knobs used when a client elects sharding; the client's hello
    // chooses the bucket count.
    let shard_cfg = ShardConfig {
        mem_budget: mem_budget.unwrap_or_else(|| ShardConfig::default().mem_budget),
        spill_dir: spill_dir.map(std::path::PathBuf::from),
        ..ShardConfig::default()
    };
    let service = Arc::new(
        Service::new(
            group,
            entries,
            EncryptPool::new(2),
            PipelineConfig::default(),
            record_len,
            seed,
        )
        .with_shard_config(shard_cfg),
    );
    // Live-telemetry registry. Every connection thread installs a
    // RegistrySink tracer, so the lifecycle/protocol/pool/leakage events
    // emitted while it serves fold into one process-wide registry; the
    // STATS frame answers with its JSON snapshot. Gauge and throughput
    // classes are declared up front — everything else defaults to the
    // counter/histogram rules baked into the registry.
    let metrics = Arc::new(MetricsRegistry::new());
    metrics.register_gauge("pool", "queue", "depth");
    metrics.register_gauge("pool", "session_vtime", "vtime");
    for kind in [
        ProtocolKind::Intersection,
        ProtocolKind::Equijoin,
        ProtocolKind::IntersectionSize,
        ProtocolKind::EquijoinSize,
    ] {
        metrics.register_histogram("protocol", kind.name(), "ce_per_sec");
    }
    let stats_provider: StatsProvider = {
        let metrics = Arc::clone(&metrics);
        Arc::new(move || metrics.snapshot_json().into_bytes())
    };

    let registry = SessionRegistry::new(max_sessions);
    let shutdown = ShutdownHandle::new();
    let acceptor = TcpAcceptor::bind(listen.as_str())?;
    let local = acceptor.local_addr()?;
    eprintln!("listening on {local}");
    if let Some(path) = &port_file {
        // Written atomically-enough for scripts: port last, newline-terminated.
        let mut f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        writeln!(f, "{}", local.port())?;
    }

    // Admission outcomes across all connections: admitted sessions
    // (which by connection end have run to completion or been closed by
    // their peer) plus typed Busy rejections. `--shutdown-after N` turns
    // the daemon into a deterministic fixture: it serves exactly N
    // outcomes, drains, and exits.
    let outcomes = Arc::new(AtomicU64::new(0));
    // Peer ids for the per-peer disclosure counters: one id per accepted
    // connection, assigned in accept order.
    let peers = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| -> Result<(), AnyError> {
        loop {
            if shutdown.is_shutdown() {
                break;
            }
            let (transport, peer) = acceptor.accept()?;
            if shutdown.is_shutdown() {
                // Woken only to observe shutdown; the dial was a courtesy.
                break;
            }
            eprintln!("connection from {peer}");
            let service = Arc::clone(&service);
            let registry = Arc::clone(&registry);
            let conn_shutdown = shutdown.clone();
            let shutdown = shutdown.clone();
            let outcomes = Arc::clone(&outcomes);
            let metrics = Arc::clone(&metrics);
            let stats_provider = Arc::clone(&stats_provider);
            let peer_id = peers.fetch_add(1, Ordering::AcqRel) + 1;
            scope.spawn(move || {
                // Tracers are thread-local, and the mux loop spawns one
                // handler thread per session: the connection thread and
                // every handler each wire their own sink into the one
                // shared registry.
                let handler_metrics = Arc::clone(&metrics);
                let _trace = minshare_trace::install(Tracer::to_sink(Arc::new(
                    RegistrySink::new(metrics),
                )));
                let config = MuxConfig::default();
                let result = serve_mux_connection(
                    transport,
                    &config,
                    &registry,
                    &conn_shutdown,
                    Some(stats_provider),
                    |sid, request, session_t| {
                        let _trace = minshare_trace::install(Tracer::to_sink(Arc::new(
                            RegistrySink::new(Arc::clone(&handler_metrics)),
                        )));
                        match service.handle_for_peer(peer_id, sid, &request, session_t) {
                        Ok(report) => println!(
                            "session={} protocol={} peer_set_size={} bytes_sent={} bytes_received={} encryptions={} status=ok",
                            report.session,
                            report.protocol.name(),
                            report.peer_set_size,
                            report.bytes_sent,
                            report.bytes_received,
                            report.ops.total_ce(),
                        ),
                            Err(e) => println!("session={sid} status=error detail=\"{e}\""),
                        }
                    },
                );
                match result {
                    Ok(stats) => {
                        eprintln!(
                            "connection {peer} done: opened={} completed={} closed_by_peer={} busy={} shed={} malformed={}",
                            stats.opened,
                            stats.completed,
                            stats.closed_by_peer,
                            stats.rejected_busy,
                            stats.shed_overflow,
                            stats.malformed,
                        );
                        let served = stats.opened + stats.rejected_busy;
                        let total = outcomes.fetch_add(served, Ordering::AcqRel) + served;
                        if shutdown_after.is_some_and(|n| total >= n) && !shutdown.is_shutdown() {
                            eprintln!("served {total} session outcomes; shutting down");
                            shutdown.shutdown();
                            // The accept loop is blocked; dial it once so
                            // it wakes and observes the flag.
                            let _ = std::net::TcpStream::connect(local);
                        }
                    }
                    Err(e) => eprintln!("connection {peer} failed: {e}"),
                }
            });
        }
        Ok(())
    })?;
    eprintln!("daemon drained; exiting");
    Ok(())
}

/// `minshare client`: open one session against a running daemon, run
/// the client (receiver) side of the requested protocol, print the
/// answer to stdout and a reconciliation line mirroring the daemon's.
pub fn run_client(raw: &[String]) -> Result<(), AnyError> {
    let mut connect = None;
    let mut values_path = None;
    let mut protocol = None;
    let mut group_bits = 768u64;
    let mut record_len = 64usize;
    let mut seed: Option<u64> = None;
    let mut shards = 1u32;
    let mut mem_budget: Option<usize> = None;
    let mut spill_dir: Option<String> = None;
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, AnyError> {
            Ok(it.next().ok_or(format!("{name} requires a value"))?.clone())
        };
        match arg.as_str() {
            "--connect" => connect = Some(take("--connect")?),
            "--values" => values_path = Some(take("--values")?),
            "--protocol" => protocol = Some(take("--protocol")?),
            "--group-bits" => group_bits = take("--group-bits")?.parse()?,
            "--record-len" => record_len = take("--record-len")?.parse()?,
            "--seed" => seed = Some(take("--seed")?.parse()?),
            "--shards" => shards = take("--shards")?.parse()?,
            "--mem-budget" => mem_budget = Some(take("--mem-budget")?.parse()?),
            "--spill-dir" => spill_dir = Some(take("--spill-dir")?),
            other => return Err(format!("unknown client option {other:?}").into()),
        }
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let connect = connect.ok_or("--connect is required")?;
    let values_path = values_path.ok_or("--values is required")?;
    let protocol = protocol.ok_or(
        "--protocol is required (intersection | equijoin | intersection-size | equijoin-size)",
    )?;
    let protocol = ProtocolKind::parse(&protocol).ok_or_else(|| {
        format!(
            "unknown protocol {protocol:?} (intersection | equijoin | intersection-size | equijoin-size)"
        )
    })?;

    let group = well_known_group(group_bits)?;
    let file = File::open(&values_path).map_err(|e| format!("cannot open {values_path}: {e}"))?;
    let values = input::read_values(BufReader::new(file))?;
    let mut rng = match seed {
        Some(s) => StdRng::seed_from_u64(s),
        None => StdRng::seed_from_u64(rand::rng().next_u64()),
    };

    let tcp = TcpTransport::connect(connect.as_str())?;
    let mut client = MuxClient::new(tcp, MuxConfig::default());
    let session = match client.open_session(&SessionRequest::new(protocol).encode()) {
        Ok(session) => session,
        Err(e @ NetError::Busy { .. }) => {
            // Typed load-shedding is an expected answer, not a crash;
            // scripts match on "busy".
            return Err(format!("busy: {e}").into());
        }
        Err(e) => return Err(e.into()),
    };
    let sid = session.session_id();
    eprintln!(
        "session {sid} open: {} with {} values",
        protocol.name(),
        values.len()
    );

    let pool = EncryptPool::new(0);
    let config = PipelineConfig::default();
    let shard_cfg = ShardConfig {
        shards,
        mem_budget: mem_budget.unwrap_or_else(|| ShardConfig::default().mem_budget),
        spill_dir: spill_dir.map(std::path::PathBuf::from),
        ..ShardConfig::default()
    };
    let traffic = match protocol {
        ProtocolKind::Intersection => {
            let (out, traffic) = run_client_intersection_sharded(
                session, &group, &values, &mut rng, &pool, config, &shard_cfg,
            )?;
            for v in &out.intersection {
                println!("{}", String::from_utf8_lossy(v));
            }
            eprintln!(
                "done: |V_S| = {}, intersection = {} values",
                out.peer_set_size,
                out.intersection.len()
            );
            traffic
        }
        ProtocolKind::Equijoin => {
            let (out, traffic) = run_client_equijoin_sharded(
                session, &group, &values, &mut rng, &pool, config, record_len, &shard_cfg,
            )?;
            for (v, payload) in &out.matches {
                println!(
                    "{}\t{}",
                    String::from_utf8_lossy(v),
                    String::from_utf8_lossy(payload)
                );
            }
            eprintln!(
                "done: |V_S| = {}, matches = {}",
                out.peer_set_size,
                out.matches.len()
            );
            traffic
        }
        ProtocolKind::IntersectionSize => {
            let (out, traffic) = run_client_intersection_size_sharded(
                session, &group, &values, &mut rng, &pool, config, &shard_cfg,
            )?;
            println!("{}", out.intersection_size);
            eprintln!("done: |V_S| = {}", out.peer_set_size);
            traffic
        }
        ProtocolKind::EquijoinSize => {
            let (out, traffic) = run_client_equijoin_size_sharded(
                session, &group, &values, &mut rng, &pool, config, &shard_cfg,
            )?;
            println!("{}", out.join_size);
            eprintln!(
                "done: |V_S| = {}, S's duplicate distribution: {:?}",
                out.peer_multiset_size, out.peer_duplicate_distribution
            );
            traffic
        }
    };
    // The mirror image of the daemon's line: this side's sent must be
    // the daemon's received and vice versa.
    println!(
        "session={sid} bytes_sent={} bytes_received={} status=ok",
        traffic.bytes_sent, traffic.bytes_received
    );
    client.close()?;
    Ok(())
}

/// `minshare stats`: scrape a running daemon's telemetry snapshot over
/// the mux STATS frame and print the JSON to stdout. Read-only and
/// secret-safe by construction: the snapshot is built purely from the
/// typed trace event stream (counts, sizes, durations — never values,
/// hashes or key material).
pub fn run_stats(raw: &[String]) -> Result<(), AnyError> {
    let mut connect = None;
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(it.next().ok_or("--connect requires a value")?.clone()),
            other if !other.starts_with("--") && connect.is_none() => {
                // `minshare stats ADDR` positional form.
                connect = Some(other.to_string());
            }
            other => return Err(format!("unknown stats option {other:?}").into()),
        }
    }
    let connect = connect.ok_or("an address is required: minshare stats ADDR")?;
    let tcp = TcpTransport::connect(connect.as_str())?;
    let mut client = MuxClient::new(tcp, MuxConfig::default());
    let snapshot = client.fetch_stats()?;
    println!("{}", String::from_utf8_lossy(&snapshot));
    client.close()?;
    Ok(())
}
