//! `minshare` — run the private-database protocols between two real
//! processes over TCP.
//!
//! ```text
//! # terminal 1 (the sender S, holding its private list)
//! minshare intersect --listen 127.0.0.1:7100 --values supplier.txt
//!
//! # terminal 2 (the receiver R)
//! minshare intersect --connect 127.0.0.1:7100 --values retailer.txt
//! ```
//!
//! The receiver prints the intersection; each side prints what it learned
//! and the exact cost accounting to stderr. See `--help` / [`args::USAGE`]
//! for the other protocols.

mod args;
mod input;

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use args::{Args, Command, Endpoint, Side, USAGE};
use minshare::prelude::*;
use minshare_aggregate::intersection_sum;
use minshare_aggregate::paillier::PrivateKey;
use minshare_net::secure::{Role, SecureChannel};
use minshare_net::tcp::{TcpAcceptor, TcpTransport};
use minshare_net::Transport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        println!(
            "\nlocal query mode:\n  \
             minshare query --sql 'SELECT …' --table 'NAME=file.csv;col:type,col:type' …\n  \
             types: int, text, bool, bytes — runs the SQL locally and prints CSV"
        );
        return ExitCode::SUCCESS;
    }
    if raw.first().map(|s| s.as_str()) == Some("query") {
        return match run_query(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Local (non-protocol) mode: load CSV tables into the relational
/// substrate and run one SQL statement against them.
fn run_query(raw: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use minshare_privdb::{csvio, sql, ColumnType, Schema};

    let mut sql_text = None;
    let mut specs: Vec<String> = Vec::new();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sql" => sql_text = Some(it.next().ok_or("--sql requires a value")?.clone()),
            "--table" => specs.push(it.next().ok_or("--table requires a value")?.clone()),
            other => return Err(format!("unknown query option {other:?}").into()),
        }
    }
    let sql_text = sql_text.ok_or("--sql is required")?;
    if specs.is_empty() {
        return Err("at least one --table NAME=FILE;col:type,… is required".into());
    }

    let mut catalog = sql::Catalog::new();
    for spec in &specs {
        // NAME=PATH;col:type,col:type
        let (name, rest) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --table spec {spec:?}: missing '='"))?;
        let (path, schema_text) = rest
            .split_once(';')
            .ok_or_else(|| format!("bad --table spec {spec:?}: missing ';schema'"))?;
        let mut cols = Vec::new();
        for col in schema_text.split(',') {
            let (cname, ty) = col
                .split_once(':')
                .ok_or_else(|| format!("bad column spec {col:?}"))?;
            let ty = match ty.trim() {
                "int" => ColumnType::Int,
                "text" => ColumnType::Text,
                "bool" => ColumnType::Bool,
                "bytes" => ColumnType::Bytes,
                other => return Err(format!("unknown type {other:?}").into()),
            };
            cols.push((cname.trim(), ty));
        }
        let schema = Schema::new(cols)?;
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let table = csvio::read_csv(name, schema, BufReader::new(file))?;
        eprintln!("loaded {name}: {} rows", table.len());
        catalog.register(table);
    }

    let result = sql::execute(&catalog, &sql_text)?;
    let mut out = Vec::new();
    csvio::write_csv(&result, &mut out)?;
    print!("{}", String::from_utf8_lossy(&out));
    eprintln!("{} rows", result.len());
    Ok(())
}

fn run(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = match args.seed {
        Some(s) => StdRng::seed_from_u64(s),
        None => StdRng::seed_from_u64(rand::rng().next_u64()),
    };

    eprintln!("loading group ({} bits)…", args.group_bits);
    let group = match args.group_bits {
        768 | 1024 | 1536 | 2048 => QrGroup::well_known(args.group_bits)?,
        other => {
            eprintln!("generating a fresh {other}-bit safe prime (may take a while)…");
            QrGroup::generate(&mut rng, other)?
        }
    };

    // Establish the TCP link.
    let tcp = match &args.endpoint {
        Endpoint::Listen(addr) => {
            let acceptor = TcpAcceptor::bind(addr.as_str())?;
            eprintln!("listening on {}…", acceptor.local_addr()?);
            let (t, peer) = acceptor.accept()?;
            eprintln!("peer connected from {peer}");
            t
        }
        Endpoint::Connect(addr) => {
            eprintln!("connecting to {addr}…");
            TcpTransport::connect(addr.as_str())?
        }
    };

    // Optionally wrap in the encrypted session (connector initiates).
    let mut transport: Box<dyn Transport> = if args.secure {
        let role = match args.endpoint {
            Endpoint::Listen(_) => Role::Responder,
            Endpoint::Connect(_) => Role::Initiator,
        };
        eprintln!("establishing encrypted channel…");
        Box::new(SecureChannel::establish(tcp, &group, role, &mut rng)?)
    } else {
        Box::new(tcp)
    };

    let file = File::open(&args.values_path)
        .map_err(|e| format!("cannot open {}: {e}", args.values_path))?;
    let reader = BufReader::new(file);

    match (args.command, args.side) {
        (Command::Intersect, Side::Sender) => {
            let values = input::read_values(reader)?;
            eprintln!("running intersection as S with {} values…", values.len());
            let out = intersection::run_sender(&mut *transport, &group, &values, &mut rng)?;
            eprintln!("done: peer set size |V_R| = {}", out.peer_set_size);
            eprintln!("cost: {} Ce, {} Ch", out.ops.total_ce(), out.ops.hashes);
        }
        (Command::Intersect, Side::Receiver) => {
            let values = input::read_values(reader)?;
            eprintln!("running intersection as R with {} values…", values.len());
            let out = intersection::run_receiver(&mut *transport, &group, &values, &mut rng)?;
            for v in &out.intersection {
                println!("{}", String::from_utf8_lossy(v));
            }
            eprintln!(
                "done: |V_S| = {}, intersection = {} values",
                out.peer_set_size,
                out.intersection.len()
            );
        }
        (Command::IntersectSize, Side::Sender) => {
            let values = input::read_values(reader)?;
            let out = intersection_size::run_sender(&mut *transport, &group, &values, &mut rng)?;
            eprintln!("done: |V_R| = {}", out.peer_set_size);
        }
        (Command::IntersectSize, Side::Receiver) => {
            let values = input::read_values(reader)?;
            let out = intersection_size::run_receiver(&mut *transport, &group, &values, &mut rng)?;
            println!("{}", out.intersection_size);
            eprintln!("done: |V_S| = {}", out.peer_set_size);
        }
        (Command::Join, Side::Sender) => {
            let entries = input::read_value_payloads(reader)?;
            let max_payload = entries.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
            let cipher = HybridCipher::new(group.clone(), max_payload.max(1));
            // The receiver must size its cipher identically; ship the
            // record length first as a tiny header frame.
            transport.send(&(cipher.max_plaintext_len() as u32).to_be_bytes())?;
            eprintln!("running equijoin as S with {} entries…", entries.len());
            let out = equijoin::run_sender(&mut *transport, &group, &cipher, &entries, &mut rng)?;
            eprintln!("done: |V_R| = {}", out.peer_set_size);
        }
        (Command::Join, Side::Receiver) => {
            let values = input::read_values(reader)?;
            let header = transport.recv()?;
            if header.len() != 4 {
                return Err("bad record-length header".into());
            }
            let record_len =
                u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
            let cipher = HybridCipher::new(group.clone(), record_len);
            eprintln!("running equijoin as R with {} values…", values.len());
            let out = equijoin::run_receiver(&mut *transport, &group, &cipher, &values, &mut rng)?;
            for (v, payload) in &out.matches {
                println!(
                    "{}\t{}",
                    String::from_utf8_lossy(v),
                    String::from_utf8_lossy(payload)
                );
            }
            eprintln!(
                "done: |V_S| = {}, matches = {}",
                out.peer_set_size,
                out.matches.len()
            );
        }
        (Command::JoinSize, Side::Sender) => {
            let values = input::read_values(reader)?;
            let out = equijoin_size::run_sender(&mut *transport, &group, &values, &mut rng)?;
            eprintln!(
                "done: |V_R| = {} (duplicate distribution learned: {:?})",
                out.peer_multiset_size, out.peer_duplicate_distribution
            );
        }
        (Command::JoinSize, Side::Receiver) => {
            let values = input::read_values(reader)?;
            let out = equijoin_size::run_receiver(&mut *transport, &group, &values, &mut rng)?;
            println!("{}", out.join_size);
            eprintln!(
                "done: |V_S| = {}, S's duplicate distribution: {:?}",
                out.peer_multiset_size, out.peer_duplicate_distribution
            );
        }
        (Command::Sum, Side::Sender) => {
            let entries = input::read_value_weights(reader)?;
            eprintln!("generating {}-bit Paillier key…", args.key_bits);
            let key = PrivateKey::generate(&mut rng, args.key_bits)?;
            eprintln!(
                "running intersection-sum as S with {} entries…",
                entries.len()
            );
            let out =
                intersection_sum::run_sender(&mut *transport, &group, &key, &entries, &mut rng)?;
            println!("count\t{}", out.intersection_count);
            println!("sum\t{}", out.sum);
            eprintln!("done: |V_R| = {}", out.peer_set_size);
        }
        (Command::Sum, Side::Receiver) => {
            let values = input::read_values(reader)?;
            eprintln!(
                "running intersection-sum as R with {} values…",
                values.len()
            );
            let out = intersection_sum::run_receiver(&mut *transport, &group, &values, &mut rng)?;
            println!("count\t{}", out.intersection_count);
            println!("sum\t{}", out.sum);
            eprintln!("done: |V_S| = {}", out.peer_set_size);
        }
    }
    Ok(())
}
