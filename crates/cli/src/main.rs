//! `minshare` — run the private-database protocols between two real
//! processes over TCP.
//!
//! ```text
//! # terminal 1 (the sender S, holding its private list)
//! minshare intersect --listen 127.0.0.1:7100 --values supplier.txt
//!
//! # terminal 2 (the receiver R)
//! minshare intersect --connect 127.0.0.1:7100 --values retailer.txt
//! ```
//!
//! The receiver prints the intersection; each side prints what it learned
//! and the exact cost accounting to stderr. See `--help` / [`args::USAGE`]
//! for the other protocols.

mod args;
mod daemon;
mod input;

use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;

use args::{Args, Command, Endpoint, Side, USAGE};
use minshare::prelude::*;
use minshare_aggregate::intersection_sum;
use minshare_aggregate::paillier::PrivateKey;
use minshare_costmodel::reconcile::{self, Party};
use minshare_costmodel::section6::Protocol;
use minshare_costmodel::CostConstants;
use minshare_net::secure::{Role, SecureChannel};
use minshare_net::tcp::{TcpAcceptor, TcpTransport};
use minshare_net::{CountingTransport, TrafficStats, Transport};
use minshare_trace::sink::JsonLinesSink;
use minshare_trace::Tracer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        println!(
            "\nlocal query mode:\n  \
             minshare query --sql 'SELECT …' --table 'NAME=file.csv;col:type,col:type' …\n  \
             types: int, text, bool, bytes — runs the SQL locally and prints CSV"
        );
        println!(
            "\ndaemon mode (many concurrent sessions over one port):\n  \
             minshare serve  --listen ADDR --values FILE [--max-sessions N] [--group-bits B]\n                  \
             [--record-len N] [--seed S] [--shutdown-after N] [--port-file PATH]\n                  \
             [--mem-budget BYTES] [--spill-dir DIR]\n  \
             minshare client --connect ADDR --values FILE\n                  \
             --protocol intersection|equijoin|intersection-size|equijoin-size\n                  \
             [--group-bits B] [--record-len N] [--seed S] [--shards B]\n                  \
             [--mem-budget BYTES] [--spill-dir DIR]\n  \
             minshare stats ADDR   — print a daemon's live telemetry snapshot (JSON)"
        );
        return ExitCode::SUCCESS;
    }
    if raw.first().map(|s| s.as_str()) == Some("serve") {
        return match daemon::run_serve(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(|s| s.as_str()) == Some("client") {
        return match daemon::run_client(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(|s| s.as_str()) == Some("stats") {
        return match daemon::run_stats(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(|s| s.as_str()) == Some("query") {
        return match run_query(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Local (non-protocol) mode: load CSV tables into the relational
/// substrate and run one SQL statement against them.
fn run_query(raw: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use minshare_privdb::{csvio, sql, ColumnType, Schema};

    let mut sql_text = None;
    let mut specs: Vec<String> = Vec::new();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sql" => sql_text = Some(it.next().ok_or("--sql requires a value")?.clone()),
            "--table" => specs.push(it.next().ok_or("--table requires a value")?.clone()),
            other => return Err(format!("unknown query option {other:?}").into()),
        }
    }
    let sql_text = sql_text.ok_or("--sql is required")?;
    if specs.is_empty() {
        return Err("at least one --table NAME=FILE;col:type,… is required".into());
    }

    let mut catalog = sql::Catalog::new();
    for spec in &specs {
        // NAME=PATH;col:type,col:type
        let (name, rest) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --table spec {spec:?}: missing '='"))?;
        let (path, schema_text) = rest
            .split_once(';')
            .ok_or_else(|| format!("bad --table spec {spec:?}: missing ';schema'"))?;
        let mut cols = Vec::new();
        for col in schema_text.split(',') {
            let (cname, ty) = col
                .split_once(':')
                .ok_or_else(|| format!("bad column spec {col:?}"))?;
            let ty = match ty.trim() {
                "int" => ColumnType::Int,
                "text" => ColumnType::Text,
                "bool" => ColumnType::Bool,
                "bytes" => ColumnType::Bytes,
                other => return Err(format!("unknown type {other:?}").into()),
            };
            cols.push((cname.trim(), ty));
        }
        let schema = Schema::new(cols)?;
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let table = csvio::read_csv(name, schema, BufReader::new(file))?;
        eprintln!("loaded {name}: {} rows", table.len());
        catalog.register(table);
    }

    let result = sql::execute(&catalog, &sql_text)?;
    let mut out = Vec::new();
    csvio::write_csv(&result, &mut out)?;
    print!("{}", String::from_utf8_lossy(&out));
    eprintln!("{} rows", result.len());
    Ok(())
}

fn run(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = match args.seed {
        Some(s) => StdRng::seed_from_u64(s),
        None => StdRng::seed_from_u64(rand::rng().next_u64()),
    };

    eprintln!("loading group ({} bits)…", args.group_bits);
    let group = match args.group_bits {
        768 | 1024 | 1536 | 2048 => QrGroup::well_known(args.group_bits)?,
        other => {
            eprintln!("generating a fresh {other}-bit safe prime (may take a while)…");
            QrGroup::generate(&mut rng, other)?
        }
    };

    // Establish the TCP link.
    let tcp = match &args.endpoint {
        Endpoint::Listen(addr) => {
            let acceptor = TcpAcceptor::bind(addr.as_str())?;
            eprintln!("listening on {}…", acceptor.local_addr()?);
            let (t, peer) = acceptor.accept()?;
            eprintln!("peer connected from {peer}");
            t
        }
        Endpoint::Connect(addr) => {
            eprintln!("connecting to {addr}…");
            TcpTransport::connect(addr.as_str())?
        }
    };

    // Optionally wrap in the encrypted session (connector initiates).
    let mut transport: Box<dyn Transport> = if args.secure {
        let role = match args.endpoint {
            Endpoint::Listen(_) => Role::Responder,
            Endpoint::Connect(_) => Role::Initiator,
        };
        eprintln!("establishing encrypted channel…");
        Box::new(SecureChannel::establish(tcp, &group, role, &mut rng)?)
    } else {
        Box::new(tcp)
    };

    // Count protocol-layer frames and bytes (outermost wrap, so with
    // --secure this still measures plaintext protocol traffic — the
    // quantity the §6.1 formulas predict).
    let (mut transport, traffic) = CountingTransport::new(&mut *transport);

    // With --trace, install a JSON-lines tracer for this thread. The
    // trace carries counts, sizes and durations only — never values,
    // hashes or key material (enforced by the field types and the
    // analyzer's OBS01 rule).
    let trace_sink = match &args.trace_path {
        Some(path) => {
            let file =
                File::create(path).map_err(|e| format!("cannot create trace file {path}: {e}"))?;
            Some(Arc::new(JsonLinesSink::new(std::io::BufWriter::new(file))))
        }
        None => None,
    };
    let trace_guard = trace_sink.as_ref().map(|sink| {
        minshare_trace::install(Tracer::to_sink(
            Arc::clone(sink) as Arc<dyn minshare_trace::TraceSink>
        ))
    });

    let file = File::open(&args.values_path)
        .map_err(|e| format!("cannot open {}: {e}", args.values_path))?;
    let reader = BufReader::new(file);

    // Sharded-engine knobs. The receiver elects sharding with
    // `--shards B > 1`; the sender always peeks the first frame and
    // adopts the peer's choice, falling back byte-identically to the
    // classic engines when no hello arrives.
    let shard_cfg = ShardConfig {
        shards: args.shards,
        mem_budget: args.mem_budget,
        spill_dir: args.spill_dir.as_ref().map(std::path::PathBuf::from),
        ..ShardConfig::default()
    };
    let pool = EncryptPool::new(pool_workers());
    let pipe = PipelineConfig::default();

    // What the reconciliation needs from the run; `None` for `sum`
    // (the §7 extension has no §6.1 formula to check against).
    let mut summary: Option<RunSummary> = None;

    match (args.command, args.side) {
        (Command::Intersect, Side::Sender) => {
            let values = input::read_values(reader)?;
            eprintln!("running intersection as S with {} values…", values.len());
            let out = match shard::recv_hello_or_pushback(&mut transport)? {
                Ok(shards) => {
                    eprintln!("peer elected {shards} shards");
                    shard::run_intersection_sender_sharded(
                        &mut transport,
                        &group,
                        &values,
                        &mut rng,
                        &pool,
                        pipe,
                        &shard_cfg,
                        shards,
                    )?
                }
                Err(frame) => {
                    let mut t = shard::PushbackTransport::new(frame, &mut transport);
                    intersection::run_sender(&mut t, &group, &values, &mut rng)?
                }
            };
            eprintln!("done: peer set size |V_R| = {}", out.peer_set_size);
            eprintln!("cost: {} Ce, {} Ch", out.ops.total_ce(), out.ops.hashes);
            summary = Some(RunSummary {
                protocol: Protocol::Intersection,
                party: Party::Sender,
                own_values: unique_count(&values),
                peer_values: out.peer_set_size as u64,
                measured_ce: out.ops.total_ce(),
                k_prime_bits: 0,
            });
        }
        (Command::Intersect, Side::Receiver) => {
            let values = input::read_values(reader)?;
            eprintln!("running intersection as R with {} values…", values.len());
            let out = if args.shards > 1 {
                shard::run_intersection_receiver(
                    &mut transport,
                    &group,
                    &values,
                    &mut rng,
                    &pool,
                    pipe,
                    &shard_cfg,
                )?
            } else {
                intersection::run_receiver(&mut transport, &group, &values, &mut rng)?
            };
            for v in &out.intersection {
                println!("{}", String::from_utf8_lossy(v));
            }
            eprintln!(
                "done: |V_S| = {}, intersection = {} values",
                out.peer_set_size,
                out.intersection.len()
            );
            summary = Some(RunSummary {
                protocol: Protocol::Intersection,
                party: Party::Receiver,
                own_values: unique_count(&values),
                peer_values: out.peer_set_size as u64,
                measured_ce: out.ops.total_ce(),
                k_prime_bits: 0,
            });
        }
        (Command::IntersectSize, Side::Sender) => {
            let values = input::read_values(reader)?;
            let out = shard::run_intersection_size_sender(
                &mut transport,
                &group,
                &values,
                &mut rng,
                &pool,
                pipe,
                &shard_cfg,
            )?;
            eprintln!("done: |V_R| = {}", out.peer_set_size);
            summary = Some(RunSummary {
                protocol: Protocol::IntersectionSize,
                party: Party::Sender,
                own_values: unique_count(&values),
                peer_values: out.peer_set_size as u64,
                measured_ce: out.ops.total_ce(),
                k_prime_bits: 0,
            });
        }
        (Command::IntersectSize, Side::Receiver) => {
            let values = input::read_values(reader)?;
            let out = shard::run_intersection_size_receiver(
                &mut transport,
                &group,
                &values,
                &mut rng,
                &pool,
                pipe,
                &shard_cfg,
            )?;
            println!("{}", out.intersection_size);
            eprintln!("done: |V_S| = {}", out.peer_set_size);
            summary = Some(RunSummary {
                protocol: Protocol::IntersectionSize,
                party: Party::Receiver,
                own_values: unique_count(&values),
                peer_values: out.peer_set_size as u64,
                measured_ce: out.ops.total_ce(),
                k_prime_bits: 0,
            });
        }
        (Command::Join, Side::Sender) => {
            let entries = input::read_value_payloads(reader)?;
            let max_payload = entries.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
            let cipher = HybridCipher::new(group.clone(), max_payload.max(1));
            // The receiver must size its cipher identically; ship the
            // record length first as a tiny header frame.
            transport.send(&(cipher.max_plaintext_len() as u32).to_be_bytes())?;
            eprintln!("running equijoin as S with {} entries…", entries.len());
            let out = match shard::recv_hello_or_pushback(&mut transport)? {
                Ok(shards) => {
                    eprintln!("peer elected {shards} shards");
                    shard::run_equijoin_sender_sharded(
                        &mut transport,
                        &group,
                        &cipher,
                        &entries,
                        &mut rng,
                        &pool,
                        pipe,
                        &shard_cfg,
                        shards,
                    )?
                }
                Err(frame) => {
                    let mut t = shard::PushbackTransport::new(frame, &mut transport);
                    equijoin::run_sender(&mut t, &group, &cipher, &entries, &mut rng)?
                }
            };
            eprintln!("done: |V_R| = {}", out.peer_set_size);
            let keys: Vec<Vec<u8>> = entries.iter().map(|(v, _)| v.clone()).collect();
            summary = Some(RunSummary {
                protocol: Protocol::Equijoin,
                party: Party::Sender,
                own_values: unique_count(&keys),
                peer_values: out.peer_set_size as u64,
                measured_ce: out.ops.total_ce(),
                k_prime_bits: 8 * (4 + cipher.ciphertext_len()) as u64,
            });
        }
        (Command::Join, Side::Receiver) => {
            let values = input::read_values(reader)?;
            let header = transport.recv()?;
            if header.len() != 4 {
                return Err("bad record-length header".into());
            }
            let record_len =
                u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
            let cipher = HybridCipher::new(group.clone(), record_len);
            eprintln!("running equijoin as R with {} values…", values.len());
            let out = if args.shards > 1 {
                shard::run_equijoin_receiver(
                    &mut transport,
                    &group,
                    &cipher,
                    &values,
                    &mut rng,
                    &pool,
                    pipe,
                    &shard_cfg,
                )?
            } else {
                equijoin::run_receiver(&mut transport, &group, &cipher, &values, &mut rng)?
            };
            for (v, payload) in &out.matches {
                println!(
                    "{}\t{}",
                    String::from_utf8_lossy(v),
                    String::from_utf8_lossy(payload)
                );
            }
            eprintln!(
                "done: |V_S| = {}, matches = {}",
                out.peer_set_size,
                out.matches.len()
            );
            summary = Some(RunSummary {
                protocol: Protocol::Equijoin,
                party: Party::Receiver,
                own_values: unique_count(&values),
                peer_values: out.peer_set_size as u64,
                measured_ce: out.ops.total_ce(),
                k_prime_bits: 8 * (4 + cipher.ciphertext_len()) as u64,
            });
        }
        (Command::JoinSize, Side::Sender) => {
            let values = input::read_values(reader)?;
            let out = shard::run_equijoin_size_sender(
                &mut transport,
                &group,
                &values,
                &mut rng,
                &pool,
                pipe,
                &shard_cfg,
            )?;
            eprintln!(
                "done: |V_R| = {} (duplicate distribution learned: {:?})",
                out.peer_multiset_size, out.peer_duplicate_distribution
            );
            summary = Some(RunSummary {
                protocol: Protocol::EquijoinSize,
                party: Party::Sender,
                // Multiset protocol: duplicates are kept and priced.
                own_values: values.len() as u64,
                peer_values: out.peer_multiset_size as u64,
                measured_ce: out.ops.total_ce(),
                k_prime_bits: 0,
            });
        }
        (Command::JoinSize, Side::Receiver) => {
            let values = input::read_values(reader)?;
            let out = shard::run_equijoin_size_receiver(
                &mut transport,
                &group,
                &values,
                &mut rng,
                &pool,
                pipe,
                &shard_cfg,
            )?;
            println!("{}", out.join_size);
            eprintln!(
                "done: |V_S| = {}, S's duplicate distribution: {:?}",
                out.peer_multiset_size, out.peer_duplicate_distribution
            );
            summary = Some(RunSummary {
                protocol: Protocol::EquijoinSize,
                party: Party::Receiver,
                own_values: values.len() as u64,
                peer_values: out.peer_multiset_size as u64,
                measured_ce: out.ops.total_ce(),
                k_prime_bits: 0,
            });
        }
        (Command::Sum, Side::Sender) => {
            let entries = input::read_value_weights(reader)?;
            eprintln!("generating {}-bit Paillier key…", args.key_bits);
            let key = PrivateKey::generate(&mut rng, args.key_bits)?;
            eprintln!(
                "running intersection-sum as S with {} entries…",
                entries.len()
            );
            let out =
                intersection_sum::run_sender(&mut transport, &group, &key, &entries, &mut rng)?;
            println!("count\t{}", out.intersection_count);
            println!("sum\t{}", out.sum);
            eprintln!("done: |V_R| = {}", out.peer_set_size);
        }
        (Command::Sum, Side::Receiver) => {
            let values = input::read_values(reader)?;
            eprintln!(
                "running intersection-sum as R with {} values…",
                values.len()
            );
            let out = intersection_sum::run_receiver(&mut transport, &group, &values, &mut rng)?;
            println!("count\t{}", out.intersection_count);
            println!("sum\t{}", out.sum);
            eprintln!("done: |V_S| = {}", out.peer_set_size);
        }
    }

    // Close out the trace: uninstall the tracer, flush the event stream,
    // then append the reconciliation verdict as the final line.
    drop(trace_guard);
    if let (Some(sink), Some(path)) = (trace_sink, args.trace_path.as_ref()) {
        sink.flush();
        drop(sink);
        match &summary {
            Some(s) => {
                let line = reconciliation_json(s, &traffic, 8 * group.codeword_bytes() as u64);
                let mut out = std::fs::OpenOptions::new().append(true).open(path)?;
                writeln!(out, "{line}")?;
                eprintln!("trace written to {path} (with cost reconciliation)");
            }
            None => eprintln!("trace written to {path} (no §6.1 formula for this command)"),
        }
    }
    Ok(())
}

/// What the reconciliation line needs from a finished protocol run.
struct RunSummary {
    protocol: Protocol,
    party: Party,
    own_values: u64,
    peer_values: u64,
    measured_ce: u64,
    k_prime_bits: u64,
}

/// Worker threads for the CLI's encryption pool: leave one core for the
/// protocol thread, cap modestly. A 0-worker pool runs jobs inline, so
/// single-core hosts behave exactly as before.
fn pool_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(0)
        .min(8)
}

/// Distinct-value count (the engines deduplicate, and §6.1 prices sets).
fn unique_count(values: &[Vec<u8>]) -> u64 {
    values
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64
}

/// The final trace line: this party's measured `Ce` against its §6.1
/// share, and the *total* observed traffic (one endpoint sees both
/// directions) against the communication formula plus the framing
/// envelope. Counting wraps the protocol layer, so the numbers hold with
/// or without `--secure`.
fn reconciliation_json(s: &RunSummary, traffic: &TrafficStats, k_bits: u64) -> String {
    let (vs, vr) = match s.party {
        Party::Sender => (s.own_values, s.peer_values),
        Party::Receiver => (s.peer_values, s.own_values),
    };
    let consts = CostConstants {
        k_bits,
        k_prime_bits: s.k_prime_bits,
        ..CostConstants::paper()
    };
    let predicted_ce = reconcile::party_ce_ops(s.protocol, s.party, vs, vr);
    let predicted_bytes = s.protocol.communication_bits(vs, vr, &consts).div_ceil(8);
    let measured_bytes = traffic.bytes_sent() + traffic.bytes_received();
    let frames = traffic.frames_sent() + traffic.frames_received();
    let ce_exact = s.measured_ce == predicted_ce;
    let bytes_within_envelope = measured_bytes >= predicted_bytes
        && measured_bytes - predicted_bytes <= reconcile::ENVELOPE_BYTES_PER_FRAME * frames;
    format!(
        concat!(
            "{{\"reconciliation\":{{\"protocol\":\"{}\",\"party\":\"{}\",",
            "\"vs\":{},\"vr\":{},\"k_bits\":{},\"k_prime_bits\":{},",
            "\"measured_ce\":{},\"predicted_party_ce\":{},\"ce_exact\":{},",
            "\"measured_bytes\":{},\"predicted_bytes\":{},\"frames\":{},",
            "\"bytes_within_envelope\":{},\"ok\":{}}}}}"
        ),
        reconcile::protocol_slug(s.protocol),
        s.party.name(),
        vs,
        vr,
        k_bits,
        s.k_prime_bits,
        s.measured_ce,
        predicted_ce,
        ce_exact,
        measured_bytes,
        predicted_bytes,
        frames,
        bytes_within_envelope,
        ce_exact && bytes_within_envelope,
    )
}
