//! Hand-rolled argument parsing (the workspace deliberately avoids
//! dependencies beyond its vetted list).

use std::fmt;

/// Which protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// §3 intersection.
    Intersect,
    /// §5.1 intersection size.
    IntersectSize,
    /// §4 equijoin.
    Join,
    /// §5.2 equijoin size.
    JoinSize,
    /// Private intersection-sum (the §7 aggregation extension).
    Sum,
}

impl Command {
    fn parse(s: &str) -> Option<Command> {
        match s {
            "intersect" => Some(Command::Intersect),
            "intersect-size" => Some(Command::IntersectSize),
            "join" => Some(Command::Join),
            "join-size" => Some(Command::JoinSize),
            "sum" => Some(Command::Sum),
            _ => None,
        }
    }
}

/// Which party this process plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The paper's `S`.
    Sender,
    /// The paper's `R`.
    Receiver,
}

/// How the TCP connection is established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Bind and wait for the peer.
    Listen(String),
    /// Connect to a waiting peer.
    Connect(String),
}

/// Fully parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The protocol to run.
    pub command: Command,
    /// Listen or connect.
    pub endpoint: Endpoint,
    /// Sender or receiver role.
    pub side: Side,
    /// Input file (one value per line; sender-side `join`/`sum` use
    /// `value<TAB>payload` / `value<TAB>weight` lines).
    pub values_path: String,
    /// Safe-prime group size in bits.
    pub group_bits: u64,
    /// Paillier key size for `sum` (sender side generates).
    pub key_bits: u64,
    /// Wrap the connection in the authenticated-encryption channel.
    pub secure: bool,
    /// RNG seed; `None` = OS entropy.
    pub seed: Option<u64>,
    /// Write a JSON-lines trace of the run to this file, followed by a
    /// final §6.1 reconciliation line.
    pub trace_path: Option<String>,
    /// Bucket count for the sharded bounded-memory engines; `1` runs the
    /// classic engines byte-identically. Receiver-side: the receiver
    /// announces the count and the sender adopts it.
    pub shards: u32,
    /// In-memory byte budget of the sharded engines' spill sorters.
    pub mem_budget: usize,
    /// Directory for spill run files (default: the OS temp dir).
    pub spill_dir: Option<String>,
}

/// A parse failure with a usage hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.0)?;
        write!(f, "{USAGE}")
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: minshare <command> (--listen ADDR | --connect ADDR) --values FILE [options]

commands:
  intersect        private set intersection (paper §3)
  intersect-size   intersection cardinality only (§5.1)
  join             equijoin with payloads (§4); sender lines: value<TAB>payload
  join-size        equijoin cardinality on multisets (§5.2)
  sum              private intersection-sum (§7 extension); sender lines: value<TAB>weight

options:
  --as sender|receiver   role override (default: --listen ⇒ sender, --connect ⇒ receiver)
  --group-bits N         safe-prime size: 768, 1024, 1536 or 2048 (default 768)
  --key-bits N           Paillier modulus bits for `sum` (default 1024)
  --secure               run inside the encrypted session channel
  --seed N               deterministic RNG seed (default: OS entropy)
  --trace FILE           write a JSON-lines event trace (counts, sizes and
                         durations only — never values or keys), ending
                         with a measured-vs-predicted cost reconciliation
  --shards B             receiver-side: split the run into B hash buckets
                         streamed through the bounded-memory engines
                         (default 1 = classic, byte-identical protocol);
                         the sender side adopts B automatically
  --mem-budget BYTES     in-memory budget per spill sorter before sorted
                         runs go to disk (default 67108864)
  --spill-dir DIR        where spill runs live while in flight (default:
                         OS temp dir; files are unlinked at creation)
";

impl Args {
    /// Parses a raw argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgsError> {
        let mut it = raw.into_iter();
        let command = match it.next() {
            Some(c) => {
                Command::parse(&c).ok_or_else(|| ArgsError(format!("unknown command {c:?}")))?
            }
            None => return Err(ArgsError("missing command".to_string())),
        };

        let mut endpoint = None;
        let mut side = None;
        let mut values_path = None;
        let mut group_bits = 768u64;
        let mut key_bits = 1024u64;
        let mut secure = false;
        let mut seed = None;
        let mut trace_path = None;
        let mut shards = 1u32;
        let mut mem_budget = 64usize << 20;
        let mut spill_dir = None;

        let next_value =
            |it: &mut dyn Iterator<Item = String>, flag: &str| -> Result<String, ArgsError> {
                it.next()
                    .ok_or_else(|| ArgsError(format!("{flag} requires a value")))
            };

        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--listen" => endpoint = Some(Endpoint::Listen(next_value(&mut it, "--listen")?)),
                "--connect" => {
                    endpoint = Some(Endpoint::Connect(next_value(&mut it, "--connect")?))
                }
                "--values" => values_path = Some(next_value(&mut it, "--values")?),
                "--as" => {
                    side = Some(match next_value(&mut it, "--as")?.as_str() {
                        "sender" => Side::Sender,
                        "receiver" => Side::Receiver,
                        other => {
                            return Err(ArgsError(format!(
                                "--as expects sender|receiver, got {other:?}"
                            )))
                        }
                    })
                }
                "--group-bits" => {
                    group_bits = next_value(&mut it, "--group-bits")?
                        .parse()
                        .map_err(|_| ArgsError("--group-bits expects a number".to_string()))?
                }
                "--key-bits" => {
                    key_bits = next_value(&mut it, "--key-bits")?
                        .parse()
                        .map_err(|_| ArgsError("--key-bits expects a number".to_string()))?
                }
                "--secure" => secure = true,
                "--trace" => trace_path = Some(next_value(&mut it, "--trace")?),
                "--shards" => {
                    shards = next_value(&mut it, "--shards")?
                        .parse()
                        .map_err(|_| ArgsError("--shards expects a number".to_string()))?;
                    if shards == 0 {
                        return Err(ArgsError("--shards must be at least 1".to_string()));
                    }
                }
                "--mem-budget" => {
                    mem_budget = next_value(&mut it, "--mem-budget")?
                        .parse()
                        .map_err(|_| ArgsError("--mem-budget expects a byte count".to_string()))?
                }
                "--spill-dir" => spill_dir = Some(next_value(&mut it, "--spill-dir")?),
                "--seed" => {
                    seed = Some(
                        next_value(&mut it, "--seed")?
                            .parse()
                            .map_err(|_| ArgsError("--seed expects a number".to_string()))?,
                    )
                }
                other => return Err(ArgsError(format!("unknown option {other:?}"))),
            }
        }

        let endpoint =
            endpoint.ok_or_else(|| ArgsError("one of --listen/--connect is required".into()))?;
        let side = side.unwrap_or(match endpoint {
            Endpoint::Listen(_) => Side::Sender,
            Endpoint::Connect(_) => Side::Receiver,
        });
        let values_path =
            values_path.ok_or_else(|| ArgsError("--values FILE is required".into()))?;

        Ok(Args {
            command,
            endpoint,
            side,
            values_path,
            group_bits,
            key_bits,
            secure,
            seed,
            trace_path,
            shards,
            mem_budget,
            spill_dir,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_minimal_sender() {
        let a = parse(&["intersect", "--listen", "0.0.0.0:9000", "--values", "v.txt"]).unwrap();
        assert_eq!(a.command, Command::Intersect);
        assert_eq!(a.endpoint, Endpoint::Listen("0.0.0.0:9000".into()));
        assert_eq!(a.side, Side::Sender);
        assert_eq!(a.group_bits, 768);
        assert!(!a.secure);
    }

    #[test]
    fn connect_defaults_to_receiver() {
        let a = parse(&["join", "--connect", "h:1", "--values", "v"]).unwrap();
        assert_eq!(a.side, Side::Receiver);
        assert_eq!(a.command, Command::Join);
    }

    #[test]
    fn role_override_and_options() {
        let a = parse(&[
            "sum",
            "--listen",
            "h:1",
            "--as",
            "receiver",
            "--values",
            "v",
            "--group-bits",
            "1024",
            "--key-bits",
            "512",
            "--secure",
            "--seed",
            "7",
        ])
        .unwrap();
        assert_eq!(a.side, Side::Receiver);
        assert_eq!(a.group_bits, 1024);
        assert_eq!(a.key_bits, 512);
        assert!(a.secure);
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.trace_path, None);
    }

    #[test]
    fn trace_flag_takes_a_path() {
        let a = parse(&[
            "intersect",
            "--listen",
            "h:1",
            "--values",
            "v",
            "--trace",
            "run.jsonl",
        ])
        .unwrap();
        assert_eq!(a.trace_path.as_deref(), Some("run.jsonl"));
        assert!(parse(&["intersect", "--listen", "h:1", "--values", "v", "--trace"]).is_err());
    }

    #[test]
    fn shard_flags_parse_and_default() {
        let a = parse(&["intersect", "--connect", "h:1", "--values", "v"]).unwrap();
        assert_eq!(a.shards, 1);
        assert_eq!(a.mem_budget, 64 << 20);
        assert_eq!(a.spill_dir, None);
        let a = parse(&[
            "intersect",
            "--connect",
            "h:1",
            "--values",
            "v",
            "--shards",
            "16",
            "--mem-budget",
            "1048576",
            "--spill-dir",
            "/tmp/spills",
        ])
        .unwrap();
        assert_eq!(a.shards, 16);
        assert_eq!(a.mem_budget, 1 << 20);
        assert_eq!(a.spill_dir.as_deref(), Some("/tmp/spills"));
        assert!(parse(&[
            "intersect",
            "--connect",
            "h:1",
            "--values",
            "v",
            "--shards",
            "0"
        ])
        .is_err());
        assert!(parse(&[
            "intersect",
            "--connect",
            "h:1",
            "--values",
            "v",
            "--mem-budget",
            "lots"
        ])
        .is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["intersect", "--values", "v"]).is_err()); // no endpoint
        assert!(parse(&["intersect", "--listen", "h:1"]).is_err()); // no values
        assert!(parse(&["intersect", "--listen"]).is_err()); // dangling flag
        assert!(parse(&[
            "intersect",
            "--listen",
            "h:1",
            "--values",
            "v",
            "--as",
            "nobody"
        ])
        .is_err());
        assert!(parse(&["intersect", "--listen", "h:1", "--values", "v", "--bogus"]).is_err());
    }
}
