//! 1-out-of-2 oblivious transfer over the quadratic-residue group
//! (Bellare–Micali construction in the random-oracle model).
//!
//! The paper's Appendix A prices the circuit baseline by the oblivious
//! transfers needed to code the evaluator's input bits (`w · |V_R|`
//! transfers). This module supplies a working OT so the garbled-circuit
//! baseline in `minshare-circuits` is executable, not just priced.
//!
//! Protocol (semi-honest):
//!
//! 1. Sender publishes a random group element `C` whose discrete log it
//!    does not know (derived from a session id by hashing into the group).
//! 2. Receiver with choice bit `b` picks `k ∈r KeyF`, sets `PK_b = g^k`
//!    and `PK_{1−b} = C · PK_b^{−1}`, and sends `PK_0`.
//! 3. Sender computes `PK_1 = C · PK_0^{−1}`, picks `r_0, r_1`, and sends
//!    `(g^{r_i}, H(PK_i^{r_i}) ⊕ m_i)` for `i = 0, 1`.
//! 4. Receiver recovers `m_b = H((g^{r_b})^k) ⊕ c_b`; the other pad is a
//!    CDH instance it cannot evaluate.

use minshare_bignum::UBig;
use minshare_hash::RandomOracle;
use rand::Rng;

use crate::error::CryptoError;
use crate::group::QrGroup;

/// A 1-out-of-2 oblivious-transfer session over a [`QrGroup`].
#[derive(Clone, Debug)]
pub struct ObliviousTransfer {
    group: QrGroup,
    pad_oracle: RandomOracle,
    /// The trapdoor-free element `C`.
    c: UBig,
}

/// Receiver's private state between query and recovery.
///
/// Both fields are secret (`k` is the trapdoor, `choice` is exactly what
/// OT exists to hide), so `Debug` redacts everything and dropping the
/// state best-effort-zeroizes the key.
#[derive(Clone)]
pub struct OtReceiverState {
    k: UBig,
    choice: bool,
}

impl std::fmt::Debug for OtReceiverState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OtReceiverState")
            .field("k", &"<redacted>")
            .field("choice", &"<redacted>")
            .finish()
    }
}

impl Drop for OtReceiverState {
    fn drop(&mut self) {
        self.k.zeroize();
        self.choice = false;
    }
}

/// Receiver → sender message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OtQuery {
    /// The public key for message index 0.
    pub pk0: UBig,
}

/// Sender → receiver message: two ElGamal-style encryptions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OtResponse {
    /// `g^{r_0}, g^{r_1}`.
    pub ephemeral: [UBig; 2],
    /// `H(PK_i^{r_i}) ⊕ m_i`.
    pub pads: [Vec<u8>; 2],
}

impl ObliviousTransfer {
    /// Creates a session bound to `session_id`. Both parties derive the
    /// same `C` by hashing the session id into the group, so neither knows
    /// its discrete log.
    pub fn new(group: QrGroup, session_id: &[u8]) -> Self {
        let mut tagged = b"minshare/ot/c-point/v1:".to_vec();
        tagged.extend_from_slice(session_id);
        let c = group.hash_to_group(&tagged);
        ObliviousTransfer {
            group,
            pad_oracle: RandomOracle::new(b"minshare/ot/pad/v1"),
            c,
        }
    }

    /// The group this session runs over.
    pub fn group(&self) -> &QrGroup {
        &self.group
    }

    /// Receiver step: produce the query for choice bit `choice`.
    pub fn receiver_query<R: Rng + ?Sized>(
        &self,
        choice: bool,
        rng: &mut R,
    ) -> Result<(OtReceiverState, OtQuery), CryptoError> {
        let k = self.group.gen_key(rng).exponent().clone();
        let pk_choice = self.group.pow(&self.group.generator(), &k);
        let pk_other = self.group.mul(&self.c, &self.group.inv(&pk_choice)?);
        let pk0 = if choice { pk_other } else { pk_choice };
        Ok((OtReceiverState { k, choice }, OtQuery { pk0 }))
    }

    /// Sender step: encrypt `m0` and `m1` (equal lengths) against the
    /// receiver's query.
    pub fn sender_respond<R: Rng + ?Sized>(
        &self,
        query: &OtQuery,
        m0: &[u8],
        m1: &[u8],
        rng: &mut R,
    ) -> Result<OtResponse, CryptoError> {
        if m0.len() != m1.len() {
            return Err(CryptoError::MalformedCiphertext);
        }
        if !self.group.is_member(&query.pk0) {
            return Err(CryptoError::NotGroupElement);
        }
        let pk1 = self.group.mul(&self.c, &self.group.inv(&query.pk0)?);
        let mut ephemeral = [UBig::zero(), UBig::zero()];
        let mut pads = [Vec::new(), Vec::new()];
        for (i, (pk, m)) in [(&query.pk0, m0), (&pk1, m1)].into_iter().enumerate() {
            let r = self.group.gen_key(rng).exponent().clone();
            ephemeral[i] = self.group.pow(&self.group.generator(), &r);
            let shared = self.group.pow(pk, &r);
            pads[i] = self.pad(i as u8, &shared, m)?;
        }
        Ok(OtResponse { ephemeral, pads })
    }

    /// Receiver step: recover the chosen message.
    pub fn receiver_recover(
        &self,
        state: &OtReceiverState,
        response: &OtResponse,
    ) -> Result<Vec<u8>, CryptoError> {
        let i = state.choice as usize;
        if response.pads[0].len() != response.pads[1].len() {
            return Err(CryptoError::MalformedCiphertext);
        }
        if !self.group.is_member(&response.ephemeral[i]) {
            return Err(CryptoError::NotGroupElement);
        }
        let shared = self.group.pow(&response.ephemeral[i], &state.k);
        self.pad(i as u8, &shared, &response.pads[i])
    }

    /// XOR pad derived from a shared group element, bound to the slot
    /// index so the two pads are independent even if `r_0 = r_1`.
    fn pad(&self, slot: u8, shared: &UBig, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut seed = vec![slot];
        seed.extend_from_slice(&self.group.encode_element(shared)?);
        let stream = self.pad_oracle.expand(&seed, data.len());
        Ok(data.iter().zip(stream.iter()).map(|(a, b)| a ^ b).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ObliviousTransfer, StdRng) {
        let mut seed_rng = StdRng::seed_from_u64(4242);
        let group = QrGroup::generate(&mut seed_rng, 64).unwrap();
        (
            ObliviousTransfer::new(group, b"test-session"),
            StdRng::seed_from_u64(7),
        )
    }

    #[test]
    fn receiver_gets_chosen_message() {
        let (ot, mut rng) = setup();
        for choice in [false, true] {
            let (state, query) = ot.receiver_query(choice, &mut rng).unwrap();
            let resp = ot
                .sender_respond(&query, b"message-zero", b"message-one!", &mut rng)
                .unwrap();
            let got = ot.receiver_recover(&state, &resp).unwrap();
            let expect: &[u8] = if choice {
                b"message-one!"
            } else {
                b"message-zero"
            };
            assert_eq!(got, expect, "choice={choice}");
        }
    }

    #[test]
    fn other_pad_is_garbage() {
        let (ot, mut rng) = setup();
        let (state, query) = ot.receiver_query(false, &mut rng).unwrap();
        let resp = ot
            .sender_respond(&query, b"chosen-00000", b"hidden-11111", &mut rng)
            .unwrap();
        // Decrypting the *other* slot with the receiver's key must not
        // yield the hidden message.
        let wrong_state = OtReceiverState {
            k: state.k.clone(),
            choice: true,
        };
        let got = ot.receiver_recover(&wrong_state, &resp).unwrap();
        assert_ne!(got, b"hidden-11111");
    }

    #[test]
    fn query_hides_choice_structurally() {
        // PK0 is a valid group element for both choices; there is no
        // structural marker of the choice bit.
        let (ot, mut rng) = setup();
        let (_, q0) = ot.receiver_query(false, &mut rng).unwrap();
        let (_, q1) = ot.receiver_query(true, &mut rng).unwrap();
        assert!(ot.group().is_member(&q0.pk0));
        assert!(ot.group().is_member(&q1.pk0));
    }

    #[test]
    fn pk_product_equals_c_invariant() {
        // PK0 · PK1 = C must hold from the sender's perspective; this is
        // what prevents the receiver from knowing both discrete logs.
        let (ot, mut rng) = setup();
        let (_, query) = ot.receiver_query(true, &mut rng).unwrap();
        let pk1 = ot.group().mul(&ot.c, &ot.group().inv(&query.pk0).unwrap());
        assert_eq!(ot.group().mul(&query.pk0, &pk1), ot.c);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let (ot, mut rng) = setup();
        let (_, query) = ot.receiver_query(false, &mut rng).unwrap();
        assert!(matches!(
            ot.sender_respond(&query, b"short", b"longer-message", &mut rng),
            Err(CryptoError::MalformedCiphertext)
        ));
    }

    #[test]
    fn invalid_pk_rejected() {
        let (ot, mut rng) = setup();
        let bad = OtQuery { pk0: UBig::zero() };
        assert!(matches!(
            ot.sender_respond(&bad, b"a", b"b", &mut rng),
            Err(CryptoError::NotGroupElement)
        ));
    }

    #[test]
    fn empty_messages_work() {
        let (ot, mut rng) = setup();
        let (state, query) = ot.receiver_query(true, &mut rng).unwrap();
        let resp = ot.sender_respond(&query, b"", b"", &mut rng).unwrap();
        assert!(ot.receiver_recover(&state, &resp).unwrap().is_empty());
    }

    #[test]
    fn receiver_state_debug_redacted() {
        let (ot, mut rng) = setup();
        let (state, _) = ot.receiver_query(true, &mut rng).unwrap();
        let rendered = format!("{state:?}");
        assert!(rendered.contains("<redacted>"), "state leaked: {rendered}");
        assert!(!rendered.contains("true"), "choice bit leaked: {rendered}");
    }

    #[test]
    fn sessions_are_domain_separated() {
        let mut seed_rng = StdRng::seed_from_u64(4242);
        let group = QrGroup::generate(&mut seed_rng, 64).unwrap();
        let a = ObliviousTransfer::new(group.clone(), b"s1");
        let b = ObliviousTransfer::new(group, b"s2");
        assert_ne!(a.c, b.c);
    }
}
