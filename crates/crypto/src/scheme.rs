//! The abstract commutative-encryption interface of Definition 2.
//!
//! The paper defines commutative encryption abstractly and then
//! instantiates it (Example 1) with power functions over `QR_p`. The
//! protocol engines in the `minshare` crate are generic over this trait,
//! so both bundled instantiations can drive them:
//!
//! * [`crate::group::QrGroup`] — Example 1 (DDH in `QR_p`); the primary
//!   instantiation, for which the paper's proofs are stated;
//! * [`crate::sra::SraContext`] — the cited mental-poker construction
//!   (\[42\]) over a shared-factorization RSA modulus.
//!
//! Method names are deliberately distinct from the instantiations'
//! inherent methods (`apply` vs `encrypt`, …) so generic code reads
//! unambiguously.

use minshare_bignum::UBig;
use rand::Rng;

use crate::error::CryptoError;

/// A commutative encryption scheme `F` with its domain codec.
///
/// Contract (Definition 2 of the paper, testable parts):
/// * `apply(k1, apply(k2, x)) == apply(k2, apply(k1, x))`,
/// * `unapply(k, apply(k, x)) == x`,
/// * `hash_value` maps arbitrary bytes into the scheme's domain,
/// * `decode_elem(encode_elem(x)) == x` and `decode_elem` rejects
///   non-domain bytes.
pub trait CommutativeScheme {
    /// The key type (must be generatable and reusable).
    type Key: Clone;

    /// Samples a key uniformly from the scheme's key space.
    fn key_gen<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Key;

    /// `f_k(x)`.
    fn apply(&self, key: &Self::Key, x: &UBig) -> UBig;

    /// `f_k⁻¹(y)`.
    fn unapply(&self, key: &Self::Key, y: &UBig) -> UBig;

    /// The ideal hash `h : V → DomF`.
    fn hash_value(&self, value: &[u8]) -> UBig;

    /// Fixed codeword width in bytes.
    fn codeword_len(&self) -> usize;

    /// Serializes a domain element at [`CommutativeScheme::codeword_len`].
    fn encode_elem(&self, x: &UBig) -> Result<Vec<u8>, CryptoError>;

    /// Parses and validates a domain element.
    fn decode_elem(&self, bytes: &[u8]) -> Result<UBig, CryptoError>;
}

impl CommutativeScheme for crate::group::QrGroup {
    type Key = crate::commutative::CommutativeKey;

    fn key_gen<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Key {
        self.gen_key(rng)
    }

    fn apply(&self, key: &Self::Key, x: &UBig) -> UBig {
        self.encrypt(key, x)
    }

    fn unapply(&self, key: &Self::Key, y: &UBig) -> UBig {
        self.decrypt(key, y)
    }

    fn hash_value(&self, value: &[u8]) -> UBig {
        self.hash_to_group(value)
    }

    fn codeword_len(&self) -> usize {
        self.codeword_bytes()
    }

    fn encode_elem(&self, x: &UBig) -> Result<Vec<u8>, CryptoError> {
        self.encode_element(x)
    }

    fn decode_elem(&self, bytes: &[u8]) -> Result<UBig, CryptoError> {
        self.decode_element(bytes)
    }
}

impl CommutativeScheme for crate::sra::SraContext {
    type Key = crate::sra::SraKey;

    fn key_gen<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Key {
        self.gen_key(rng)
    }

    fn apply(&self, key: &Self::Key, x: &UBig) -> UBig {
        self.encrypt(key, x)
    }

    fn unapply(&self, key: &Self::Key, y: &UBig) -> UBig {
        self.decrypt(key, y)
    }

    fn hash_value(&self, value: &[u8]) -> UBig {
        self.hash_to_domain(value)
    }

    fn codeword_len(&self) -> usize {
        (self.modulus().bit_len() as usize).div_ceil(8)
    }

    fn encode_elem(&self, x: &UBig) -> Result<Vec<u8>, CryptoError> {
        Ok(x.to_be_bytes_padded(self.codeword_len())?)
    }

    fn decode_elem(&self, bytes: &[u8]) -> Result<UBig, CryptoError> {
        if bytes.len() != self.codeword_len() {
            return Err(CryptoError::MalformedCiphertext);
        }
        let x = UBig::from_be_bytes(bytes);
        if x.is_zero() || &x >= self.modulus() || !x.gcd(self.modulus()).is_one() {
            return Err(CryptoError::NotGroupElement);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generic Definition-2 exerciser used against both instantiations.
    fn check_definition2<S: CommutativeScheme>(scheme: &S, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k1 = scheme.key_gen(&mut rng);
        let k2 = scheme.key_gen(&mut rng);
        for i in 0..10u32 {
            let x = scheme.hash_value(&i.to_be_bytes());
            // Commutativity.
            assert_eq!(
                scheme.apply(&k1, &scheme.apply(&k2, &x)),
                scheme.apply(&k2, &scheme.apply(&k1, &x))
            );
            // Inversion.
            assert_eq!(scheme.unapply(&k1, &scheme.apply(&k1, &x)), x);
            // Codec round trip.
            let y = scheme.apply(&k1, &x);
            let bytes = scheme.encode_elem(&y).unwrap();
            assert_eq!(bytes.len(), scheme.codeword_len());
            assert_eq!(scheme.decode_elem(&bytes).unwrap(), y);
        }
        // Decode rejects zero.
        let zeros = vec![0u8; scheme.codeword_len()];
        assert!(scheme.decode_elem(&zeros).is_err());
    }

    #[test]
    fn qr_group_satisfies_contract() {
        let mut rng = StdRng::seed_from_u64(0x5c4e);
        let g = crate::group::QrGroup::generate(&mut rng, 64).unwrap();
        check_definition2(&g, 1);
    }

    #[test]
    fn sra_satisfies_contract() {
        let mut rng = StdRng::seed_from_u64(0x5c4f);
        let s = crate::sra::SraContext::generate(&mut rng, 64).unwrap();
        check_definition2(&s, 2);
    }

    #[test]
    fn sra_decode_rejects_non_units() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = crate::sra::SraContext::generate(&mut rng, 32).unwrap();
        // Find a multiple of a prime factor: gcd(x, n) > 1 → rejected.
        let mut x = UBig::from(2u64);
        while x.gcd(s.modulus()).is_one() {
            x = x.add_small(1);
        }
        let bytes = s.encode_elem(&x).unwrap();
        assert!(matches!(
            s.decode_elem(&bytes),
            Err(CryptoError::NotGroupElement)
        ));
    }
}
