//! Persistent work-stealing encryption pool.
//!
//! §6.2 of the paper assumes "P processors that we can utilize in
//! parallel" when dividing its time estimates. [`crate::batch`] supplies
//! that `P` per call by spawning scoped threads; this module makes the
//! workers *persistent* so one pool, sized once per session, serves every
//! protocol round without re-paying thread spawn/join on each batch — the
//! structure the chunk-pipelined engines in `minshare-core` need, where
//! many small batches are in flight at once.
//!
//! Work distribution is by atomic sub-chunk claiming: every job is
//! broadcast to all workers, and each worker (plus the waiting caller)
//! repeatedly claims a contiguous range with a `fetch_add` cursor. Claim
//! sizes are *guided* (half the remaining share of the claiming party,
//! floored at [`MIN_CLAIM`]): the first parties to arrive take large
//! contiguous head chunks — so the submitting thread does most of its help
//! in one cache-friendly run instead of contending per-item — while the
//! geometric decay leaves [`MIN_CLAIM`]-sized crumbs at the tail for
//! straggler rebalancing, the same property a stealing deque buys with
//! nothing but channels and one atomic. The claim cursor and every other
//! hot counter sit on their own cache line ([`CachePadded`]) so claims
//! from different threads never false-share.
//!
//! The caller *helps*: [`PendingBatch::wait`] runs the job on the calling
//! thread too, so a pool with zero workers still completes every job
//! (inline), and a pool on a loaded machine never deadlocks waiting for a
//! busy worker.
//!
//! Two measured guards keep the pool from losing to serial (as it
//! measurably did on a 1-core host):
//!
//! * [`EncryptPool::new`] clamps the worker count to `cores - 1` (the
//!   caller is the remaining party), so a 1-core host gets zero workers
//!   and every job runs inline — identical code path to serial.
//! * Batches below a *measured* hand-off threshold run inline even when
//!   workers exist. Construction times several probe round-trips through
//!   the job channel and takes their median (one descheduled worker no
//!   longer poisons the estimate); afterwards, every pooled job's first
//!   worker claim feeds the observed submit→claim latency back into a
//!   dispatch EWMA, and every evaluated claim (inline *and* pooled) feeds
//!   the per-item cost EWMA. The inline threshold is their ratio — a
//!   batch must outweigh the dispatch overhead before it is worth waking
//!   another thread — and it keeps auto-tuning as the workload shifts.
//!   [`PipelineConfig::calibrated`] in `minshare-core` reads both EWMAs
//!   to pick its chunk sizes from the same measurements.
//!
//! This file carries a WIRE01 exemption in the analyzer's taint
//! registry (`WIRE01_EXEMPT_FILES`): the `send` calls here are
//! crossbeam channel hand-offs to worker threads in the same process,
//! not network transmission. Conversely [`PendingBatch::wait`] is
//! registered encrypt-class — the pool runs nothing but scheme ops, so
//! its output is ciphertext. Keep both properties true if this module
//! grows.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use minshare_bignum::{FixedExponentPlan, UBig};

use crate::batch::effective_threads;
use crate::commutative::CommutativeKey;
use crate::group::QrGroup;

/// Smallest cursor claim: the tail granularity stragglers rebalance at,
/// and the floor of the inline hand-off threshold (anything one claim
/// would cover is not worth dispatching).
const MIN_CLAIM: usize = 16;

/// Ceiling of the measured inline threshold, so a mis-calibrated probe
/// (e.g. a descheduled worker inflating the round-trip) cannot disable
/// the pool for genuinely large batches.
const MAX_INLINE: usize = 1024;

/// Construction-time dispatch probe rounds; the first is a warm-up
/// (thread start-up, cold caches) and is discarded, the median of the
/// rest becomes the initial dispatch estimate.
const DISPATCH_PROBES: usize = 6;

/// Live dispatch samples above this are treated as scheduler noise (a
/// descheduled worker, not channel cost) and clipped before entering the
/// EWMA.
const DISPATCH_SAMPLE_CAP_NS: u64 = 50_000_000;

/// Pads a hot atomic to its own cache line (128 bytes covers the spatial
/// prefetcher pair on current x86 cores), so claim traffic on one counter
/// never invalidates a neighbour. Hand-rolled because this workspace
/// forbids `unsafe` and vendors no utility crates.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// EWMA fold: `next = (3·old + sample) / 4`, seeding on the first sample.
fn ewma_record(cell: &AtomicU64, sample: u64) {
    let sample = sample.max(1);
    let old = cell.load(Ordering::Relaxed);
    let next = if old == 0 { sample } else { (3 * old + sample) / 4 };
    cell.store(next, Ordering::Relaxed);
}

/// The pool's live calibration state, shared with every in-flight job so
/// pooled claims keep tuning the estimates (inline-only feedback went
/// stale as soon as the pool warmed up and stopped running inline).
#[derive(Debug, Default)]
struct PoolTuning {
    /// EWMA of submit→first-worker-claim latency (ns); seeded by the
    /// construction probe median. 0 only for a workerless pool.
    dispatch_ns: CachePadded<AtomicU64>,
    /// EWMA of per-item encrypt cost (ns), fed by inline runs and pooled
    /// claims alike; 0 until the first nonempty batch calibrates it.
    item_ns: CachePadded<AtomicU64>,
}

/// Lifetime submission counters, one padded atomic each (the stats lock
/// this replaces serialized every submit across threads).
#[derive(Debug, Default)]
struct PoolCounters {
    jobs: CachePadded<AtomicU64>,
    items: CachePadded<AtomicU64>,
    inline_jobs: CachePadded<AtomicU64>,
}

/// Counters for observing pool behavior (benches and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted over the pool's lifetime.
    pub jobs: u64,
    /// Total items across all submitted jobs.
    pub items: u64,
    /// Jobs that ran inline on the caller (below threshold or no workers).
    pub inline_jobs: u64,
}

/// The operation a job applies to each of its items.
enum PoolTask {
    /// `f_e(x)` over group elements.
    Encrypt(Vec<UBig>),
    /// `f_e⁻¹(x)` over group elements.
    Decrypt(Vec<UBig>),
    /// `f_e(h(v))` over raw byte values.
    HashEncrypt(Vec<Vec<u8>>),
}

impl PoolTask {
    fn len(&self) -> usize {
        match self {
            PoolTask::Encrypt(v) | PoolTask::Decrypt(v) => v.len(),
            PoolTask::HashEncrypt(v) => v.len(),
        }
    }

    /// Applies the operation to `range` through the job's fixed-exponent
    /// plan (multi-lane within the claim), or `None` if the range is out
    /// of bounds (unreachable for cursor-claimed ranges).
    fn eval_range(
        &self,
        group: &QrGroup,
        plan: &FixedExponentPlan,
        start: usize,
        end: usize,
    ) -> Option<Vec<UBig>> {
        match self {
            PoolTask::Encrypt(v) | PoolTask::Decrypt(v) => Some(plan.pow_batch(v.get(start..end)?)),
            PoolTask::HashEncrypt(v) => {
                let hashes: Vec<UBig> = v
                    .get(start..end)?
                    .iter()
                    .map(|x| group.hash_to_group(x))
                    .collect();
                Some(plan.pow_batch(&hashes))
            }
        }
    }
}

/// What a broadcast job asks the workers to do.
enum JobWork {
    /// A batch of cipher operations under one fixed-exponent plan.
    Crypto {
        group: QrGroup,
        plan: Arc<FixedExponentPlan>,
        task: PoolTask,
    },
    /// Construction-time dispatch probe: the first claimer sends one
    /// empty marker so the pool can time a channel round-trip.
    Probe,
}

/// One in-flight batch: the work, a claim cursor, and the channel
/// results flow back on.
///
/// Holds a live fixed-exponent plan (equivalent to the key) for the
/// duration of the batch, so it is registered with the secret-hygiene
/// analyzer: no `Debug`, no structural equality.
struct PoolJob {
    work: JobWork,
    /// Next unclaimed item index; cache-line isolated so concurrent
    /// claims touch nothing else.
    cursor: CachePadded<AtomicUsize>,
    /// Workers + the helping caller: the denominator of guided claims.
    parties: usize,
    /// When the job was broadcast; the first worker claim measures
    /// submit→claim latency against it.
    submitted: Instant,
    /// Live calibration shared with the owning pool.
    tuning: Arc<PoolTuning>,
    results: Sender<(usize, Vec<UBig>)>,
}

impl PoolJob {
    /// Claims and evaluates contiguous sub-chunks until the job is
    /// exhausted. Called by every worker that receives the job
    /// (`is_worker`) and by the waiting caller. Guided claim sizing:
    /// each claim takes half the claimant's share of what remains, so
    /// early claims are large and contiguous and the tail degrades to
    /// [`MIN_CLAIM`] crumbs for rebalancing.
    fn run(&self, is_worker: bool) {
        match &self.work {
            JobWork::Probe => {
                if self.cursor.0.fetch_add(1, Ordering::Relaxed) == 0 {
                    let _ = self.results.send((0, Vec::new()));
                }
            }
            JobWork::Crypto { group, plan, task } => {
                let total = task.len();
                let mut first_claim = is_worker;
                loop {
                    let claimed = self.cursor.0.load(Ordering::Relaxed);
                    if claimed >= total {
                        return;
                    }
                    // A stale `claimed` only skews the claim size, never
                    // correctness: the fetch_add below is the sole
                    // authority on who owns which range.
                    let want = ((total - claimed) / (2 * self.parties)).max(MIN_CLAIM);
                    let start = self.cursor.0.fetch_add(want, Ordering::Relaxed);
                    if start >= total {
                        return;
                    }
                    if first_claim {
                        first_claim = false;
                        let lat = self.submitted.elapsed().as_nanos().min(u128::from(u64::MAX))
                            as u64;
                        ewma_record(&self.tuning.dispatch_ns.0, lat.min(DISPATCH_SAMPLE_CAP_NS));
                    }
                    let end = start.saturating_add(want).min(total);
                    let eval_started = Instant::now();
                    if let Some(out) = task.eval_range(group, plan, start, end) {
                        record_item_cost(&self.tuning, eval_started.elapsed(), end - start);
                        // A send error means the caller abandoned the batch;
                        // keep draining the cursor so the job finishes quietly.
                        let _ = self.results.send((start, out));
                    }
                }
            }
        }
    }

    fn total_items(&self) -> usize {
        match &self.work {
            JobWork::Probe => 0,
            JobWork::Crypto { task, .. } => task.len(),
        }
    }
}

/// Folds a measured run's per-item cost into the EWMA calibration.
fn record_item_cost(tuning: &PoolTuning, elapsed: Duration, items: usize) {
    if items == 0 {
        return;
    }
    let per = (elapsed.as_nanos() / items as u128).min(u128::from(u64::MAX)) as u64;
    ewma_record(&tuning.item_ns.0, per);
}

/// Handle to an in-flight batch; redeem with [`PendingBatch::wait`].
pub struct PendingBatch {
    inner: PendingInner,
}

enum PendingInner {
    /// Results computed inline at submission (small batch or no workers).
    Ready(Vec<UBig>),
    /// Broadcast to the workers; the caller helps at `wait`.
    InFlight {
        job: Arc<PoolJob>,
        rx: Receiver<(usize, Vec<UBig>)>,
    },
}

impl PendingBatch {
    /// Wraps already-computed results, e.g. from a serial fallback path.
    /// `wait` returns them unchanged.
    pub fn ready(results: Vec<UBig>) -> Self {
        PendingBatch {
            inner: PendingInner::Ready(results),
        }
    }

    /// Number of items the batch will produce.
    pub fn len(&self) -> usize {
        match &self.inner {
            PendingInner::Ready(v) => v.len(),
            PendingInner::InFlight { job, .. } => job.total_items(),
        }
    }

    /// True if the batch holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until every item is processed and returns the outputs in
    /// input order. The calling thread helps with unclaimed sub-chunks
    /// first — its guided claims take contiguous ranges, not per-item
    /// nibbles — so completion never depends on pool workers being free.
    pub fn wait(self) -> Vec<UBig> {
        let (job, rx) = match self.inner {
            PendingInner::Ready(v) => return v,
            PendingInner::InFlight { job, rx } => (job, rx),
        };
        let waited = minshare_trace::span("pool", "wait", false);
        job.run(false);
        let total = job.total_items();
        let mut parts: Vec<(usize, Vec<UBig>)> = Vec::new();
        let mut received = 0usize;
        while received < total {
            match rx.recv() {
                Ok((start, part)) => {
                    received += part.len();
                    parts.push((start, part));
                }
                // Unreachable while `job` (which owns a sender) is
                // alive; bail rather than spin if it ever happens.
                Err(_) => break,
            }
        }
        parts.sort_by_key(|(start, _)| *start);
        waited.finish(vec![minshare_trace::count("items", total as u64)]);
        parts.into_iter().flat_map(|(_, part)| part).collect()
    }
}

/// A persistent pool of encryption workers, sized once and shared across
/// protocol rounds. Cheap to share by reference; submission takes `&self`.
pub struct EncryptPool {
    /// One job-broadcast channel per worker.
    senders: Vec<Sender<Arc<PoolJob>>>,
    workers: Vec<JoinHandle<()>>,
    counters: PoolCounters,
    /// Live dispatch/per-item estimates, shared with in-flight jobs.
    tuning: Arc<PoolTuning>,
}

impl EncryptPool {
    /// Creates a pool with at most `threads` background workers, clamped
    /// to the host's available parallelism minus one (the submitting
    /// thread is the remaining party — it always helps in
    /// [`PendingBatch::wait`]). On a 1-core host this yields zero workers
    /// and every job runs inline, which measurably beats oversubscribing.
    /// `threads == 0` is valid: jobs then always run on the caller.
    pub fn new(threads: usize) -> Self {
        let workers = effective_threads(threads.saturating_add(1), usize::MAX).saturating_sub(1);
        Self::build(workers.min(threads))
    }

    /// Creates a pool with exactly `threads` workers, bypassing the core
    /// clamp. For tests and ablations that need the cross-thread path on
    /// hosts with too few cores to get it from [`EncryptPool::new`].
    pub fn with_workers(threads: usize) -> Self {
        Self::build(threads)
    }

    fn build(threads: usize) -> Self {
        let mut senders = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = unbounded::<Arc<PoolJob>>();
            let builder = std::thread::Builder::new().name(format!("encrypt-pool-{i}"));
            // A failed spawn degrades capacity, never correctness: the
            // caller-help in `wait` still completes every job.
            if let Ok(handle) = builder.spawn(move || {
                while let Ok(job) = rx.recv() {
                    job.run(true);
                }
            }) {
                senders.push(tx);
                workers.push(handle);
            }
        }
        let tuning = Arc::new(PoolTuning::default());
        tuning
            .dispatch_ns
            .0
            .store(measure_dispatch(&senders, &tuning), Ordering::Relaxed);
        EncryptPool {
            senders,
            workers,
            counters: PoolCounters::default(),
            tuning,
        }
    }

    /// Number of live background workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The current submit→first-claim dispatch estimate in nanoseconds:
    /// the construction probe median, refined by the EWMA of observed
    /// first-claim latencies on real jobs (0 for a workerless pool).
    pub fn dispatch_overhead_ns(&self) -> u64 {
        self.tuning.dispatch_ns.0.load(Ordering::Relaxed)
    }

    /// The current per-item cost estimate in nanoseconds (EWMA over
    /// inline runs and pooled claims; 0 until the first batch). The
    /// pipeline calibrator sizes its chunks from this.
    pub fn item_cost_ns(&self) -> u64 {
        self.tuning.item_ns.0.load(Ordering::Relaxed)
    }

    /// Snapshot of lifetime submission counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.counters.jobs.0.load(Ordering::Relaxed),
            items: self.counters.items.0.load(Ordering::Relaxed),
            inline_jobs: self.counters.inline_jobs.0.load(Ordering::Relaxed),
        }
    }

    /// Batch size at or below which submission runs inline: the measured
    /// dispatch latency divided by the measured per-item cost, floored
    /// at one claim and capped so large batches always use the workers.
    /// Both inputs are live EWMAs, so the threshold tracks the workload.
    fn inline_threshold(&self) -> usize {
        if self.senders.is_empty() {
            return usize::MAX;
        }
        let item = self.item_cost_ns();
        if item == 0 {
            return MIN_CLAIM;
        }
        ((self.dispatch_overhead_ns() / item) as usize).clamp(MIN_CLAIM, MAX_INLINE)
    }

    fn submit(&self, group: &QrGroup, key: &CommutativeKey, task: PoolTask) -> PendingBatch {
        let total = task.len();
        let plan = match &task {
            PoolTask::Encrypt(_) | PoolTask::HashEncrypt(_) => key.enc_plan(group.mont_ctx()),
            PoolTask::Decrypt(_) => key.dec_plan(group.mont_ctx()),
        };
        let inline = total <= self.inline_threshold();
        self.counters.jobs.0.fetch_add(1, Ordering::Relaxed);
        self.counters.items.0.fetch_add(total as u64, Ordering::Relaxed);
        if inline {
            self.counters.inline_jobs.0.fetch_add(1, Ordering::Relaxed);
        }
        // The inline decision feeds on the EWMA of measured per-item
        // cost, so the flag (and in principle the event count a sink
        // sees, if a caller branches on pool behaviour) is
        // timing-dependent — non-deterministic by construction.
        minshare_trace::emit("pool", "submit", false, || {
            vec![
                minshare_trace::count("items", total as u64),
                minshare_trace::flag("inline", inline),
            ]
        });
        if inline {
            let started = Instant::now();
            let out = task.eval_range(group, &plan, 0, total).unwrap_or_default();
            record_item_cost(&self.tuning, started.elapsed(), total);
            return PendingBatch::ready(out);
        }
        let (tx, rx) = unbounded();
        let job = Arc::new(PoolJob {
            work: JobWork::Crypto {
                group: group.clone(),
                plan,
                task,
            },
            cursor: CachePadded(AtomicUsize::new(0)),
            parties: self.workers.len() + 1,
            submitted: Instant::now(),
            tuning: Arc::clone(&self.tuning),
            results: tx,
        });
        for sender in &self.senders {
            let _ = sender.send(Arc::clone(&job));
        }
        PendingBatch {
            inner: PendingInner::InFlight { job, rx },
        }
    }

    /// Starts encrypting `items` with `key`; returns immediately.
    pub fn submit_encrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        items: &[UBig],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::Encrypt(items.to_vec()))
    }

    /// Starts decrypting `items` with `key`; returns immediately.
    pub fn submit_decrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        items: &[UBig],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::Decrypt(items.to_vec()))
    }

    /// Starts hash-then-encrypt (`f_e(h(v))`) over raw values.
    pub fn submit_hash_encrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        values: &[Vec<u8>],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::HashEncrypt(values.to_vec()))
    }

    /// Convenience: submit + wait. Drop-in for [`crate::batch::encrypt_batch`].
    pub fn encrypt_batch(&self, group: &QrGroup, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        self.submit_encrypt(group, key, items).wait()
    }

    /// Convenience: submit + wait for decryption.
    pub fn decrypt_batch(&self, group: &QrGroup, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        self.submit_decrypt(group, key, items).wait()
    }

    /// Convenience: submit + wait for hash-then-encrypt.
    pub fn hash_encrypt_batch(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        values: &[Vec<u8>],
    ) -> Vec<UBig> {
        self.submit_hash_encrypt(group, key, values).wait()
    }
}

/// Measures the job-channel dispatch latency at construction:
/// [`DISPATCH_PROBES`] probe round-trips through the first worker's
/// channel, discarding the first (worker start-up) and taking the median
/// of the rest, so one descheduled round cannot poison the estimate the
/// inline threshold and pipeline calibration start from. Returns 0 when
/// there is nothing to measure (no workers).
fn measure_dispatch(senders: &[Sender<Arc<PoolJob>>], tuning: &Arc<PoolTuning>) -> u64 {
    let Some(first) = senders.first() else {
        return 0;
    };
    let mut samples = Vec::with_capacity(DISPATCH_PROBES);
    for _ in 0..DISPATCH_PROBES {
        let (tx, rx) = unbounded();
        let probe = Arc::new(PoolJob {
            work: JobWork::Probe,
            cursor: CachePadded(AtomicUsize::new(0)),
            parties: senders.len() + 1,
            submitted: Instant::now(),
            tuning: Arc::clone(tuning),
            results: tx,
        });
        let started = Instant::now();
        if first.send(probe).is_err() {
            return 0;
        }
        // A bounded wait: a wedged worker should degrade calibration,
        // not hang construction.
        let _ = rx.recv_timeout(Duration::from_millis(100));
        samples.push(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    // Drop the warm-up round, then take the median.
    samples.remove(0);
    samples.sort_unstable();
    samples.get(samples.len() / 2).copied().unwrap_or(0)
}

impl Drop for EncryptPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop; workers
        // finish any job already in hand first.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(0xba7c);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn pool_matches_serial_batch() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(11);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..41).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        for threads in [0usize, 1, 2, 4] {
            let pool = EncryptPool::new(threads);
            assert_eq!(pool.encrypt_batch(&g, &key, &items), serial, "t={threads}");
        }
    }

    #[test]
    fn unclamped_pool_matches_serial_batch() {
        // The cross-thread path, regardless of host core count.
        let g = group();
        let mut rng = StdRng::seed_from_u64(21);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..MAX_INLINE + 7).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        let pool = EncryptPool::with_workers(2);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.encrypt_batch(&g, &key, &items), serial);
    }

    #[test]
    fn stress_pool_matches_serial_at_every_thread_count() {
        // The guided-claiming scheme must never change results: every
        // thread count, repeated rounds (so the EWMAs move and the inline
        // threshold shifts mid-test), exact equality with serial.
        let g = group();
        let mut rng = StdRng::seed_from_u64(31);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..257).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        for threads in [0usize, 1, 2, 3, 4, 8] {
            let pool = EncryptPool::with_workers(threads);
            for round in 0..3 {
                assert_eq!(
                    pool.encrypt_batch(&g, &key, &items),
                    serial,
                    "t={threads} round={round}"
                );
            }
            let stats = pool.stats();
            assert_eq!(stats.jobs, 3);
            assert_eq!(stats.items, 3 * items.len() as u64);
        }
    }

    #[test]
    fn guided_claims_cover_exactly_once() {
        // Claim-ledger property: across many shapes, the concatenated
        // sorted parts must reconstruct the whole input — no item done
        // twice, none skipped — even when claims race.
        let g = group();
        let mut rng = StdRng::seed_from_u64(32);
        let key = g.gen_key(&mut rng);
        for count in [MIN_CLAIM + 1, 63, 100, 255] {
            let items: Vec<UBig> = (0..count).map(|_| g.sample_element(&mut rng)).collect();
            let serial = batch::encrypt_batch(&g, &key, &items, 1);
            let pool = EncryptPool::with_workers(3);
            let out = pool.encrypt_batch(&g, &key, &items);
            assert_eq!(out.len(), items.len(), "count={count}");
            assert_eq!(out, serial, "count={count}");
        }
    }

    #[test]
    fn worker_count_is_clamped_to_cores() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool = EncryptPool::new(64);
        assert!(
            pool.threads() <= cores.saturating_sub(1),
            "workers={} cores={cores}",
            pool.threads()
        );
        assert_eq!(EncryptPool::new(0).threads(), 0);
    }

    #[test]
    fn small_batches_run_inline_on_worker_pools() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(22);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        let items: Vec<UBig> = (0..MIN_CLAIM).map(|_| g.sample_element(&mut rng)).collect();
        let out = pool.encrypt_batch(&g, &key, &items);
        assert_eq!(out, batch::encrypt_batch(&g, &key, &items, 1));
        assert_eq!(pool.stats().inline_jobs, 1, "≤ MIN_CLAIM must not dispatch");
    }

    #[test]
    fn pooled_jobs_feed_the_item_ewma() {
        // The per-item EWMA must calibrate from dispatched jobs too, not
        // only inline runs — otherwise the threshold goes stale the
        // moment the pool warms up.
        let g = group();
        let mut rng = StdRng::seed_from_u64(23);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        let items: Vec<UBig> = (0..MAX_INLINE + 7).map(|_| g.sample_element(&mut rng)).collect();
        let _ = pool.encrypt_batch(&g, &key, &items);
        assert!(pool.item_cost_ns() > 0, "dispatched batch left EWMA cold");
        assert!(pool.dispatch_overhead_ns() > 0);
    }

    #[test]
    fn pool_decrypt_inverts() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(12);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..17).map(|_| g.sample_element(&mut rng)).collect();
        let pool = EncryptPool::with_workers(2);
        let enc = pool.encrypt_batch(&g, &key, &items);
        assert_eq!(pool.decrypt_batch(&g, &key, &enc), items);
    }

    #[test]
    fn pool_hash_encrypt_matches_pointwise() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(13);
        let key = g.gen_key(&mut rng);
        let values: Vec<Vec<u8>> = (0..9u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let pool = EncryptPool::with_workers(3);
        let out = pool.hash_encrypt_batch(&g, &key, &values);
        for (v, e) in values.iter().zip(&out) {
            assert_eq!(&g.hash_encrypt(&key, v), e);
        }
    }

    #[test]
    fn many_jobs_in_flight_preserve_order() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(14);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        let batches: Vec<Vec<UBig>> = (0..6)
            .map(|i| (0..(i * 3 + 1)).map(|_| g.sample_element(&mut rng)).collect())
            .collect();
        let pending: Vec<PendingBatch> = batches
            .iter()
            .map(|b| pool.submit_encrypt(&g, &key, b))
            .collect();
        for (b, p) in batches.iter().zip(pending) {
            assert_eq!(p.wait(), batch::encrypt_batch(&g, &key, b, 1));
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 6);
        assert_eq!(stats.items, batches.iter().map(|b| b.len() as u64).sum());
    }

    #[test]
    fn ready_batch_is_transparent() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(16);
        let items: Vec<UBig> = (0..5).map(|_| g.sample_element(&mut rng)).collect();
        let pending = PendingBatch::ready(items.clone());
        assert_eq!(pending.len(), 5);
        assert!(!pending.is_empty());
        assert_eq!(pending.wait(), items);
    }

    #[test]
    fn empty_batch_completes() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(15);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::new(2);
        let pending = pool.submit_encrypt(&g, &key, &[]);
        assert!(pending.is_empty());
        assert!(pending.wait().is_empty());
    }
}
