//! Persistent work-stealing encryption pool.
//!
//! §6.2 of the paper assumes "P processors that we can utilize in
//! parallel" when dividing its time estimates. [`crate::batch`] supplies
//! that `P` per call by spawning scoped threads; this module makes the
//! workers *persistent* so one pool, sized once per session, serves every
//! protocol round without re-paying thread spawn/join on each batch — the
//! structure the chunk-pipelined engines in `minshare-core` need, where
//! many small batches are in flight at once.
//!
//! Work distribution is by atomic sub-chunk claiming: every job is
//! broadcast to all workers, and each worker (plus the waiting caller)
//! repeatedly claims a small contiguous range with a `fetch_add` cursor.
//! Stragglers rebalance at sub-chunk granularity, which is the same
//! property a stealing deque buys, with nothing but channels and one
//! atomic. The caller *helps*: [`PendingBatch::wait`] runs the job on the
//! calling thread too, so a pool with zero workers still completes every
//! job (inline), and a pool on a loaded machine never deadlocks waiting
//! for a busy worker.
//!
//! Two guards keep the pool from losing to serial (as it measurably did
//! on a 1-core host):
//!
//! * [`EncryptPool::new`] clamps the worker count to `cores - 1` (the
//!   caller is the remaining party), so a 1-core host gets zero workers
//!   and every job runs inline — identical code path to serial.
//! * Batches below a *measured* hand-off threshold run inline even when
//!   workers exist: construction times one probe round-trip through the
//!   job channel, inline runs feed an EWMA of per-item encrypt cost, and
//!   the threshold is their ratio — a batch must outweigh the dispatch
//!   overhead before it is worth waking another thread.
//!
//! This file carries a WIRE01 exemption in the analyzer's taint
//! registry (`WIRE01_EXEMPT_FILES`): the `send` calls here are
//! crossbeam channel hand-offs to worker threads in the same process,
//! not network transmission. Conversely [`PendingBatch::wait`] is
//! registered encrypt-class — the pool runs nothing but scheme ops, so
//! its output is ciphertext. Keep both properties true if this module
//! grows.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use minshare_bignum::{FixedExponentPlan, UBig};
use parking_lot::Mutex;

use crate::batch::effective_threads;
use crate::commutative::CommutativeKey;
use crate::group::QrGroup;

/// Upper bound on the items a single cursor claim takes; keeps work items
/// small so stragglers rebalance even on short batches. Also the floor of
/// the inline hand-off threshold: anything one claim would cover is not
/// worth dispatching.
const MAX_CLAIM: usize = 16;

/// Ceiling of the measured inline threshold, so a mis-calibrated probe
/// (e.g. a descheduled worker inflating the round-trip) cannot disable
/// the pool for genuinely large batches.
const MAX_INLINE: usize = 1024;

/// Counters for observing pool behavior (benches and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted over the pool's lifetime.
    pub jobs: u64,
    /// Total items across all submitted jobs.
    pub items: u64,
    /// Jobs that ran inline on the caller (below threshold or no workers).
    pub inline_jobs: u64,
}

/// The operation a job applies to each of its items.
enum PoolTask {
    /// `f_e(x)` over group elements.
    Encrypt(Vec<UBig>),
    /// `f_e⁻¹(x)` over group elements.
    Decrypt(Vec<UBig>),
    /// `f_e(h(v))` over raw byte values.
    HashEncrypt(Vec<Vec<u8>>),
}

impl PoolTask {
    fn len(&self) -> usize {
        match self {
            PoolTask::Encrypt(v) | PoolTask::Decrypt(v) => v.len(),
            PoolTask::HashEncrypt(v) => v.len(),
        }
    }

    /// Applies the operation to `range` through the job's fixed-exponent
    /// plan (multi-lane within the claim), or `None` if the range is out
    /// of bounds (unreachable for cursor-claimed ranges).
    fn eval_range(
        &self,
        group: &QrGroup,
        plan: &FixedExponentPlan,
        start: usize,
        end: usize,
    ) -> Option<Vec<UBig>> {
        match self {
            PoolTask::Encrypt(v) | PoolTask::Decrypt(v) => Some(plan.pow_batch(v.get(start..end)?)),
            PoolTask::HashEncrypt(v) => {
                let hashes: Vec<UBig> = v
                    .get(start..end)?
                    .iter()
                    .map(|x| group.hash_to_group(x))
                    .collect();
                Some(plan.pow_batch(&hashes))
            }
        }
    }
}

/// What a broadcast job asks the workers to do.
enum JobWork {
    /// A batch of cipher operations under one fixed-exponent plan.
    Crypto {
        group: QrGroup,
        plan: Arc<FixedExponentPlan>,
        task: PoolTask,
    },
    /// Construction-time dispatch probe: the first claimer sends one
    /// empty marker so the pool can time a channel round-trip.
    Probe,
}

/// One in-flight batch: the work, a claim cursor, and the channel
/// results flow back on.
///
/// Holds a live fixed-exponent plan (equivalent to the key) for the
/// duration of the batch, so it is registered with the secret-hygiene
/// analyzer: no `Debug`, no structural equality.
struct PoolJob {
    work: JobWork,
    /// Next unclaimed item index; claimed in `chunk`-sized strides.
    cursor: AtomicUsize,
    /// Items per cursor claim.
    chunk: usize,
    results: Sender<(usize, Vec<UBig>)>,
}

impl PoolJob {
    /// Claims and evaluates sub-chunks until the job is exhausted. Called
    /// by every worker that receives the job and by the waiting caller.
    fn run(&self) {
        match &self.work {
            JobWork::Probe => {
                if self.cursor.fetch_add(1, Ordering::Relaxed) == 0 {
                    let _ = self.results.send((0, Vec::new()));
                }
            }
            JobWork::Crypto { group, plan, task } => {
                let total = task.len();
                loop {
                    let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
                    if start >= total {
                        return;
                    }
                    let end = start.saturating_add(self.chunk).min(total);
                    if let Some(out) = task.eval_range(group, plan, start, end) {
                        // A send error means the caller abandoned the batch;
                        // keep draining the cursor so the job finishes quietly.
                        let _ = self.results.send((start, out));
                    }
                }
            }
        }
    }

    fn total_items(&self) -> usize {
        match &self.work {
            JobWork::Probe => 0,
            JobWork::Crypto { task, .. } => task.len(),
        }
    }
}

/// Handle to an in-flight batch; redeem with [`PendingBatch::wait`].
pub struct PendingBatch {
    inner: PendingInner,
}

enum PendingInner {
    /// Results computed inline at submission (small batch or no workers).
    Ready(Vec<UBig>),
    /// Broadcast to the workers; the caller helps at `wait`.
    InFlight {
        job: Arc<PoolJob>,
        rx: Receiver<(usize, Vec<UBig>)>,
    },
}

impl PendingBatch {
    /// Wraps already-computed results, e.g. from a serial fallback path.
    /// `wait` returns them unchanged.
    pub fn ready(results: Vec<UBig>) -> Self {
        PendingBatch {
            inner: PendingInner::Ready(results),
        }
    }

    /// Number of items the batch will produce.
    pub fn len(&self) -> usize {
        match &self.inner {
            PendingInner::Ready(v) => v.len(),
            PendingInner::InFlight { job, .. } => job.total_items(),
        }
    }

    /// True if the batch holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until every item is processed and returns the outputs in
    /// input order. The calling thread helps with unclaimed sub-chunks
    /// first, so completion never depends on pool workers being free.
    pub fn wait(self) -> Vec<UBig> {
        let (job, rx) = match self.inner {
            PendingInner::Ready(v) => return v,
            PendingInner::InFlight { job, rx } => (job, rx),
        };
        let waited = minshare_trace::span("pool", "wait", false);
        job.run();
        let total = job.total_items();
        let mut parts: Vec<(usize, Vec<UBig>)> = Vec::new();
        let mut received = 0usize;
        while received < total {
            match rx.recv() {
                Ok((start, part)) => {
                    received += part.len();
                    parts.push((start, part));
                }
                // Unreachable while `job` (which owns a sender) is
                // alive; bail rather than spin if it ever happens.
                Err(_) => break,
            }
        }
        parts.sort_by_key(|(start, _)| *start);
        waited.finish(vec![minshare_trace::count("items", total as u64)]);
        parts.into_iter().flat_map(|(_, part)| part).collect()
    }
}

/// A persistent pool of encryption workers, sized once and shared across
/// protocol rounds. Cheap to share by reference; submission takes `&self`.
pub struct EncryptPool {
    /// One job-broadcast channel per worker.
    senders: Vec<Sender<Arc<PoolJob>>>,
    workers: Vec<JoinHandle<()>>,
    stats: Mutex<PoolStats>,
    /// Measured job-channel round-trip at construction (ns); 0 when the
    /// pool has no workers or the probe failed.
    dispatch_ns: u64,
    /// EWMA of per-item encrypt cost from inline runs (ns); 0 until the
    /// first nonempty inline batch calibrates it.
    item_ns: AtomicU64,
}

impl EncryptPool {
    /// Creates a pool with at most `threads` background workers, clamped
    /// to the host's available parallelism minus one (the submitting
    /// thread is the remaining party — it always helps in
    /// [`PendingBatch::wait`]). On a 1-core host this yields zero workers
    /// and every job runs inline, which measurably beats oversubscribing.
    /// `threads == 0` is valid: jobs then always run on the caller.
    pub fn new(threads: usize) -> Self {
        let workers = effective_threads(threads.saturating_add(1), usize::MAX).saturating_sub(1);
        Self::build(workers.min(threads))
    }

    /// Creates a pool with exactly `threads` workers, bypassing the core
    /// clamp. For tests and ablations that need the cross-thread path on
    /// hosts with too few cores to get it from [`EncryptPool::new`].
    pub fn with_workers(threads: usize) -> Self {
        Self::build(threads)
    }

    fn build(threads: usize) -> Self {
        let mut senders = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = unbounded::<Arc<PoolJob>>();
            let builder = std::thread::Builder::new().name(format!("encrypt-pool-{i}"));
            // A failed spawn degrades capacity, never correctness: the
            // caller-help in `wait` still completes every job.
            if let Ok(handle) = builder.spawn(move || {
                while let Ok(job) = rx.recv() {
                    job.run();
                }
            }) {
                senders.push(tx);
                workers.push(handle);
            }
        }
        let dispatch_ns = measure_dispatch(&senders);
        EncryptPool {
            senders,
            workers,
            stats: Mutex::new(PoolStats::default()),
            dispatch_ns,
            item_ns: AtomicU64::new(0),
        }
    }

    /// Number of live background workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The measured job-channel round-trip from construction, in
    /// nanoseconds (0 for a workerless pool).
    pub fn dispatch_overhead_ns(&self) -> u64 {
        self.dispatch_ns
    }

    /// Snapshot of lifetime submission counters.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock()
    }

    /// Batch size at or below which submission runs inline: the measured
    /// dispatch round-trip divided by the measured per-item cost, floored
    /// at one claim and capped so large batches always use the workers.
    fn inline_threshold(&self) -> usize {
        if self.senders.is_empty() {
            return usize::MAX;
        }
        let item = self.item_ns.load(Ordering::Relaxed);
        if item == 0 {
            return MAX_CLAIM;
        }
        ((self.dispatch_ns / item) as usize).clamp(MAX_CLAIM, MAX_INLINE)
    }

    /// Folds an inline run's per-item cost into the EWMA calibration.
    fn record_item_cost(&self, elapsed: Duration, items: usize) {
        if items == 0 {
            return;
        }
        let per = ((elapsed.as_nanos() / items as u128).min(u128::from(u64::MAX)) as u64).max(1);
        let old = self.item_ns.load(Ordering::Relaxed);
        let next = if old == 0 { per } else { (3 * old + per) / 4 };
        self.item_ns.store(next, Ordering::Relaxed);
    }

    fn submit(&self, group: &QrGroup, key: &CommutativeKey, task: PoolTask) -> PendingBatch {
        let total = task.len();
        let plan = match &task {
            PoolTask::Encrypt(_) | PoolTask::HashEncrypt(_) => key.enc_plan(group.mont_ctx()),
            PoolTask::Decrypt(_) => key.dec_plan(group.mont_ctx()),
        };
        let inline = total <= self.inline_threshold();
        {
            let mut stats = self.stats.lock();
            stats.jobs += 1;
            stats.items += total as u64;
            if inline {
                stats.inline_jobs += 1;
            }
        }
        // The inline decision feeds on the EWMA of measured per-item
        // cost, so the flag (and in principle the event count a sink
        // sees, if a caller branches on pool behaviour) is
        // timing-dependent — non-deterministic by construction.
        minshare_trace::emit("pool", "submit", false, || {
            vec![
                minshare_trace::count("items", total as u64),
                minshare_trace::flag("inline", inline),
            ]
        });
        if inline {
            let started = Instant::now();
            let out = task.eval_range(group, &plan, 0, total).unwrap_or_default();
            self.record_item_cost(started.elapsed(), total);
            return PendingBatch::ready(out);
        }
        // Small claims so stragglers rebalance; at least one claim per
        // worker-and-caller even on short batches.
        let parties = self.workers.len() + 1;
        let chunk = total.div_ceil(parties * 4).clamp(1, MAX_CLAIM);
        let (tx, rx) = unbounded();
        let job = Arc::new(PoolJob {
            work: JobWork::Crypto {
                group: group.clone(),
                plan,
                task,
            },
            cursor: AtomicUsize::new(0),
            chunk,
            results: tx,
        });
        for sender in &self.senders {
            let _ = sender.send(Arc::clone(&job));
        }
        PendingBatch {
            inner: PendingInner::InFlight { job, rx },
        }
    }

    /// Starts encrypting `items` with `key`; returns immediately.
    pub fn submit_encrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        items: &[UBig],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::Encrypt(items.to_vec()))
    }

    /// Starts decrypting `items` with `key`; returns immediately.
    pub fn submit_decrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        items: &[UBig],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::Decrypt(items.to_vec()))
    }

    /// Starts hash-then-encrypt (`f_e(h(v))`) over raw values.
    pub fn submit_hash_encrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        values: &[Vec<u8>],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::HashEncrypt(values.to_vec()))
    }

    /// Convenience: submit + wait. Drop-in for [`crate::batch::encrypt_batch`].
    pub fn encrypt_batch(&self, group: &QrGroup, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        self.submit_encrypt(group, key, items).wait()
    }

    /// Convenience: submit + wait for decryption.
    pub fn decrypt_batch(&self, group: &QrGroup, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        self.submit_decrypt(group, key, items).wait()
    }

    /// Convenience: submit + wait for hash-then-encrypt.
    pub fn hash_encrypt_batch(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        values: &[Vec<u8>],
    ) -> Vec<UBig> {
        self.submit_hash_encrypt(group, key, values).wait()
    }
}

/// Times one probe round-trip through a worker's job channel. Returns 0
/// when there is nothing to measure (no workers).
fn measure_dispatch(senders: &[Sender<Arc<PoolJob>>]) -> u64 {
    let Some(first) = senders.first() else {
        return 0;
    };
    let (tx, rx) = unbounded();
    let probe = Arc::new(PoolJob {
        work: JobWork::Probe,
        cursor: AtomicUsize::new(0),
        chunk: 1,
        results: tx,
    });
    let started = Instant::now();
    if first.send(probe).is_err() {
        return 0;
    }
    // A bounded wait: a wedged worker should degrade calibration, not
    // hang construction.
    let _ = rx.recv_timeout(Duration::from_millis(100));
    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

impl Drop for EncryptPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop; workers
        // finish any job already in hand first.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(0xba7c);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn pool_matches_serial_batch() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(11);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..41).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        for threads in [0usize, 1, 2, 4] {
            let pool = EncryptPool::new(threads);
            assert_eq!(pool.encrypt_batch(&g, &key, &items), serial, "t={threads}");
        }
    }

    #[test]
    fn unclamped_pool_matches_serial_batch() {
        // The cross-thread path, regardless of host core count.
        let g = group();
        let mut rng = StdRng::seed_from_u64(21);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..MAX_INLINE + 7).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        let pool = EncryptPool::with_workers(2);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.encrypt_batch(&g, &key, &items), serial);
    }

    #[test]
    fn worker_count_is_clamped_to_cores() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool = EncryptPool::new(64);
        assert!(
            pool.threads() <= cores.saturating_sub(1),
            "workers={} cores={cores}",
            pool.threads()
        );
        assert_eq!(EncryptPool::new(0).threads(), 0);
    }

    #[test]
    fn small_batches_run_inline_on_worker_pools() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(22);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        let items: Vec<UBig> = (0..MAX_CLAIM).map(|_| g.sample_element(&mut rng)).collect();
        let out = pool.encrypt_batch(&g, &key, &items);
        assert_eq!(out, batch::encrypt_batch(&g, &key, &items, 1));
        assert_eq!(pool.stats().inline_jobs, 1, "≤ MAX_CLAIM must not dispatch");
    }

    #[test]
    fn pool_decrypt_inverts() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(12);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..17).map(|_| g.sample_element(&mut rng)).collect();
        let pool = EncryptPool::with_workers(2);
        let enc = pool.encrypt_batch(&g, &key, &items);
        assert_eq!(pool.decrypt_batch(&g, &key, &enc), items);
    }

    #[test]
    fn pool_hash_encrypt_matches_pointwise() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(13);
        let key = g.gen_key(&mut rng);
        let values: Vec<Vec<u8>> = (0..9u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let pool = EncryptPool::with_workers(3);
        let out = pool.hash_encrypt_batch(&g, &key, &values);
        for (v, e) in values.iter().zip(&out) {
            assert_eq!(&g.hash_encrypt(&key, v), e);
        }
    }

    #[test]
    fn many_jobs_in_flight_preserve_order() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(14);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        let batches: Vec<Vec<UBig>> = (0..6)
            .map(|i| (0..(i * 3 + 1)).map(|_| g.sample_element(&mut rng)).collect())
            .collect();
        let pending: Vec<PendingBatch> = batches
            .iter()
            .map(|b| pool.submit_encrypt(&g, &key, b))
            .collect();
        for (b, p) in batches.iter().zip(pending) {
            assert_eq!(p.wait(), batch::encrypt_batch(&g, &key, b, 1));
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 6);
        assert_eq!(stats.items, batches.iter().map(|b| b.len() as u64).sum());
    }

    #[test]
    fn ready_batch_is_transparent() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(16);
        let items: Vec<UBig> = (0..5).map(|_| g.sample_element(&mut rng)).collect();
        let pending = PendingBatch::ready(items.clone());
        assert_eq!(pending.len(), 5);
        assert!(!pending.is_empty());
        assert_eq!(pending.wait(), items);
    }

    #[test]
    fn empty_batch_completes() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(15);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::new(2);
        let pending = pool.submit_encrypt(&g, &key, &[]);
        assert!(pending.is_empty());
        assert!(pending.wait().is_empty());
    }
}
