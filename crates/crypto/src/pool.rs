//! Persistent work-stealing encryption pool.
//!
//! §6.2 of the paper assumes "P processors that we can utilize in
//! parallel" when dividing its time estimates. [`crate::batch`] supplies
//! that `P` per call by spawning scoped threads; this module makes the
//! workers *persistent* so one pool, sized once per session, serves every
//! protocol round without re-paying thread spawn/join on each batch — the
//! structure the chunk-pipelined engines in `minshare-core` need, where
//! many small batches are in flight at once.
//!
//! Work distribution is by atomic sub-chunk claiming: every dispatched
//! job sits on a shared run queue, and each worker (plus the waiting
//! caller) repeatedly claims a contiguous range with a `fetch_add`
//! cursor. Claim sizes are *guided* (half the remaining share of the
//! claiming party, floored at [`MIN_CLAIM`]): the first parties to
//! arrive take large contiguous head chunks — so the submitting thread
//! does most of its help in one cache-friendly run instead of contending
//! per-item — while the geometric decay leaves [`MIN_CLAIM`]-sized
//! crumbs at the tail for straggler rebalancing, the same property a
//! stealing deque buys with nothing but one lock and one atomic. The
//! claim cursor and every other hot counter sit on their own cache line
//! ([`CachePadded`]) so claims from different threads never false-share.
//!
//! # Per-session fairness
//!
//! The daemon shares one pool across concurrent protocol sessions, so
//! worker time is scheduled by start-time fair queuing: every job is
//! tagged with a [`PoolSession`] (thread-local [`PoolSession::scope`]
//! binding; unscoped submissions fall to a default session), each
//! session carries a virtual time that advances by `items / weight`
//! whenever a pool worker serves it, and workers always pick the
//! runnable job whose session has the *lowest* virtual time, claiming at
//! most [`FAIR_QUANTUM`] items before re-picking. A million-element
//! equijoin therefore cannot starve a 64-item intersection: after one
//! quantum the big session's virtual time passes the small one's, and
//! the next quantum goes to the small session. The submitting caller
//! still helps its own job without a quantum cap — fairness governs the
//! shared workers, not the session's own thread — and per-session
//! claim counters ([`PoolSession::items_claimed`]) give tests an
//! exactly-once ledger.
//!
//! The caller *helps*: [`PendingBatch::wait`] runs the job on the calling
//! thread too, so a pool with zero workers still completes every job
//! (inline), and a pool on a loaded machine never deadlocks waiting for a
//! busy worker.
//!
//! Two measured guards keep the pool from losing to serial (as it
//! measurably did on a 1-core host):
//!
//! * [`EncryptPool::new`] clamps the worker count to `cores - 1` (the
//!   caller is the remaining party), so a 1-core host gets zero workers
//!   and every job runs inline — identical code path to serial.
//! * Batches below a *measured* hand-off threshold run inline even when
//!   workers exist. Construction times several probe round-trips through
//!   the job channel and takes their median (one descheduled worker no
//!   longer poisons the estimate); afterwards, every pooled job's first
//!   worker claim feeds the observed submit→claim latency back into a
//!   dispatch EWMA, and every evaluated claim (inline *and* pooled) feeds
//!   the per-item cost EWMA. The inline threshold is their ratio — a
//!   batch must outweigh the dispatch overhead before it is worth waking
//!   another thread — and it keeps auto-tuning as the workload shifts.
//!   [`PipelineConfig::calibrated`] in `minshare-core` reads both EWMAs
//!   to pick its chunk sizes from the same measurements.
//!
//! This file carries a WIRE01 exemption in the analyzer's taint
//! registry (`WIRE01_EXEMPT_FILES`): the `send` calls here are
//! crossbeam channel hand-offs to worker threads in the same process,
//! not network transmission. Conversely [`PendingBatch::wait`] is
//! registered encrypt-class — the pool runs nothing but scheme ops, so
//! its output is ciphertext. Keep both properties true if this module
//! grows.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use minshare_bignum::{FixedExponentPlan, UBig};

use crate::batch::effective_threads;
use crate::commutative::CommutativeKey;
use crate::group::QrGroup;

/// Smallest cursor claim: the tail granularity stragglers rebalance at,
/// and the floor of the inline hand-off threshold (anything one claim
/// would cover is not worth dispatching).
const MIN_CLAIM: usize = 16;

/// Ceiling of the measured inline threshold, so a mis-calibrated probe
/// (e.g. a descheduled worker inflating the round-trip) cannot disable
/// the pool for genuinely large batches.
const MAX_INLINE: usize = 1024;

/// Construction-time dispatch probe rounds; the first is a warm-up
/// (thread start-up, cold caches) and is discarded, the median of the
/// rest becomes the initial dispatch estimate.
const DISPATCH_PROBES: usize = 6;

/// Live dispatch samples above this are treated as scheduler noise (a
/// descheduled worker, not channel cost) and clipped before entering the
/// EWMA.
const DISPATCH_SAMPLE_CAP_NS: u64 = 50_000_000;

/// Most items a pool worker claims from one job before re-consulting the
/// fair scheduler. Small enough that a waiting small session is served
/// within one quantum of worker time; large enough that the per-quantum
/// lock acquisition is noise next to the modexp work it buys.
const FAIR_QUANTUM: usize = 64;

/// Virtual-time units charged per item for a weight-1 session. The scale
/// keeps integer division by larger weights from rounding every small
/// quantum to zero credit.
const VTIME_SCALE: u64 = 1024;

/// Pads a hot atomic to its own cache line (128 bytes covers the spatial
/// prefetcher pair on current x86 cores), so claim traffic on one counter
/// never invalidates a neighbour. Hand-rolled because this workspace
/// forbids `unsafe` and vendors no utility crates.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// EWMA fold: `next = (3·old + sample) / 4`, seeding on the first sample.
fn ewma_record(cell: &AtomicU64, sample: u64) {
    let sample = sample.max(1);
    let old = cell.load(Ordering::Relaxed);
    let next = if old == 0 { sample } else { (3 * old + sample) / 4 };
    cell.store(next, Ordering::Relaxed);
}

/// The pool's live calibration state, shared with every in-flight job so
/// pooled claims keep tuning the estimates (inline-only feedback went
/// stale as soon as the pool warmed up and stopped running inline).
#[derive(Debug, Default)]
struct PoolTuning {
    /// EWMA of submit→first-worker-claim latency (ns); seeded by the
    /// construction probe median. 0 only for a workerless pool.
    dispatch_ns: CachePadded<AtomicU64>,
    /// EWMA of per-item encrypt cost (ns), fed by inline runs and pooled
    /// claims alike; 0 until the first nonempty batch calibrates it.
    item_ns: CachePadded<AtomicU64>,
}

/// Lifetime submission counters, one padded atomic each (the stats lock
/// this replaces serialized every submit across threads).
#[derive(Debug, Default)]
struct PoolCounters {
    jobs: CachePadded<AtomicU64>,
    items: CachePadded<AtomicU64>,
    inline_jobs: CachePadded<AtomicU64>,
}

/// Counters for observing pool behavior (benches and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted over the pool's lifetime.
    pub jobs: u64,
    /// Total items across all submitted jobs.
    pub items: u64,
    /// Jobs that ran inline on the caller (below threshold or no workers).
    pub inline_jobs: u64,
}

/// Scheduling state of one protocol session sharing the pool: the fair
/// scheduler's virtual clock plus an exactly-once claim ledger. Pure
/// scheduling metadata — no key material lives here.
#[derive(Debug)]
struct SessionState {
    /// Stable id, for trace attribution (0 is the default session).
    id: u64,
    /// Relative share of worker time; virtual time advances at `1/weight`.
    weight: u32,
    /// Virtual time: `items · VTIME_SCALE / weight` accumulated over the
    /// worker quanta this session has been served. Workers pick the
    /// runnable job with the minimum.
    vtime: CachePadded<AtomicU64>,
    /// Items claimed on behalf of this session, across worker quanta,
    /// caller help, and inline runs — an exactly-once ledger.
    claimed: CachePadded<AtomicU64>,
}

thread_local! {
    /// Stack of `(pool id, session)` bindings installed by
    /// [`PoolSession::scope`]; submissions on this thread are attributed
    /// to the innermost binding whose pool id matches.
    static CURRENT_SESSION: std::cell::RefCell<Vec<(u64, Arc<SessionState>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A fair-scheduling identity on one [`EncryptPool`]. Create with
/// [`EncryptPool::session`], then wrap protocol work in
/// [`PoolSession::scope`]: every submission made on the calling thread
/// inside the closure is attributed to this session, with no change to
/// the submit signatures. Cloneable and `Send`, so a handle can outlive
/// the scope for accounting ([`PoolSession::items_claimed`]).
#[derive(Clone, Debug)]
pub struct PoolSession {
    pool_id: u64,
    state: Arc<SessionState>,
}

impl PoolSession {
    /// Runs `f` with this session installed as the calling thread's
    /// submission identity for its pool. Nests: the innermost matching
    /// scope wins, and the previous binding is restored on exit (also on
    /// panic — the restore lives in a drop guard).
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_SESSION.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        CURRENT_SESSION.with(|stack| {
            stack
                .borrow_mut()
                .push((self.pool_id, Arc::clone(&self.state)));
        });
        let _restore = Restore;
        f()
    }

    /// Stable session id (0 is the pool's default session).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The session's scheduling weight.
    pub fn weight(&self) -> u32 {
        self.state.weight
    }

    /// Total items evaluated on this session's behalf so far — the sum of
    /// worker quanta, caller help, and inline runs. With every claim
    /// accounted exactly once, this equals the session's submitted item
    /// count once all its batches have been waited on.
    pub fn items_claimed(&self) -> u64 {
        self.state.claimed.0.load(Ordering::Relaxed)
    }
}

/// The shared run queue workers schedule from: dispatched jobs plus the
/// global virtual clock. Lock poisoning is absorbed (`into_inner`) — the
/// state is a job list whose correctness lives in per-job atomic
/// cursors, so observing a poisoned snapshot is safe.
struct RunQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    /// High-water virtual time across sessions; newly created sessions
    /// start here so an idle period never banks scheduling credit.
    vclock: CachePadded<AtomicU64>,
}

#[derive(Default)]
struct QueueState {
    jobs: Vec<Arc<PoolJob>>,
    shutdown: bool,
}

impl RunQueue {
    fn new() -> Self {
        RunQueue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            vclock: CachePadded(AtomicU64::new(0)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a dispatched job and wakes every worker (a single job is
    /// claimable by all of them at once).
    fn push(&self, job: Arc<PoolJob>) {
        self.lock().jobs.push(job);
        self.ready.notify_all();
    }

    /// Jobs currently dispatched and not yet exhausted — the live queue
    /// depth the telemetry gauge reports. Telemetry-only: taken under
    /// the same lock as scheduling, so only read when tracing is on.
    fn depth(&self) -> usize {
        self.lock().jobs.len()
    }
}

/// One pool worker: repeatedly pick the runnable job whose session has
/// the minimum virtual time, serve one bounded quantum, charge the
/// session's clock, re-pick. The quantum cap is what makes the schedule
/// fair — no worker commits to a job for longer than [`FAIR_QUANTUM`]
/// items, so a newly arrived small session waits at most one quantum per
/// worker.
fn worker_loop(queue: &RunQueue) {
    loop {
        let job = {
            let mut state = queue.lock();
            loop {
                if state.shutdown {
                    return;
                }
                state.jobs.retain(|job| !job.exhausted());
                let pick = state
                    .jobs
                    .iter()
                    .min_by_key(|job| job.session.vtime.0.load(Ordering::Relaxed))
                    .cloned();
                if let Some(job) = pick {
                    break job;
                }
                state = queue.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        let served = job.run_quantum(FAIR_QUANTUM, true);
        if served > 0 {
            let credit =
                (served as u64).saturating_mul(VTIME_SCALE) / u64::from(job.session.weight.max(1));
            let after = job
                .session
                .vtime
                .0
                .fetch_add(credit, Ordering::Relaxed)
                .saturating_add(credit);
            queue.vclock.0.fetch_max(after, Ordering::Relaxed);
        }
    }
}

/// The operation a job applies to each of its items.
enum PoolTask {
    /// `f_e(x)` over group elements.
    Encrypt(Vec<UBig>),
    /// `f_e⁻¹(x)` over group elements.
    Decrypt(Vec<UBig>),
    /// `f_e(h(v))` over raw byte values.
    HashEncrypt(Vec<Vec<u8>>),
}

impl PoolTask {
    fn len(&self) -> usize {
        match self {
            PoolTask::Encrypt(v) | PoolTask::Decrypt(v) => v.len(),
            PoolTask::HashEncrypt(v) => v.len(),
        }
    }

    /// Applies the operation to `range` through the job's fixed-exponent
    /// plan (multi-lane within the claim), or `None` if the range is out
    /// of bounds (unreachable for cursor-claimed ranges).
    fn eval_range(
        &self,
        group: &QrGroup,
        plan: &FixedExponentPlan,
        start: usize,
        end: usize,
    ) -> Option<Vec<UBig>> {
        match self {
            PoolTask::Encrypt(v) | PoolTask::Decrypt(v) => Some(plan.pow_batch(v.get(start..end)?)),
            PoolTask::HashEncrypt(v) => {
                let hashes: Vec<UBig> = v
                    .get(start..end)?
                    .iter()
                    .map(|x| group.hash_to_group(x))
                    .collect();
                Some(plan.pow_batch(&hashes))
            }
        }
    }
}

/// What a broadcast job asks the workers to do.
enum JobWork {
    /// A batch of cipher operations under one fixed-exponent plan.
    Crypto {
        group: QrGroup,
        plan: Arc<FixedExponentPlan>,
        task: PoolTask,
    },
    /// Construction-time dispatch probe: the first claimer sends one
    /// empty marker so the pool can time a channel round-trip.
    Probe,
}

/// One in-flight batch: the work, a claim cursor, and the channel
/// results flow back on.
///
/// Holds a live fixed-exponent plan (equivalent to the key) for the
/// duration of the batch, so it is registered with the secret-hygiene
/// analyzer: no `Debug`, no structural equality.
struct PoolJob {
    work: JobWork,
    /// Next unclaimed item index; cache-line isolated so concurrent
    /// claims touch nothing else.
    cursor: CachePadded<AtomicUsize>,
    /// Workers + the helping caller: the denominator of guided claims.
    parties: usize,
    /// The session this job is billed to — its virtual time orders the
    /// job in the fair scheduler, its ledger counts the claims.
    session: Arc<SessionState>,
    /// When the job was dispatched; the first worker claim measures
    /// submit→claim latency against it.
    submitted: Instant,
    /// Latched by the first *worker* claim so exactly one dispatch-latency
    /// sample enters the EWMA per job.
    dispatch_seen: AtomicBool,
    /// Live calibration shared with the owning pool.
    tuning: Arc<PoolTuning>,
    results: Sender<(usize, Vec<UBig>)>,
}

impl PoolJob {
    /// True once every item has been claimed (a probe is exhausted after
    /// its single marker claim); the scheduler prunes exhausted jobs.
    fn exhausted(&self) -> bool {
        match &self.work {
            JobWork::Probe => self.cursor.0.load(Ordering::Relaxed) > 0,
            JobWork::Crypto { task, .. } => self.cursor.0.load(Ordering::Relaxed) >= task.len(),
        }
    }

    /// Claims and evaluates one contiguous sub-chunk of at most `cap`
    /// items; returns how many were evaluated (0 when the job is
    /// exhausted or the claim raced past the end). Guided claim sizing:
    /// each claim takes half the claimant's share of what remains, so
    /// early claims are large and contiguous and the tail degrades to
    /// [`MIN_CLAIM`] crumbs for rebalancing; workers additionally cap at
    /// [`FAIR_QUANTUM`] so one job never holds a worker hostage.
    fn run_quantum(&self, cap: usize, is_worker: bool) -> usize {
        match &self.work {
            JobWork::Probe => {
                if self.cursor.0.fetch_add(1, Ordering::Relaxed) == 0 {
                    let _ = self.results.send((0, Vec::new()));
                }
                0
            }
            JobWork::Crypto { group, plan, task } => {
                let total = task.len();
                let claimed = self.cursor.0.load(Ordering::Relaxed);
                if claimed >= total {
                    return 0;
                }
                // A stale `claimed` only skews the claim size, never
                // correctness: the fetch_add below is the sole authority
                // on who owns which range.
                let want = ((total - claimed) / (2 * self.parties))
                    .max(MIN_CLAIM)
                    .min(cap.max(1));
                let start = self.cursor.0.fetch_add(want, Ordering::Relaxed);
                if start >= total {
                    return 0;
                }
                if is_worker && !self.dispatch_seen.swap(true, Ordering::Relaxed) {
                    let lat =
                        self.submitted.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    ewma_record(&self.tuning.dispatch_ns.0, lat.min(DISPATCH_SAMPLE_CAP_NS));
                }
                let end = start.saturating_add(want).min(total);
                let eval_started = Instant::now();
                if let Some(out) = task.eval_range(group, plan, start, end) {
                    record_item_cost(&self.tuning, eval_started.elapsed(), end - start);
                    // A send error means the caller abandoned the batch;
                    // keep draining the cursor so the job finishes quietly.
                    let _ = self.results.send((start, out));
                }
                let served = end - start;
                self.session
                    .claimed
                    .0
                    .fetch_add(served as u64, Ordering::Relaxed);
                served
            }
        }
    }

    /// Caller help: runs the job to exhaustion with no quantum cap — the
    /// fair scheduler governs the shared workers, not the session's own
    /// thread, so the submitter keeps its large cache-friendly claims.
    fn help(&self) {
        while self.run_quantum(usize::MAX, false) > 0 {}
    }

    fn total_items(&self) -> usize {
        match &self.work {
            JobWork::Probe => 0,
            JobWork::Crypto { task, .. } => task.len(),
        }
    }
}

/// Folds a measured run's per-item cost into the EWMA calibration.
fn record_item_cost(tuning: &PoolTuning, elapsed: Duration, items: usize) {
    if items == 0 {
        return;
    }
    let per = (elapsed.as_nanos() / items as u128).min(u128::from(u64::MAX)) as u64;
    ewma_record(&tuning.item_ns.0, per);
}

/// Handle to an in-flight batch; redeem with [`PendingBatch::wait`].
pub struct PendingBatch {
    inner: PendingInner,
}

enum PendingInner {
    /// Results computed inline at submission (small batch or no workers).
    Ready(Vec<UBig>),
    /// Broadcast to the workers; the caller helps at `wait`.
    InFlight {
        job: Arc<PoolJob>,
        rx: Receiver<(usize, Vec<UBig>)>,
    },
}

impl PendingBatch {
    /// Wraps already-computed results, e.g. from a serial fallback path.
    /// `wait` returns them unchanged.
    pub fn ready(results: Vec<UBig>) -> Self {
        PendingBatch {
            inner: PendingInner::Ready(results),
        }
    }

    /// Number of items the batch will produce.
    pub fn len(&self) -> usize {
        match &self.inner {
            PendingInner::Ready(v) => v.len(),
            PendingInner::InFlight { job, .. } => job.total_items(),
        }
    }

    /// True if the batch holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until every item is processed and returns the outputs in
    /// input order. The calling thread helps with unclaimed sub-chunks
    /// first — its guided claims take contiguous ranges, not per-item
    /// nibbles — so completion never depends on pool workers being free.
    pub fn wait(self) -> Vec<UBig> {
        let (job, rx) = match self.inner {
            PendingInner::Ready(v) => return v,
            PendingInner::InFlight { job, rx } => (job, rx),
        };
        let waited = minshare_trace::span("pool", "wait", false);
        job.help();
        let total = job.total_items();
        let mut parts: Vec<(usize, Vec<UBig>)> = Vec::new();
        let mut received = 0usize;
        while received < total {
            match rx.recv() {
                Ok((start, part)) => {
                    received += part.len();
                    parts.push((start, part));
                }
                // Unreachable while `job` (which owns a sender) is
                // alive; bail rather than spin if it ever happens.
                Err(_) => break,
            }
        }
        parts.sort_by_key(|(start, _)| *start);
        waited.finish(vec![minshare_trace::count("items", total as u64)]);
        parts.into_iter().flat_map(|(_, part)| part).collect()
    }
}

/// A persistent pool of encryption workers, sized once and shared across
/// protocol rounds. Cheap to share by reference; submission takes `&self`.
pub struct EncryptPool {
    /// Distinguishes this pool's thread-local session bindings from any
    /// other pool's in the same process.
    pool_id: u64,
    /// The fair-scheduled run queue shared with every worker.
    queue: Arc<RunQueue>,
    workers: Vec<JoinHandle<()>>,
    counters: PoolCounters,
    /// Live dispatch/per-item estimates, shared with in-flight jobs.
    tuning: Arc<PoolTuning>,
    /// Where unscoped submissions are billed (session id 0, weight 1).
    default_session: Arc<SessionState>,
    /// Next [`EncryptPool::session`] id (0 is the default session).
    next_session: AtomicU64,
}

/// Process-wide pool id source, so sessions of different pools can never
/// cross-match through the thread-local binding stack.
static POOL_IDS: AtomicU64 = AtomicU64::new(1);

impl EncryptPool {
    /// Creates a pool with at most `threads` background workers, clamped
    /// to the host's available parallelism minus one (the submitting
    /// thread is the remaining party — it always helps in
    /// [`PendingBatch::wait`]). On a 1-core host this yields zero workers
    /// and every job runs inline, which measurably beats oversubscribing.
    /// `threads == 0` is valid: jobs then always run on the caller.
    pub fn new(threads: usize) -> Self {
        let workers = effective_threads(threads.saturating_add(1), usize::MAX).saturating_sub(1);
        Self::build(workers.min(threads))
    }

    /// Creates a pool with exactly `threads` workers, bypassing the core
    /// clamp. For tests and ablations that need the cross-thread path on
    /// hosts with too few cores to get it from [`EncryptPool::new`].
    pub fn with_workers(threads: usize) -> Self {
        Self::build(threads)
    }

    fn build(threads: usize) -> Self {
        let queue = Arc::new(RunQueue::new());
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let worker_queue = Arc::clone(&queue);
            let builder = std::thread::Builder::new().name(format!("encrypt-pool-{i}"));
            // A failed spawn degrades capacity, never correctness: the
            // caller-help in `wait` still completes every job.
            if let Ok(handle) = builder.spawn(move || worker_loop(&worker_queue)) {
                workers.push(handle);
            }
        }
        let tuning = Arc::new(PoolTuning::default());
        let default_session = Arc::new(SessionState {
            id: 0,
            weight: 1,
            vtime: CachePadded(AtomicU64::new(0)),
            claimed: CachePadded(AtomicU64::new(0)),
        });
        tuning.dispatch_ns.0.store(
            measure_dispatch(&queue, workers.len(), &tuning, &default_session),
            Ordering::Relaxed,
        );
        EncryptPool {
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            queue,
            workers,
            counters: PoolCounters::default(),
            tuning,
            default_session,
            next_session: AtomicU64::new(1),
        }
    }

    /// Creates a new fair-scheduling session on this pool. `weight`
    /// scales the session's share of worker time (clamped to ≥ 1); equal
    /// weights mean equal shares. The session starts at the pool's
    /// current virtual clock, so a long-idle session cannot bank credit
    /// and later monopolize the workers.
    pub fn session(&self, weight: u32) -> PoolSession {
        let state = Arc::new(SessionState {
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            weight: weight.max(1),
            vtime: CachePadded(AtomicU64::new(self.queue.vclock.0.load(Ordering::Relaxed))),
            claimed: CachePadded(AtomicU64::new(0)),
        });
        PoolSession {
            pool_id: self.pool_id,
            state,
        }
    }

    /// The session submissions on this thread are currently billed to:
    /// the innermost [`PoolSession::scope`] binding for this pool, or
    /// the default session.
    fn bound_session(&self) -> Arc<SessionState> {
        CURRENT_SESSION
            .with(|stack| {
                stack
                    .borrow()
                    .iter()
                    .rev()
                    .find(|(pool_id, _)| *pool_id == self.pool_id)
                    .map(|(_, state)| Arc::clone(state))
            })
            .unwrap_or_else(|| Arc::clone(&self.default_session))
    }

    /// Number of live background workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The current submit→first-claim dispatch estimate in nanoseconds:
    /// the construction probe median, refined by the EWMA of observed
    /// first-claim latencies on real jobs (0 for a workerless pool).
    pub fn dispatch_overhead_ns(&self) -> u64 {
        self.tuning.dispatch_ns.0.load(Ordering::Relaxed)
    }

    /// The current per-item cost estimate in nanoseconds (EWMA over
    /// inline runs and pooled claims; 0 until the first batch). The
    /// pipeline calibrator sizes its chunks from this.
    pub fn item_cost_ns(&self) -> u64 {
        self.tuning.item_ns.0.load(Ordering::Relaxed)
    }

    /// Snapshot of lifetime submission counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.counters.jobs.0.load(Ordering::Relaxed),
            items: self.counters.items.0.load(Ordering::Relaxed),
            inline_jobs: self.counters.inline_jobs.0.load(Ordering::Relaxed),
        }
    }

    /// Batch size at or below which submission runs inline: the measured
    /// dispatch latency divided by the measured per-item cost, floored
    /// at one claim and capped so large batches always use the workers.
    /// Both inputs are live EWMAs, so the threshold tracks the workload.
    fn inline_threshold(&self) -> usize {
        if self.workers.is_empty() {
            return usize::MAX;
        }
        let item = self.item_cost_ns();
        if item == 0 {
            return MIN_CLAIM;
        }
        ((self.dispatch_overhead_ns() / item) as usize).clamp(MIN_CLAIM, MAX_INLINE)
    }

    fn submit(&self, group: &QrGroup, key: &CommutativeKey, task: PoolTask) -> PendingBatch {
        let total = task.len();
        let plan = match &task {
            PoolTask::Encrypt(_) | PoolTask::HashEncrypt(_) => key.enc_plan(group.mont_ctx()),
            PoolTask::Decrypt(_) => key.dec_plan(group.mont_ctx()),
        };
        let session = self.bound_session();
        let inline = total <= self.inline_threshold();
        self.counters.jobs.0.fetch_add(1, Ordering::Relaxed);
        self.counters.items.0.fetch_add(total as u64, Ordering::Relaxed);
        if inline {
            self.counters.inline_jobs.0.fetch_add(1, Ordering::Relaxed);
        }
        // The inline decision feeds on the EWMA of measured per-item
        // cost, so the flag (and in principle the event count a sink
        // sees, if a caller branches on pool behaviour) is
        // timing-dependent — non-deterministic by construction.
        minshare_trace::emit("pool", "submit", false, || {
            vec![
                minshare_trace::count("items", total as u64),
                minshare_trace::count("session", session.id),
                minshare_trace::flag("inline", inline),
            ]
        });
        if inline {
            let started = Instant::now();
            let out = task.eval_range(group, &plan, 0, total).unwrap_or_default();
            record_item_cost(&self.tuning, started.elapsed(), total);
            // Inline runs still enter the session's exactly-once ledger.
            session.claimed.0.fetch_add(total as u64, Ordering::Relaxed);
            return PendingBatch::ready(out);
        }
        // Start-tag per SFQ: an idle session rejoins at the current
        // virtual clock instead of replaying its banked past.
        session
            .vtime
            .0
            .fetch_max(self.queue.vclock.0.load(Ordering::Relaxed), Ordering::Relaxed);
        let (tx, rx) = unbounded();
        let job = Arc::new(PoolJob {
            work: JobWork::Crypto {
                group: group.clone(),
                plan,
                task,
            },
            cursor: CachePadded(AtomicUsize::new(0)),
            parties: self.workers.len() + 1,
            session,
            submitted: Instant::now(),
            dispatch_seen: AtomicBool::new(false),
            tuning: Arc::clone(&self.tuning),
            results: tx,
        });
        // Enqueue through a queue-local: the job carries the key's
        // exponent plan, and pushing it via `self` would make the whole
        // pool handle read as key-holding to the analyzer's taint pass,
        // poisoning benign metadata (the session id traced above).
        let run_queue = &self.queue;
        run_queue.push(Arc::clone(&job));
        // Scheduling gauges for the live-telemetry registry: run-queue
        // depth and this session's SFQ virtual time (the fairness
        // signal — sessions with equal weights should show converging
        // vtimes under load). Values are read into benign locals first;
        // nothing key-derived appears inside the telemetry call.
        if minshare_trace::is_enabled() {
            let depth = run_queue.depth() as u64;
            let sid = job.session.id;
            let vtime = job.session.vtime.0.load(Ordering::Relaxed);
            minshare_trace::emit("pool", "queue", false, || {
                vec![minshare_trace::size("depth", depth)]
            });
            minshare_trace::emit("pool", "session_vtime", false, || {
                vec![
                    minshare_trace::count("session", sid),
                    minshare_trace::count("vtime", vtime),
                ]
            });
        }
        PendingBatch {
            inner: PendingInner::InFlight { job, rx },
        }
    }

    /// Starts encrypting `items` with `key`; returns immediately.
    pub fn submit_encrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        items: &[UBig],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::Encrypt(items.to_vec()))
    }

    /// Starts decrypting `items` with `key`; returns immediately.
    pub fn submit_decrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        items: &[UBig],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::Decrypt(items.to_vec()))
    }

    /// Starts hash-then-encrypt (`f_e(h(v))`) over raw values.
    pub fn submit_hash_encrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        values: &[Vec<u8>],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::HashEncrypt(values.to_vec()))
    }

    /// Convenience: submit + wait. Drop-in for [`crate::batch::encrypt_batch`].
    pub fn encrypt_batch(&self, group: &QrGroup, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        self.submit_encrypt(group, key, items).wait()
    }

    /// Convenience: submit + wait for decryption.
    pub fn decrypt_batch(&self, group: &QrGroup, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        self.submit_decrypt(group, key, items).wait()
    }

    /// Convenience: submit + wait for hash-then-encrypt.
    pub fn hash_encrypt_batch(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        values: &[Vec<u8>],
    ) -> Vec<UBig> {
        self.submit_hash_encrypt(group, key, values).wait()
    }
}

/// Measures the run-queue dispatch latency at construction:
/// [`DISPATCH_PROBES`] probe round-trips through the scheduler,
/// discarding the first (worker start-up) and taking the median of the
/// rest, so one descheduled round cannot poison the estimate the inline
/// threshold and pipeline calibration start from. Returns 0 when there
/// is nothing to measure (no workers).
fn measure_dispatch(
    queue: &Arc<RunQueue>,
    workers: usize,
    tuning: &Arc<PoolTuning>,
    session: &Arc<SessionState>,
) -> u64 {
    if workers == 0 {
        return 0;
    }
    let mut samples = Vec::with_capacity(DISPATCH_PROBES);
    for _ in 0..DISPATCH_PROBES {
        let (tx, rx) = unbounded();
        let probe = Arc::new(PoolJob {
            work: JobWork::Probe,
            cursor: CachePadded(AtomicUsize::new(0)),
            parties: workers + 1,
            session: Arc::clone(session),
            submitted: Instant::now(),
            dispatch_seen: AtomicBool::new(false),
            tuning: Arc::clone(tuning),
            results: tx,
        });
        let started = Instant::now();
        queue.push(probe);
        // A bounded wait: a wedged worker should degrade calibration,
        // not hang construction.
        let _ = rx.recv_timeout(Duration::from_millis(100));
        samples.push(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    // Drop the warm-up round, then take the median.
    samples.remove(0);
    samples.sort_unstable();
    samples.get(samples.len() / 2).copied().unwrap_or(0)
}

impl Drop for EncryptPool {
    fn drop(&mut self) {
        // Raising the shutdown flag ends each worker's scheduling loop;
        // a worker mid-quantum finishes that claim first. Jobs still
        // unclaimed complete through caller help in `PendingBatch::wait`.
        self.queue.lock().shutdown = true;
        self.queue.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(0xba7c);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn pool_matches_serial_batch() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(11);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..41).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        for threads in [0usize, 1, 2, 4] {
            let pool = EncryptPool::new(threads);
            assert_eq!(pool.encrypt_batch(&g, &key, &items), serial, "t={threads}");
        }
    }

    #[test]
    fn unclamped_pool_matches_serial_batch() {
        // The cross-thread path, regardless of host core count.
        let g = group();
        let mut rng = StdRng::seed_from_u64(21);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..MAX_INLINE + 7).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        let pool = EncryptPool::with_workers(2);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.encrypt_batch(&g, &key, &items), serial);
    }

    #[test]
    fn stress_pool_matches_serial_at_every_thread_count() {
        // The guided-claiming scheme must never change results: every
        // thread count, repeated rounds (so the EWMAs move and the inline
        // threshold shifts mid-test), exact equality with serial.
        let g = group();
        let mut rng = StdRng::seed_from_u64(31);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..257).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        for threads in [0usize, 1, 2, 3, 4, 8] {
            let pool = EncryptPool::with_workers(threads);
            for round in 0..3 {
                assert_eq!(
                    pool.encrypt_batch(&g, &key, &items),
                    serial,
                    "t={threads} round={round}"
                );
            }
            let stats = pool.stats();
            assert_eq!(stats.jobs, 3);
            assert_eq!(stats.items, 3 * items.len() as u64);
        }
    }

    #[test]
    fn guided_claims_cover_exactly_once() {
        // Claim-ledger property: across many shapes, the concatenated
        // sorted parts must reconstruct the whole input — no item done
        // twice, none skipped — even when claims race.
        let g = group();
        let mut rng = StdRng::seed_from_u64(32);
        let key = g.gen_key(&mut rng);
        for count in [MIN_CLAIM + 1, 63, 100, 255] {
            let items: Vec<UBig> = (0..count).map(|_| g.sample_element(&mut rng)).collect();
            let serial = batch::encrypt_batch(&g, &key, &items, 1);
            let pool = EncryptPool::with_workers(3);
            let out = pool.encrypt_batch(&g, &key, &items);
            assert_eq!(out.len(), items.len(), "count={count}");
            assert_eq!(out, serial, "count={count}");
        }
    }

    #[test]
    fn worker_count_is_clamped_to_cores() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool = EncryptPool::new(64);
        assert!(
            pool.threads() <= cores.saturating_sub(1),
            "workers={} cores={cores}",
            pool.threads()
        );
        assert_eq!(EncryptPool::new(0).threads(), 0);
    }

    #[test]
    fn small_batches_run_inline_on_worker_pools() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(22);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        let items: Vec<UBig> = (0..MIN_CLAIM).map(|_| g.sample_element(&mut rng)).collect();
        let out = pool.encrypt_batch(&g, &key, &items);
        assert_eq!(out, batch::encrypt_batch(&g, &key, &items, 1));
        assert_eq!(pool.stats().inline_jobs, 1, "≤ MIN_CLAIM must not dispatch");
    }

    #[test]
    fn pooled_jobs_feed_the_item_ewma() {
        // The per-item EWMA must calibrate from dispatched jobs too, not
        // only inline runs — otherwise the threshold goes stale the
        // moment the pool warms up.
        let g = group();
        let mut rng = StdRng::seed_from_u64(23);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        let items: Vec<UBig> = (0..MAX_INLINE + 7).map(|_| g.sample_element(&mut rng)).collect();
        let _ = pool.encrypt_batch(&g, &key, &items);
        assert!(pool.item_cost_ns() > 0, "dispatched batch left EWMA cold");
        assert!(pool.dispatch_overhead_ns() > 0);
    }

    #[test]
    fn pool_decrypt_inverts() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(12);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..17).map(|_| g.sample_element(&mut rng)).collect();
        let pool = EncryptPool::with_workers(2);
        let enc = pool.encrypt_batch(&g, &key, &items);
        assert_eq!(pool.decrypt_batch(&g, &key, &enc), items);
    }

    #[test]
    fn pool_hash_encrypt_matches_pointwise() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(13);
        let key = g.gen_key(&mut rng);
        let values: Vec<Vec<u8>> = (0..9u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let pool = EncryptPool::with_workers(3);
        let out = pool.hash_encrypt_batch(&g, &key, &values);
        for (v, e) in values.iter().zip(&out) {
            assert_eq!(&g.hash_encrypt(&key, v), e);
        }
    }

    #[test]
    fn many_jobs_in_flight_preserve_order() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(14);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        let batches: Vec<Vec<UBig>> = (0..6)
            .map(|i| (0..(i * 3 + 1)).map(|_| g.sample_element(&mut rng)).collect())
            .collect();
        let pending: Vec<PendingBatch> = batches
            .iter()
            .map(|b| pool.submit_encrypt(&g, &key, b))
            .collect();
        for (b, p) in batches.iter().zip(pending) {
            assert_eq!(p.wait(), batch::encrypt_batch(&g, &key, b, 1));
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 6);
        assert_eq!(stats.items, batches.iter().map(|b| b.len() as u64).sum());
    }

    #[test]
    fn ready_batch_is_transparent() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(16);
        let items: Vec<UBig> = (0..5).map(|_| g.sample_element(&mut rng)).collect();
        let pending = PendingBatch::ready(items.clone());
        assert_eq!(pending.len(), 5);
        assert!(!pending.is_empty());
        assert_eq!(pending.wait(), items);
    }

    /// The headline fairness property from the daemon issue: one 64k-item
    /// session sharing the pool with eight 64-item sessions. Under the
    /// old run-to-exhaustion broadcast, every worker chewed the large job
    /// first; under SFQ every small session is served within a quantum.
    /// Every small session must complete before the large one, and the
    /// per-session claim ledgers must account for every item exactly once.
    #[test]
    fn small_sessions_are_not_starved_by_a_large_one() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(41);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(2);
        // Force the 64-item jobs onto the workers: pin the calibration to
        // "dispatch is free, items are expensive" so the inline threshold
        // clamps to MIN_CLAIM (< 64). The EWMAs drift back toward reality
        // as the test runs, which is harmless — a small job that slips
        // inline completes early trivially and keeps its ledger exact.
        pool.tuning.dispatch_ns.0.store(1, Ordering::Relaxed);
        pool.tuning.item_ns.0.store(1_000_000, Ordering::Relaxed);

        let large_items: Vec<UBig> = (0..65_536).map(|_| g.sample_element(&mut rng)).collect();
        let small_batches: Vec<Vec<UBig>> = (0..8)
            .map(|_| (0..64).map(|_| g.sample_element(&mut rng)).collect())
            .collect();
        let large_session = pool.session(1);
        let small_sessions: Vec<PoolSession> = (0..8).map(|_| pool.session(1)).collect();

        // Submit the large job FIRST so a FIFO scheduler would bury the
        // small sessions behind 64k items, then dispatch the smalls.
        let pending_large = large_session.scope(|| pool.submit_encrypt(&g, &key, &large_items));
        let pending_small: Vec<PendingBatch> = small_batches
            .iter()
            .zip(&small_sessions)
            .map(|(items, session)| session.scope(|| pool.submit_encrypt(&g, &key, items)))
            .collect();

        // The caller helps only its own (large) session, so every small
        // item below must be served by the pool workers.
        let large_out = pending_large.wait();
        assert_eq!(large_out.len(), large_items.len());

        // Starvation check: by the time the large session completes, the
        // workers must already have fully served every small session —
        // under SFQ the smalls win the virtual-time comparison within one
        // quantum. The grace poll below only absorbs a descheduled worker
        // finishing its final small chunk; it is two orders of magnitude
        // shorter than the large job's runtime, so the old
        // run-to-exhaustion schedule (workers pinned to the large job
        // until its last claim) still fails it.
        let grace = Instant::now();
        for (i, session) in small_sessions.iter().enumerate() {
            while session.items_claimed() < 64 && grace.elapsed() < Duration::from_millis(100) {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(
                session.items_claimed(),
                64,
                "small session {i} still starved when the large session finished"
            );
        }

        // Exactly-once ledger + correctness of the small results.
        for (items, pending) in small_batches.iter().zip(pending_small) {
            assert_eq!(pending.wait(), batch::encrypt_batch(&g, &key, items, 1));
        }
        assert_eq!(large_session.items_claimed(), 65_536);
        for (i, session) in small_sessions.iter().enumerate() {
            assert_eq!(session.items_claimed(), 64, "session {i} ledger");
        }
    }

    #[test]
    fn session_scope_attributes_claims_exactly_once() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(42);
        let key = g.gen_key(&mut rng);
        // Workerless pool: every job runs inline, so attribution is
        // deterministic and exercises the inline arm of the ledger.
        let pool = EncryptPool::with_workers(0);
        let outer = pool.session(1);
        let inner = pool.session(3);
        assert_eq!(inner.weight(), 3);
        assert_ne!(outer.id(), inner.id());

        let items = |n: usize| -> Vec<UBig> {
            let mut r = StdRng::seed_from_u64(n as u64);
            (0..n).map(|_| g.sample_element(&mut r)).collect()
        };
        outer.scope(|| {
            let _ = pool.encrypt_batch(&g, &key, &items(3));
            // The innermost binding wins while it is in scope...
            inner.scope(|| {
                let _ = pool.encrypt_batch(&g, &key, &items(5));
            });
            // ...and the outer binding is restored afterwards.
            let _ = pool.encrypt_batch(&g, &key, &items(7));
        });
        // Unscoped submissions bill the pool's default session.
        let _ = pool.encrypt_batch(&g, &key, &items(2));

        assert_eq!(outer.items_claimed(), 10);
        assert_eq!(inner.items_claimed(), 5);
        assert_eq!(pool.default_session.claimed.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn foreign_pool_scopes_do_not_capture_submissions() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(43);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::with_workers(0);
        let other = EncryptPool::with_workers(0);
        let foreign = other.session(1);
        let items: Vec<UBig> = (0..4).map(|_| g.sample_element(&mut rng)).collect();
        // A scope bound to a different pool must not claim this pool's
        // submissions; they fall through to the default session.
        foreign.scope(|| {
            let _ = pool.encrypt_batch(&g, &key, &items);
        });
        assert_eq!(foreign.items_claimed(), 0);
        assert_eq!(pool.default_session.claimed.0.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn empty_batch_completes() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(15);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::new(2);
        let pending = pool.submit_encrypt(&g, &key, &[]);
        assert!(pending.is_empty());
        assert!(pending.wait().is_empty());
    }
}
