//! Persistent work-stealing encryption pool.
//!
//! §6.2 of the paper assumes "P processors that we can utilize in
//! parallel" when dividing its time estimates. [`crate::batch`] supplies
//! that `P` per call by spawning scoped threads; this module makes the
//! workers *persistent* so one pool, sized once per session, serves every
//! protocol round without re-paying thread spawn/join on each batch — the
//! structure the chunk-pipelined engines in `minshare-core` need, where
//! many small batches are in flight at once.
//!
//! Work distribution is by atomic sub-chunk claiming: every job is
//! broadcast to all workers, and each worker (plus the waiting caller)
//! repeatedly claims a small contiguous range with a `fetch_add` cursor.
//! Stragglers rebalance at sub-chunk granularity, which is the same
//! property a stealing deque buys, with nothing but channels and one
//! atomic. The caller *helps*: [`PendingBatch::wait`] runs the job on the
//! calling thread too, so a pool with zero workers still completes every
//! job (inline), and a pool on a loaded machine never deadlocks waiting
//! for a busy worker.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use minshare_bignum::UBig;
use parking_lot::Mutex;

use crate::commutative::CommutativeKey;
use crate::group::QrGroup;

/// Upper bound on the items a single cursor claim takes; keeps work items
/// small so stragglers rebalance even on short batches.
const MAX_CLAIM: usize = 16;

/// Counters for observing pool behavior (benches and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted over the pool's lifetime.
    pub jobs: u64,
    /// Total items across all submitted jobs.
    pub items: u64,
}

/// The operation a job applies to each of its items.
enum PoolTask {
    /// `f_e(x)` over group elements.
    Encrypt(Vec<UBig>),
    /// `f_e⁻¹(x)` over group elements.
    Decrypt(Vec<UBig>),
    /// `f_e(h(v))` over raw byte values.
    HashEncrypt(Vec<Vec<u8>>),
}

impl PoolTask {
    fn len(&self) -> usize {
        match self {
            PoolTask::Encrypt(v) | PoolTask::Decrypt(v) => v.len(),
            PoolTask::HashEncrypt(v) => v.len(),
        }
    }

    /// Applies the operation to `range`, or `None` if the range is out of
    /// bounds (unreachable for cursor-claimed ranges).
    fn eval_range(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        start: usize,
        end: usize,
    ) -> Option<Vec<UBig>> {
        match self {
            PoolTask::Encrypt(v) => Some(
                v.get(start..end)?
                    .iter()
                    .map(|x| group.encrypt(key, x))
                    .collect(),
            ),
            PoolTask::Decrypt(v) => Some(
                v.get(start..end)?
                    .iter()
                    .map(|x| group.decrypt(key, x))
                    .collect(),
            ),
            PoolTask::HashEncrypt(v) => Some(
                v.get(start..end)?
                    .iter()
                    .map(|x| group.hash_encrypt(key, x))
                    .collect(),
            ),
        }
    }
}

/// One in-flight batch: owned copies of the group, key, and inputs, a
/// claim cursor, and the channel results flow back on.
///
/// Holds a live commutative key for the duration of the batch, so it is
/// registered with the secret-hygiene analyzer: no `Debug`, no
/// structural equality.
struct PoolJob {
    group: QrGroup,
    key: CommutativeKey,
    task: PoolTask,
    /// Next unclaimed item index; claimed in `chunk`-sized strides.
    cursor: AtomicUsize,
    /// Items per cursor claim.
    chunk: usize,
    results: Sender<(usize, Vec<UBig>)>,
}

impl PoolJob {
    /// Claims and evaluates sub-chunks until the job is exhausted. Called
    /// by every worker that receives the job and by the waiting caller.
    fn run(&self) {
        let total = self.task.len();
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= total {
                return;
            }
            let end = start.saturating_add(self.chunk).min(total);
            if let Some(out) = self.task.eval_range(&self.group, &self.key, start, end) {
                // A send error means the caller abandoned the batch;
                // keep draining the cursor so the job finishes quietly.
                let _ = self.results.send((start, out));
            }
        }
    }
}

/// Handle to an in-flight batch; redeem with [`PendingBatch::wait`].
pub struct PendingBatch {
    job: Arc<PoolJob>,
    rx: Receiver<(usize, Vec<UBig>)>,
}

impl PendingBatch {
    /// Number of items the batch will produce.
    pub fn len(&self) -> usize {
        self.job.task.len()
    }

    /// True if the batch holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until every item is processed and returns the outputs in
    /// input order. The calling thread helps with unclaimed sub-chunks
    /// first, so completion never depends on pool workers being free.
    pub fn wait(self) -> Vec<UBig> {
        self.job.run();
        let total = self.job.task.len();
        let mut parts: Vec<(usize, Vec<UBig>)> = Vec::new();
        let mut received = 0usize;
        while received < total {
            match self.rx.recv() {
                Ok((start, part)) => {
                    received += part.len();
                    parts.push((start, part));
                }
                // Unreachable while `self.job` (which owns a sender) is
                // alive; bail rather than spin if it ever happens.
                Err(_) => break,
            }
        }
        parts.sort_by_key(|(start, _)| *start);
        parts.into_iter().flat_map(|(_, part)| part).collect()
    }
}

/// A persistent pool of encryption workers, sized once and shared across
/// protocol rounds. Cheap to share by reference; submission takes `&self`.
pub struct EncryptPool {
    /// One job-broadcast channel per worker.
    senders: Vec<Sender<Arc<PoolJob>>>,
    workers: Vec<JoinHandle<()>>,
    stats: Mutex<PoolStats>,
}

impl EncryptPool {
    /// Creates a pool with `threads` background workers. `threads == 0`
    /// is valid: jobs then run entirely on the caller during
    /// [`PendingBatch::wait`].
    pub fn new(threads: usize) -> Self {
        let mut senders = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = unbounded::<Arc<PoolJob>>();
            let builder = std::thread::Builder::new().name(format!("encrypt-pool-{i}"));
            // A failed spawn degrades capacity, never correctness: the
            // caller-help in `wait` still completes every job.
            if let Ok(handle) = builder.spawn(move || {
                while let Ok(job) = rx.recv() {
                    job.run();
                }
            }) {
                senders.push(tx);
                workers.push(handle);
            }
        }
        EncryptPool {
            senders,
            workers,
            stats: Mutex::new(PoolStats::default()),
        }
    }

    /// Number of live background workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of lifetime submission counters.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock()
    }

    fn submit(&self, group: &QrGroup, key: &CommutativeKey, task: PoolTask) -> PendingBatch {
        let total = task.len();
        // Small claims so stragglers rebalance; at least one claim per
        // worker-and-caller even on short batches.
        let parties = self.workers.len() + 1;
        let chunk = total.div_ceil(parties * 4).clamp(1, MAX_CLAIM);
        let (tx, rx) = unbounded();
        let job = Arc::new(PoolJob {
            group: group.clone(),
            key: key.clone(),
            task,
            cursor: AtomicUsize::new(0),
            chunk,
            results: tx,
        });
        {
            let mut stats = self.stats.lock();
            stats.jobs += 1;
            stats.items += total as u64;
        }
        for sender in &self.senders {
            let _ = sender.send(Arc::clone(&job));
        }
        PendingBatch { job, rx }
    }

    /// Starts encrypting `items` with `key`; returns immediately.
    pub fn submit_encrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        items: &[UBig],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::Encrypt(items.to_vec()))
    }

    /// Starts decrypting `items` with `key`; returns immediately.
    pub fn submit_decrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        items: &[UBig],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::Decrypt(items.to_vec()))
    }

    /// Starts hash-then-encrypt (`f_e(h(v))`) over raw values.
    pub fn submit_hash_encrypt(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        values: &[Vec<u8>],
    ) -> PendingBatch {
        self.submit(group, key, PoolTask::HashEncrypt(values.to_vec()))
    }

    /// Convenience: submit + wait. Drop-in for [`crate::batch::encrypt_batch`].
    pub fn encrypt_batch(&self, group: &QrGroup, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        self.submit_encrypt(group, key, items).wait()
    }

    /// Convenience: submit + wait for decryption.
    pub fn decrypt_batch(&self, group: &QrGroup, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        self.submit_decrypt(group, key, items).wait()
    }

    /// Convenience: submit + wait for hash-then-encrypt.
    pub fn hash_encrypt_batch(
        &self,
        group: &QrGroup,
        key: &CommutativeKey,
        values: &[Vec<u8>],
    ) -> Vec<UBig> {
        self.submit_hash_encrypt(group, key, values).wait()
    }
}

impl Drop for EncryptPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop; workers
        // finish any job already in hand first.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(0xba7c);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn pool_matches_serial_batch() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(11);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..41).map(|_| g.sample_element(&mut rng)).collect();
        let serial = batch::encrypt_batch(&g, &key, &items, 1);
        for threads in [0usize, 1, 2, 4] {
            let pool = EncryptPool::new(threads);
            assert_eq!(pool.encrypt_batch(&g, &key, &items), serial, "t={threads}");
        }
    }

    #[test]
    fn pool_decrypt_inverts() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(12);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..17).map(|_| g.sample_element(&mut rng)).collect();
        let pool = EncryptPool::new(2);
        let enc = pool.encrypt_batch(&g, &key, &items);
        assert_eq!(pool.decrypt_batch(&g, &key, &enc), items);
    }

    #[test]
    fn pool_hash_encrypt_matches_pointwise() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(13);
        let key = g.gen_key(&mut rng);
        let values: Vec<Vec<u8>> = (0..9u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let pool = EncryptPool::new(3);
        let out = pool.hash_encrypt_batch(&g, &key, &values);
        for (v, e) in values.iter().zip(&out) {
            assert_eq!(&g.hash_encrypt(&key, v), e);
        }
    }

    #[test]
    fn many_jobs_in_flight_preserve_order() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(14);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::new(2);
        let batches: Vec<Vec<UBig>> = (0..6)
            .map(|i| (0..(i * 3 + 1)).map(|_| g.sample_element(&mut rng)).collect())
            .collect();
        let pending: Vec<PendingBatch> = batches
            .iter()
            .map(|b| pool.submit_encrypt(&g, &key, b))
            .collect();
        for (b, p) in batches.iter().zip(pending) {
            assert_eq!(p.wait(), batch::encrypt_batch(&g, &key, b, 1));
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 6);
        assert_eq!(stats.items, batches.iter().map(|b| b.len() as u64).sum());
    }

    #[test]
    fn empty_batch_completes() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(15);
        let key = g.gen_key(&mut rng);
        let pool = EncryptPool::new(2);
        let pending = pool.submit_encrypt(&g, &key, &[]);
        assert!(pending.is_empty());
        assert!(pending.wait().is_empty());
    }
}
