//! Per-key caches of fixed-exponent encryption plans.
//!
//! A commutative key is used with one fixed exponent per direction for
//! thousands of values (§6.1 charges `Ce·(|VS| + 2|VR|)` exponentiations
//! per protocol run, all under the same key). Caching the
//! [`FixedExponentPlan`] — the sliding-window recoding plus a handle to
//! the Montgomery constants — inside the key amortizes the per-exponent
//! setup across every batch, chunk, and pool claim of a run.
//!
//! The plan encodes the exponent (its window schedule is a deterministic
//! function of the bits), so the cache is secret material exactly like
//! the key that owns it: `FixedExponentPlan` zeroizes its schedule on
//! drop and is registered with the secret-hygiene analyzer.

use std::sync::{Arc, OnceLock};

use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::{FixedExponentPlan, UBig};

/// Lazily-built encrypt/decrypt plan pair embedded in a key.
///
/// Cloning a key clones the cache by sharing the already-built plans
/// (`Arc`), so a key cloned into a pool job reuses its owner's recoding.
pub(crate) struct PlanCachePair {
    enc: OnceLock<Arc<FixedExponentPlan>>,
    dec: OnceLock<Arc<FixedExponentPlan>>,
}

impl PlanCachePair {
    /// Empty cache; plans are built on first use.
    pub(crate) const fn new() -> Self {
        PlanCachePair {
            enc: OnceLock::new(),
            dec: OnceLock::new(),
        }
    }

    /// The cached encryption-direction plan for `exponent` under `ctx`,
    /// building it on first call.
    pub(crate) fn enc_plan(
        &self,
        ctx: &Arc<MontgomeryCtx>,
        exponent: &UBig,
    ) -> Arc<FixedExponentPlan> {
        plan_for(&self.enc, ctx, exponent)
    }

    /// The cached decryption-direction plan for `exponent` under `ctx`.
    pub(crate) fn dec_plan(
        &self,
        ctx: &Arc<MontgomeryCtx>,
        exponent: &UBig,
    ) -> Arc<FixedExponentPlan> {
        plan_for(&self.dec, ctx, exponent)
    }
}

impl Clone for PlanCachePair {
    fn clone(&self) -> Self {
        let pair = PlanCachePair::new();
        if let Some(plan) = self.enc.get() {
            let _ = pair.enc.set(Arc::clone(plan));
        }
        if let Some(plan) = self.dec.get() {
            let _ = pair.dec.set(Arc::clone(plan));
        }
        pair
    }
}

/// Serves the cached plan when it matches `ctx`'s modulus; a key used
/// against a *different* group (possible in tests and ablations) gets a
/// fresh uncached plan rather than a wrong one.
fn plan_for(
    cell: &OnceLock<Arc<FixedExponentPlan>>,
    ctx: &Arc<MontgomeryCtx>,
    exponent: &UBig,
) -> Arc<FixedExponentPlan> {
    // Which thread populates the cell first depends on scheduling when a
    // key is shared across pool workers, so hit/build classification is
    // not seed-deterministic.
    let hit = cell.get().is_some();
    minshare_trace::emit(
        "plan_cache",
        if hit { "hit" } else { "build" },
        false,
        Vec::new,
    );
    let plan = cell.get_or_init(|| Arc::new(FixedExponentPlan::new(Arc::clone(ctx), exponent)));
    if plan.modulus() == ctx.modulus() {
        Arc::clone(plan)
    } else {
        minshare_trace::emit("plan_cache", "modulus_mismatch", false, Vec::new);
        Arc::new(FixedExponentPlan::new(Arc::clone(ctx), exponent))
    }
}
