//! Parallel batch encryption.
//!
//! §6.2 of the paper: *"Encrypting the set of values is trivially
//! parallelizable in all three protocols. We assume that we have P
//! processors that we can utilize in parallel."* This module supplies
//! that `P`: a data-parallel map over the commutative cipher using scoped
//! threads. The ablation bench (`ablation/parallel_encrypt`) measures the
//! speedup curve the paper's estimates divide by.
//!
//! The requested thread count is clamped to the host's available
//! parallelism — asking for 8 threads on a 1-core box used to *lose* to
//! serial (thread spawn plus contention with no extra execution
//! resources). Each worker processes its contiguous slice through the
//! key's cached fixed-exponent plan and the multi-lane kernel, so the
//! serial path is itself the optimized path.

use minshare_bignum::UBig;

use crate::commutative::CommutativeKey;
use crate::group::QrGroup;

/// Encrypts every element with `key` using up to `threads` worker
/// threads (clamped to the host's cores). `threads == 0` or `1` runs
/// inline. Order is preserved.
pub fn encrypt_batch(
    group: &QrGroup,
    key: &CommutativeKey,
    items: &[UBig],
    threads: usize,
) -> Vec<UBig> {
    let plan = key.enc_plan(group.mont_ctx());
    map_chunks(items, threads, |chunk| plan.pow_batch(chunk))
}

/// Decrypts every element with `key`, in parallel. Order is preserved.
pub fn decrypt_batch(
    group: &QrGroup,
    key: &CommutativeKey,
    items: &[UBig],
    threads: usize,
) -> Vec<UBig> {
    let plan = key.dec_plan(group.mont_ctx());
    map_chunks(items, threads, |chunk| plan.pow_batch(chunk))
}

/// Hashes and encrypts raw values (`f_e(h(v))`), in parallel.
pub fn hash_encrypt_batch(
    group: &QrGroup,
    key: &CommutativeKey,
    values: &[Vec<u8>],
    threads: usize,
) -> Vec<UBig> {
    let plan = key.enc_plan(group.mont_ctx());
    map_chunks(values, threads, |chunk| {
        let hashes: Vec<UBig> = chunk.iter().map(|v| group.hash_to_group(v)).collect();
        plan.pow_batch(&hashes)
    })
}

/// Worker count that can actually run concurrently: the request, capped
/// by the host's available parallelism and the number of items.
pub(crate) fn effective_threads(requested: usize, items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.max(1).min(cores).min(items.max(1))
}

/// Order-preserving parallel map over balanced contiguous slices (keeps
/// cache behavior predictable and needs no work-stealing machinery). The
/// closure maps a whole slice so implementations can batch across it.
fn map_chunks<I: Sync>(
    items: &[I],
    threads: usize,
    f: impl Fn(&[I]) -> Vec<UBig> + Sync,
) -> Vec<UBig> {
    let threads = effective_threads(threads, items.len());
    if threads == 1 {
        return f(items);
    }
    let mut results: Vec<Vec<UBig>> = Vec::with_capacity(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = items;
        let handles: Vec<_> = balanced_chunk_sizes(items.len(), threads)
            .into_iter()
            .map(|take| {
                let (slice, tail) = rest.split_at(take);
                rest = tail;
                scope.spawn(move || f(slice))
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(chunk) => results.push(chunk),
                // Propagate the worker's panic payload on the caller's
                // thread instead of masking it behind a generic expect.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results.into_iter().flatten().collect()
}

/// Splits `len` items into `threads` contiguous chunks whose sizes differ
/// by at most one, so a `len` not divisible by `threads` can never leave
/// one worker with a near-double share (the old `div_ceil`-sized chunking
/// gave e.g. `len = 9, threads = 8` a worker with 2 items while three
/// workers sat idle).
fn balanced_chunk_sizes(len: usize, threads: usize) -> Vec<usize> {
    let base = len / threads;
    let extra = len % threads;
    (0..threads).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(0xba7c);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn parallel_matches_serial() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(1);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..37).map(|_| g.sample_element(&mut rng)).collect();
        let serial = encrypt_batch(&g, &key, &items, 1);
        for threads in [2usize, 3, 8, 64] {
            assert_eq!(
                encrypt_batch(&g, &key, &items, threads),
                serial,
                "t={threads}"
            );
        }
    }

    #[test]
    fn decrypt_batch_inverts_encrypt_batch() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(2);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..10).map(|_| g.sample_element(&mut rng)).collect();
        let enc = encrypt_batch(&g, &key, &items, 4);
        assert_eq!(decrypt_batch(&g, &key, &enc, 4), items);
    }

    #[test]
    fn hash_encrypt_batch_matches_pointwise() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(3);
        let key = g.gen_key(&mut rng);
        let values: Vec<Vec<u8>> = (0..9u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let batch = hash_encrypt_batch(&g, &key, &values, 3);
        for (v, e) in values.iter().zip(&batch) {
            assert_eq!(&g.hash_encrypt(&key, v), e);
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        for len in 0..100usize {
            for threads in 1..=16usize {
                let sizes = balanced_chunk_sizes(len, threads);
                assert_eq!(sizes.len(), threads);
                assert_eq!(sizes.iter().sum::<usize>(), len);
                let max = sizes.iter().copied().max().unwrap_or(0);
                let min = sizes.iter().copied().min().unwrap_or(0);
                assert!(max - min <= 1, "len={len} threads={threads} {sizes:?}");
            }
        }
    }

    #[test]
    fn uneven_lengths_match_serial() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(5);
        let key = g.gen_key(&mut rng);
        // len = threads + 1 was the old near-double worst case.
        let items: Vec<UBig> = (0..9).map(|_| g.sample_element(&mut rng)).collect();
        let serial = encrypt_batch(&g, &key, &items, 1);
        assert_eq!(encrypt_batch(&g, &key, &items, 8), serial);
    }

    #[test]
    fn empty_and_single_inputs() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(4);
        let key = g.gen_key(&mut rng);
        assert!(encrypt_batch(&g, &key, &[], 8).is_empty());
        let one = vec![g.sample_element(&mut rng)];
        assert_eq!(encrypt_batch(&g, &key, &one, 8).len(), 1);
    }
}
