//! The commutative encryption `F` of the paper (Definition 2), instantiated
//! as the power function `f_e(x) = x^e mod p` over `QR_p` (Example 1).
//!
//! Properties delivered (and tested here):
//!
//! 1. **Commutativity** — `f_{e}(f_{e'}(x)) = f_{e'}(f_{e}(x))`, because
//!    `(x^{e'})^e = x^{e·e'} = (x^e)^{e'}`.
//! 2. **Bijectivity** — each `f_e` permutes `QR_p`, since
//!    `gcd(e, q) = 1` for `e ∈ {1..q-1}` with `q` prime.
//! 3. **Efficient inversion** — `f_e⁻¹ = f_{e⁻¹ mod q}` (precomputed at
//!    key generation).
//! 4. **Indistinguishability** (Property 4) — under DDH in `QR_p`; not a
//!    testable property, but the sampling obeys the construction the DDH
//!    reduction in the paper's Example 1 requires.

use std::sync::Arc;

use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::{FixedExponentPlan, UBig};
use rand::Rng;

use crate::error::CryptoError;
use crate::group::QrGroup;
use crate::plan::PlanCachePair;

/// A commutative-encryption key: the exponent `e ∈ KeyF = {1..q-1}` and
/// its precomputed inverse `e⁻¹ mod q`.
///
/// Secret hygiene: `Debug` is redacted (the exponent is the whole
/// secret), equality is constant-time over the limb words, and dropping
/// the key best-effort-zeroizes both exponents.
///
/// This type is registered in the analyzer's taint registry
/// (`SECRET_TYPES` in `crates/analyzer/src/registry.rs`): every binding
/// annotated with it seeds `KEY` taint, and WIRE01 fails the build if
/// any dataflow from it reaches a wire sink. Rename it and the registry
/// entry must move with it.
#[derive(Clone)]
pub struct CommutativeKey {
    e: UBig,
    e_inv: UBig,
    /// Lazily-built fixed-exponent plans for each direction; the recoded
    /// schedule is as secret as the exponent and zeroizes on drop.
    plans: PlanCachePair,
}

impl std::fmt::Debug for CommutativeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommutativeKey")
            .field("e", &"<redacted>")
            .field("e_inv", &"<redacted>")
            .finish()
    }
}

impl PartialEq for CommutativeKey {
    fn eq(&self, other: &Self) -> bool {
        // Non-short-circuiting `&` so both fields are always compared.
        minshare_hash::ct::ct_eq_u64(self.e.limbs(), other.e.limbs())
            & minshare_hash::ct::ct_eq_u64(self.e_inv.limbs(), other.e_inv.limbs())
    }
}

impl Eq for CommutativeKey {}

impl Drop for CommutativeKey {
    fn drop(&mut self) {
        self.e.zeroize();
        self.e_inv.zeroize();
    }
}

impl CommutativeKey {
    /// Validates `e ∈ {1..q-1}` and precomputes the decryption exponent.
    pub fn from_exponent(e: UBig, q: &UBig) -> Result<Self, CryptoError> {
        if e.is_zero() || &e >= q {
            return Err(CryptoError::InvalidKey);
        }
        let e_inv = e.mod_inv(q).map_err(|_| CryptoError::InvalidKey)?;
        Ok(CommutativeKey {
            e,
            e_inv,
            plans: PlanCachePair::new(),
        })
    }

    /// The encryption exponent.
    pub fn exponent(&self) -> &UBig {
        &self.e
    }

    /// The decryption exponent `e⁻¹ mod q`.
    pub fn inverse_exponent(&self) -> &UBig {
        &self.e_inv
    }

    /// The cached encryption plan for this key under `ctx` (built on
    /// first use, shared by clones of the key).
    pub(crate) fn enc_plan(&self, ctx: &Arc<MontgomeryCtx>) -> Arc<FixedExponentPlan> {
        self.plans.enc_plan(ctx, &self.e)
    }

    /// The cached decryption plan for this key under `ctx`.
    pub(crate) fn dec_plan(&self, ctx: &Arc<MontgomeryCtx>) -> Arc<FixedExponentPlan> {
        self.plans.dec_plan(ctx, &self.e_inv)
    }
}

impl QrGroup {
    /// `f_e(x) = x^e mod p`. The input must be a group element — in the
    /// protocols it always is, because values enter the group through
    /// [`QrGroup::hash_to_group`]. Goes through the key's cached
    /// fixed-exponent plan, so repeated calls skip the exponent recoding.
    pub fn encrypt(&self, key: &CommutativeKey, x: &UBig) -> UBig {
        key.enc_plan(self.mont_ctx()).pow(x)
    }

    /// `f_e⁻¹(y) = y^(e⁻¹ mod q) mod p`.
    pub fn decrypt(&self, key: &CommutativeKey, y: &UBig) -> UBig {
        key.dec_plan(self.mont_ctx()).pow(y)
    }

    /// `f_e` over a whole batch through the multi-lane fixed-exponent
    /// kernel (`pow_multi_ctx`): one recoding, [`minshare_bignum::fixpow::LANES`]
    /// interleaved Montgomery lanes per window step. Same results as
    /// mapping [`QrGroup::encrypt`], faster per item.
    pub fn encrypt_many(&self, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        key.enc_plan(self.mont_ctx()).pow_batch(items)
    }

    /// `f_e⁻¹` over a whole batch through the multi-lane kernel.
    pub fn decrypt_many(&self, key: &CommutativeKey, items: &[UBig]) -> Vec<UBig> {
        key.dec_plan(self.mont_ctx()).pow_batch(items)
    }

    /// `f_e(h(v))` over a whole batch of raw values.
    pub fn hash_encrypt_many(&self, key: &CommutativeKey, values: &[Vec<u8>]) -> Vec<UBig> {
        let hashes: Vec<UBig> = values.iter().map(|v| self.hash_to_group(v)).collect();
        self.encrypt_many(key, &hashes)
    }

    /// Checked variant of [`QrGroup::encrypt`] for untrusted inputs.
    pub fn encrypt_checked(&self, key: &CommutativeKey, x: &UBig) -> Result<UBig, CryptoError> {
        if !self.is_member(x) {
            return Err(CryptoError::NotGroupElement);
        }
        Ok(self.encrypt(key, x))
    }

    /// Checked variant of [`QrGroup::decrypt`] for untrusted inputs.
    pub fn decrypt_checked(&self, key: &CommutativeKey, y: &UBig) -> Result<UBig, CryptoError> {
        if !self.is_member(y) {
            return Err(CryptoError::NotGroupElement);
        }
        Ok(self.decrypt(key, y))
    }

    /// Hashes a value and encrypts it: `f_e(h(v))` — the composition every
    /// protocol step uses.
    pub fn hash_encrypt(&self, key: &CommutativeKey, value: &[u8]) -> UBig {
        self.encrypt(key, &self.hash_to_group(value))
    }
}

/// Samples a key pair `(e_S, e'_S)` — the sender in the equijoin protocol
/// holds two independent keys (§4.3 step 1).
pub fn gen_key_pair<R: Rng + ?Sized>(
    group: &QrGroup,
    rng: &mut R,
) -> (CommutativeKey, CommutativeKey) {
    (group.gen_key(rng), group.gen_key(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xc0117)
    }

    fn group() -> QrGroup {
        QrGroup::new_unchecked(UBig::from(2879u64)).unwrap()
    }

    #[test]
    fn key_validation() {
        let q = UBig::from(1439u64);
        assert!(CommutativeKey::from_exponent(UBig::from(1u64), &q).is_ok());
        assert!(CommutativeKey::from_exponent(UBig::from(1438u64), &q).is_ok());
        assert_eq!(
            CommutativeKey::from_exponent(UBig::zero(), &q).unwrap_err(),
            CryptoError::InvalidKey
        );
        assert_eq!(
            CommutativeKey::from_exponent(UBig::from(1439u64), &q).unwrap_err(),
            CryptoError::InvalidKey
        );
    }

    #[test]
    fn key_debug_redacted_and_equality_semantic() {
        let g = group();
        let k = g.key_from_exponent(UBig::from(7u64)).unwrap();
        let rendered = format!("{k:?}");
        assert!(rendered.contains("<redacted>"));
        assert!(!rendered.contains('7'), "exponent leaked: {rendered}");
        assert_eq!(k, g.key_from_exponent(UBig::from(7u64)).unwrap());
        assert_ne!(k, g.key_from_exponent(UBig::from(11u64)).unwrap());
    }

    #[test]
    fn encryption_commutes() {
        let g = group();
        let mut r = rng();
        for _ in 0..50 {
            let e1 = g.gen_key(&mut r);
            let e2 = g.gen_key(&mut r);
            let x = g.sample_element(&mut r);
            assert_eq!(
                g.encrypt(&e1, &g.encrypt(&e2, &x)),
                g.encrypt(&e2, &g.encrypt(&e1, &x))
            );
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let g = group();
        let mut r = rng();
        for _ in 0..50 {
            let k = g.gen_key(&mut r);
            let x = g.sample_element(&mut r);
            assert_eq!(g.decrypt(&k, &g.encrypt(&k, &x)), x);
            assert_eq!(g.encrypt(&k, &g.decrypt(&k, &x)), x);
        }
    }

    #[test]
    fn encryption_is_bijective_on_small_group() {
        // Exhaustively: f_e permutes the 1439 residues.
        let g = group();
        let k = g.key_from_exponent(UBig::from(7u64)).unwrap();
        let mut images = std::collections::HashSet::new();
        for x in 1u64..2879 {
            let xb = UBig::from(x);
            if !g.is_member(&xb) {
                continue;
            }
            let y = g.encrypt(&k, &xb);
            assert!(g.is_member(&y), "image must stay in group");
            assert!(images.insert(y.to_u64().unwrap()), "collision at x={x}");
        }
        assert_eq!(images.len(), 1439);
    }

    #[test]
    fn cross_decryption_recovers_single_layer() {
        // R applies f_eR^-1 to f_e'S(f_eR(h(v))) and gets f_e'S(h(v)) —
        // the key step of the equijoin protocol (§4.1).
        let g = group();
        let mut r = rng();
        let e_r = g.gen_key(&mut r);
        let e_s = g.gen_key(&mut r);
        let x = g.hash_to_group(b"join-value");
        let both = g.encrypt(&e_s, &g.encrypt(&e_r, &x));
        assert_eq!(g.decrypt(&e_r, &both), g.encrypt(&e_s, &x));
    }

    #[test]
    fn checked_variants_reject_nonmembers() {
        let g = group();
        let mut r = rng();
        let k = g.gen_key(&mut r);
        // Find a non-residue.
        let bad = (2u64..100)
            .map(UBig::from)
            .find(|x| !g.is_member(x))
            .unwrap();
        assert_eq!(
            g.encrypt_checked(&k, &bad).unwrap_err(),
            CryptoError::NotGroupElement
        );
        assert_eq!(
            g.decrypt_checked(&k, &bad).unwrap_err(),
            CryptoError::NotGroupElement
        );
        let good = g.sample_element(&mut r);
        assert!(g.encrypt_checked(&k, &good).is_ok());
    }

    #[test]
    fn hash_encrypt_composes() {
        let g = group();
        let mut r = rng();
        let k = g.gen_key(&mut r);
        assert_eq!(
            g.hash_encrypt(&k, b"v"),
            g.encrypt(&k, &g.hash_to_group(b"v"))
        );
    }

    #[test]
    fn key_pair_is_independent() {
        let g = group();
        let mut r = rng();
        let (a, b) = gen_key_pair(&g, &mut r);
        assert_ne!(a.exponent(), b.exponent());
    }

    #[test]
    fn identity_key_is_legal_but_weak() {
        // e = 1 is in KeyF per the paper's definition; it must round-trip
        // (the protocols never sample it with more than 1/q probability).
        let g = group();
        let k = g.key_from_exponent(UBig::one()).unwrap();
        let x = g.hash_to_group(b"x");
        assert_eq!(g.encrypt(&k, &x), x);
        assert_eq!(g.decrypt(&k, &x), x);
    }
}
