//! Error type for the cryptographic layer.

use std::fmt;

use minshare_bignum::BigNumError;

/// Errors produced by group operations, ciphers and oblivious transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The modulus is not a safe prime (or failed the probabilistic check).
    NotSafePrime,
    /// The requested parameter size is unsupported.
    UnsupportedSize {
        /// Bits requested by the caller.
        bits: u64,
    },
    /// A value that should be a group element (quadratic residue in
    /// `[1, p-1]`) is not.
    NotGroupElement,
    /// A key outside `KeyF = {1, …, q-1}`.
    InvalidKey,
    /// A payload is too large for the one-block multiplicative cipher.
    PayloadTooLarge {
        /// Payload size in bytes.
        payload_bytes: usize,
        /// Maximum encodable size in bytes.
        max_bytes: usize,
    },
    /// Ciphertext failed structural validation (length, framing).
    MalformedCiphertext,
    /// Authentication tag mismatch on an authenticated payload.
    AuthenticationFailed,
    /// An underlying big-integer failure (division by zero etc.).
    Arithmetic(BigNumError),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::NotSafePrime => write!(f, "modulus is not a safe prime"),
            CryptoError::UnsupportedSize { bits } => {
                write!(f, "unsupported parameter size: {bits} bits")
            }
            CryptoError::NotGroupElement => {
                write!(f, "value is not a quadratic residue in the group")
            }
            CryptoError::InvalidKey => write!(f, "key outside KeyF = {{1..q-1}}"),
            CryptoError::PayloadTooLarge {
                payload_bytes,
                max_bytes,
            } => write!(
                f,
                "payload of {payload_bytes} bytes exceeds one-block capacity {max_bytes}"
            ),
            CryptoError::MalformedCiphertext => write!(f, "malformed ciphertext"),
            CryptoError::AuthenticationFailed => write!(f, "payload authentication failed"),
            CryptoError::Arithmetic(e) => write!(f, "arithmetic failure: {e}"),
        }
    }
}

impl std::error::Error for CryptoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CryptoError::Arithmetic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BigNumError> for CryptoError {
    fn from(e: BigNumError) -> Self {
        CryptoError::Arithmetic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CryptoError::from(BigNumError::DivisionByZero);
        assert!(e.to_string().contains("arithmetic"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CryptoError::NotSafePrime).is_none());
    }
}
