//! The payload cipher `K(κ, ext(v))` of §4.2.
//!
//! The paper requires `K : DomF × Vext → Cext` with (1) efficient
//! decryption given `κ` and (2) *perfect secrecy*: for uniform
//! `κ ∈ DomF`, `K_κ(ext)` has a fixed distribution independent of `ext`.
//!
//! Two interchangeable implementations are provided behind [`ExtCipher`]:
//!
//! * [`MulBlockCipher`] — the paper's Example 2: encode the payload as a
//!   quadratic residue and multiply, `K_κ(m) = κ · m mod p`. Perfectly
//!   secret, but a payload must fit one group element.
//! * [`HybridCipher`] — κ is fed through HKDF into a ChaCha20+HMAC
//!   authenticated stream cipher, allowing realistic variable-size
//!   `ext(v)` records (padded to a fixed record size so ciphertext length
//!   leaks nothing). Secrecy becomes computational instead of perfect —
//!   this substitution is documented in DESIGN.md.

use minshare_bignum::modular::Jacobi;
use minshare_bignum::UBig;
use minshare_hash::{chacha20, hkdf, hmac::HmacSha256};

use crate::error::CryptoError;
use crate::group::QrGroup;

/// A cipher for the per-value payload `ext(v)`, keyed by a group element
/// `κ = f_{e'S}(h(v))`.
///
/// Implementations must produce fixed-length ciphertexts
/// ([`ExtCipher::ciphertext_len`]) so that what the receiver sees for
/// values outside the intersection is simulatable.
pub trait ExtCipher {
    /// Encrypts `plaintext` under the group element `kappa`.
    fn encrypt(&self, kappa: &UBig, plaintext: &[u8]) -> Result<Vec<u8>, CryptoError>;

    /// Decrypts `ciphertext` under `kappa`.
    fn decrypt(&self, kappa: &UBig, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError>;

    /// The fixed ciphertext length in bytes.
    fn ciphertext_len(&self) -> usize;

    /// Maximum plaintext length this cipher accepts.
    fn max_plaintext_len(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The paper-exact multiplicative one-block cipher (Example 2):
/// `K_κ(m) = κ · encode(m) mod p` over `QR_p`.
///
/// Encoding into `QR_p`: frame the payload as an integer
/// `m = OS2IP(0x01 ‖ payload) ∈ [1, q)`; exactly one of `m` and `p − m`
/// is a quadratic residue (safe primes > 5 satisfy `p ≡ 3 (mod 4)`, so
/// `(−1/p) = −1`), and the decoder resolves the ambiguity because
/// `m < q < p − m`.
#[derive(Clone, Debug)]
pub struct MulBlockCipher {
    group: QrGroup,
}

impl MulBlockCipher {
    /// Creates the cipher over `group`. The modulus must exceed 5 so that
    /// `p ≡ 3 (mod 4)` (all safe primes except 5).
    pub fn new(group: QrGroup) -> Result<Self, CryptoError> {
        if group.modulus() <= &UBig::from(5u64) {
            return Err(CryptoError::UnsupportedSize {
                bits: group.modulus().bit_len(),
            });
        }
        debug_assert_eq!(
            group.modulus().limbs()[0] & 3,
            3,
            "safe prime > 5 is 3 mod 4"
        );
        Ok(MulBlockCipher { group })
    }

    /// Encodes payload bytes into a quadratic residue.
    fn encode(&self, payload: &[u8]) -> Result<UBig, CryptoError> {
        if payload.len() > self.max_plaintext_len() {
            return Err(CryptoError::PayloadTooLarge {
                payload_bytes: payload.len(),
                max_bytes: self.max_plaintext_len(),
            });
        }
        let mut framed = Vec::with_capacity(payload.len() + 1);
        framed.push(0x01);
        framed.extend_from_slice(payload);
        let m = UBig::from_be_bytes(&framed);
        debug_assert!(&m < self.group.order());
        match m.jacobi(self.group.modulus())? {
            Jacobi::One => Ok(m),
            _ => Ok(self.group.modulus().checked_sub(&m)?),
        }
    }

    /// Decodes a quadratic residue back into payload bytes.
    fn decode(&self, x: &UBig) -> Result<Vec<u8>, CryptoError> {
        let m = if x <= self.group.order() {
            x.clone()
        } else {
            self.group.modulus().checked_sub(x)?
        };
        let bytes = m.to_be_bytes();
        if bytes.first() != Some(&0x01) {
            return Err(CryptoError::MalformedCiphertext);
        }
        Ok(bytes[1..].to_vec())
    }
}

impl ExtCipher for MulBlockCipher {
    fn encrypt(&self, kappa: &UBig, plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !self.group.is_member(kappa) {
            return Err(CryptoError::NotGroupElement);
        }
        let m = self.encode(plaintext)?;
        let c = self.group.mul(kappa, &m);
        self.group.encode_element(&c)
    }

    fn decrypt(&self, kappa: &UBig, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() != self.ciphertext_len() {
            return Err(CryptoError::MalformedCiphertext);
        }
        let c = self.group.decode_element(ciphertext)?;
        let kappa_inv = self.group.inv(kappa)?;
        let x = self.group.mul(&kappa_inv, &c);
        self.decode(&x)
    }

    fn ciphertext_len(&self) -> usize {
        self.group.codeword_bytes()
    }

    fn max_plaintext_len(&self) -> usize {
        // m = OS2IP(0x01 ‖ payload) needs 8·(len+1) + 1 ≤ bits(q) so that
        // m < q always holds.
        let q_bits = self.group.order().bit_len();
        (q_bits.saturating_sub(9) / 8) as usize
    }

    fn name(&self) -> &'static str {
        "mul-block (paper Example 2)"
    }
}

/// Hybrid authenticated cipher: `κ → HKDF → ChaCha20 ⊕ payload, HMAC tag`.
///
/// Plaintexts are padded to `record_len` bytes (with an internal length
/// prefix), so ciphertexts are always `4 + record_len + 32` bytes and the
/// receiver's view of non-matching values stays simulatable.
#[derive(Clone, Debug)]
pub struct HybridCipher {
    group: QrGroup,
    record_len: usize,
}

/// Derived key material for one [`HybridCipher`] operation.
type HybridKeys = ([u8; 32], [u8; 12], [u8; 32]);

/// Byte layout constants for [`HybridCipher`].
const LEN_PREFIX: usize = 4;
const TAG_LEN: usize = 32;

impl HybridCipher {
    /// Creates the cipher; plaintexts up to `record_len` bytes.
    pub fn new(group: QrGroup, record_len: usize) -> Self {
        HybridCipher { group, record_len }
    }

    /// Derives (cipher key, nonce, MAC key) from κ.
    fn derive_keys(&self, kappa: &UBig) -> Result<HybridKeys, CryptoError> {
        let ikm = self.group.encode_element(kappa)?;
        let okm = hkdf::derive(b"minshare/k-hybrid/v1", &ikm, b"ext-cipher", 32 + 12 + 32);
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 12];
        let mut mac_key = [0u8; 32];
        key.copy_from_slice(&okm[..32]);
        nonce.copy_from_slice(&okm[32..44]);
        mac_key.copy_from_slice(&okm[44..]);
        Ok((key, nonce, mac_key))
    }
}

impl ExtCipher for HybridCipher {
    fn encrypt(&self, kappa: &UBig, plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if plaintext.len() > self.record_len {
            return Err(CryptoError::PayloadTooLarge {
                payload_bytes: plaintext.len(),
                max_bytes: self.record_len,
            });
        }
        if !self.group.is_member(kappa) {
            return Err(CryptoError::NotGroupElement);
        }
        let (key, nonce, mac_key) = self.derive_keys(kappa)?;
        let mut body = Vec::with_capacity(LEN_PREFIX + self.record_len);
        body.extend_from_slice(&(plaintext.len() as u32).to_be_bytes());
        body.extend_from_slice(plaintext);
        body.resize(LEN_PREFIX + self.record_len, 0);
        chacha20::apply_keystream(&key, &nonce, 1, &mut body);
        let tag = HmacSha256::mac(&mac_key, &body);
        body.extend_from_slice(&tag);
        Ok(body)
    }

    fn decrypt(&self, kappa: &UBig, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() != self.ciphertext_len() {
            return Err(CryptoError::MalformedCiphertext);
        }
        let (key, nonce, mac_key) = self.derive_keys(kappa)?;
        let (body, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
        if !HmacSha256::verify(&mac_key, body, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut body = body.to_vec();
        chacha20::apply_keystream(&key, &nonce, 1, &mut body);
        let len = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize;
        if len > self.record_len {
            return Err(CryptoError::MalformedCiphertext);
        }
        Ok(body[LEN_PREFIX..LEN_PREFIX + len].to_vec())
    }

    fn ciphertext_len(&self) -> usize {
        LEN_PREFIX + self.record_len + TAG_LEN
    }

    fn max_plaintext_len(&self) -> usize {
        self.record_len
    }

    fn name(&self) -> &'static str {
        "hybrid (HKDF + ChaCha20 + HMAC)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xeb7)
    }

    fn group() -> QrGroup {
        // 61-bit safe prime group is plenty for cipher tests; generate a
        // deterministic one.
        let mut r = StdRng::seed_from_u64(99);
        QrGroup::generate(&mut r, 61).unwrap()
    }

    #[test]
    fn mulblock_round_trip() {
        let g = group();
        let cipher = MulBlockCipher::new(g.clone()).unwrap();
        let mut r = rng();
        for payload in [&b""[..], b"a", b"abc", &[0u8, 0, 0], &[0xff; 6]] {
            if payload.len() > cipher.max_plaintext_len() {
                continue;
            }
            let kappa = g.sample_element(&mut r);
            let ct = cipher.encrypt(&kappa, payload).unwrap();
            assert_eq!(ct.len(), cipher.ciphertext_len());
            assert_eq!(cipher.decrypt(&kappa, &ct).unwrap(), payload);
        }
    }

    #[test]
    fn mulblock_wrong_key_garbles() {
        let g = group();
        let cipher = MulBlockCipher::new(g.clone()).unwrap();
        let mut r = rng();
        let kappa = g.sample_element(&mut r);
        let other = g.sample_element(&mut r);
        assert_ne!(kappa, other);
        let ct = cipher.encrypt(&kappa, b"abc").unwrap();
        // Wrong key: either decode fails or yields different bytes.
        if let Ok(pt) = cipher.decrypt(&other, &ct) { assert_ne!(pt, b"abc") }
    }

    #[test]
    fn mulblock_rejects_oversized() {
        let g = group();
        let cipher = MulBlockCipher::new(g.clone()).unwrap();
        let mut r = rng();
        let kappa = g.sample_element(&mut r);
        let too_big = vec![0u8; cipher.max_plaintext_len() + 1];
        assert!(matches!(
            cipher.encrypt(&kappa, &too_big),
            Err(CryptoError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn mulblock_perfect_secrecy_shape() {
        // For uniform κ, ciphertext is uniform on QR regardless of message:
        // encrypting two different messages with fresh uniform κ must give
        // group elements (can't test the distribution exactly, but check
        // every ciphertext is a valid QR codeword).
        let g = group();
        let cipher = MulBlockCipher::new(g.clone()).unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let kappa = g.sample_element(&mut r);
            let ct = cipher.encrypt(&kappa, b"msg").unwrap();
            assert!(g.decode_element(&ct).is_ok());
        }
    }

    #[test]
    fn mulblock_preserves_leading_zeros() {
        let g = group();
        let cipher = MulBlockCipher::new(g.clone()).unwrap();
        let mut r = rng();
        let kappa = g.sample_element(&mut r);
        let payload = [0u8, 0, 7];
        let ct = cipher.encrypt(&kappa, &payload).unwrap();
        assert_eq!(cipher.decrypt(&kappa, &ct).unwrap(), payload);
    }

    #[test]
    fn hybrid_round_trip_various_lengths() {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 64);
        let mut r = rng();
        for len in [0usize, 1, 32, 63, 64] {
            let payload: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            let kappa = g.sample_element(&mut r);
            let ct = cipher.encrypt(&kappa, &payload).unwrap();
            assert_eq!(ct.len(), cipher.ciphertext_len());
            assert_eq!(cipher.decrypt(&kappa, &ct).unwrap(), payload, "len={len}");
        }
    }

    #[test]
    fn hybrid_fixed_ciphertext_length_hides_payload_length() {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 100);
        let mut r = rng();
        let kappa = g.sample_element(&mut r);
        let short = cipher.encrypt(&kappa, b"x").unwrap();
        let long = cipher.encrypt(&kappa, &[7u8; 100]).unwrap();
        assert_eq!(short.len(), long.len());
    }

    #[test]
    fn hybrid_wrong_key_fails_auth() {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 16);
        let mut r = rng();
        let kappa = g.sample_element(&mut r);
        let other = g.sample_element(&mut r);
        let ct = cipher.encrypt(&kappa, b"secret").unwrap();
        assert_eq!(
            cipher.decrypt(&other, &ct).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn hybrid_tamper_detection() {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 16);
        let mut r = rng();
        let kappa = g.sample_element(&mut r);
        let mut ct = cipher.encrypt(&kappa, b"secret").unwrap();
        ct[3] ^= 1;
        assert_eq!(
            cipher.decrypt(&kappa, &ct).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn hybrid_rejects_bad_lengths() {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 16);
        let mut r = rng();
        let kappa = g.sample_element(&mut r);
        assert!(matches!(
            cipher.encrypt(&kappa, &[0u8; 17]),
            Err(CryptoError::PayloadTooLarge { .. })
        ));
        assert_eq!(
            cipher.decrypt(&kappa, &[0u8; 10]).unwrap_err(),
            CryptoError::MalformedCiphertext
        );
    }

    #[test]
    fn both_ciphers_reject_nonmember_kappa() {
        let g = group();
        let mul = MulBlockCipher::new(g.clone()).unwrap();
        let hybrid = HybridCipher::new(g.clone(), 16);
        // κ = 0 is never a member.
        assert!(matches!(
            mul.encrypt(&UBig::zero(), b"m"),
            Err(CryptoError::NotGroupElement)
        ));
        assert!(matches!(
            hybrid.encrypt(&UBig::zero(), b"m"),
            Err(CryptoError::NotGroupElement)
        ));
    }

    #[test]
    fn trait_objects_work() {
        let g = group();
        let ciphers: Vec<Box<dyn ExtCipher>> = vec![
            Box::new(MulBlockCipher::new(g.clone()).unwrap()),
            Box::new(HybridCipher::new(g.clone(), 32)),
        ];
        let mut r = rng();
        let kappa = g.sample_element(&mut r);
        for c in &ciphers {
            let ct = c.encrypt(&kappa, b"abc").unwrap();
            assert_eq!(c.decrypt(&kappa, &ct).unwrap(), b"abc");
            assert!(!c.name().is_empty());
        }
    }
}
