//! # minshare-crypto
//!
//! The cryptographic layer of the `minshare` reproduction of *"Information
//! Sharing Across Private Databases"* (Agrawal, Evfimievski, Srikant —
//! SIGMOD 2003):
//!
//! * [`group::QrGroup`] — the group of quadratic residues modulo a safe
//!   prime, the paper's `DomF` (Example 1), with hash-into-group
//!   implementing the ideal hash `h : V → DomF` of §3.2.2;
//! * [`commutative`] — the commutative encryption `f_e(x) = x^e mod p`
//!   satisfying Definition 2 (commutativity, bijectivity, efficient
//!   inversion, DDH-based indistinguishability);
//! * [`kcipher`] — the payload cipher `K(κ, ext(v))` of §4.2, in both the
//!   paper-exact multiplicative form (Example 2) and a hybrid
//!   length-extension form for realistic records;
//! * [`ot`] — 1-out-of-2 oblivious transfer over the same group, required
//!   by the Appendix-A garbled-circuit baseline.
//!
//! ## Quick example
//!
//! ```
//! use minshare_crypto::group::QrGroup;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let group = QrGroup::generate(&mut rng, 64).unwrap();
//! let (e1, e2) = (group.gen_key(&mut rng), group.gen_key(&mut rng));
//! let x = group.hash_to_group(b"some join value");
//! // Commutativity: f_e1(f_e2(x)) == f_e2(f_e1(x)).
//! assert_eq!(
//!     group.encrypt(&e1, &group.encrypt(&e2, &x)),
//!     group.encrypt(&e2, &group.encrypt(&e1, &x)),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod commutative;
pub mod error;
pub mod group;
pub mod kcipher;
pub mod ot;
mod plan;
pub mod pool;
pub mod scheme;
pub mod sra;

pub use commutative::CommutativeKey;
pub use error::CryptoError;
pub use group::QrGroup;
pub use pool::{EncryptPool, PendingBatch};
pub use scheme::CommutativeScheme;
