//! The quadratic-residue group `QR_p` modulo a safe prime — the paper's
//! `DomF` (Example 1) — together with key sampling, element sampling, and
//! the random-oracle hash into the group.

use std::sync::Arc;

use minshare_bignum::modular::Jacobi;
use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::random::random_range;
use minshare_bignum::safe_prime::{generate_safe_prime, is_safe_prime, well_known_safe_prime};
use minshare_bignum::UBig;
use minshare_hash::RandomOracle;
use rand::Rng;

use crate::commutative::CommutativeKey;
use crate::error::CryptoError;

/// Extra uniformly random bits drawn before reduction when hashing into the
/// group, making the mod-bias `2^-128`-negligible.
const HASH_SLACK_BITS: u64 = 128;

/// The group of quadratic residues modulo a safe prime `p = 2q + 1`.
///
/// * `DomF = QR_p` has prime order `q`, so DDH is plausible and every
///   non-identity element generates the group.
/// * `KeyF = {1, …, q-1}` (Example 1 of the paper).
///
/// Cloning is cheap: the Montgomery context is shared behind an [`Arc`].
#[derive(Clone, Debug)]
pub struct QrGroup {
    p: UBig,
    q: UBig,
    /// `p - 1`, precomputed at construction so the hash path needs no
    /// fallible arithmetic per call.
    p_minus_1: UBig,
    ctx: Arc<MontgomeryCtx>,
    oracle: RandomOracle,
}

impl QrGroup {
    /// Builds a group from a known safe prime, verifying safety
    /// probabilistically with `rng`.
    pub fn new<R: Rng + ?Sized>(p: UBig, rng: &mut R) -> Result<Self, CryptoError> {
        if !is_safe_prime(&p, rng) {
            return Err(CryptoError::NotSafePrime);
        }
        Self::new_unchecked(p)
    }

    /// Builds a group from a safe prime **without** re-verifying primality.
    /// Use only for vetted constants (e.g. the RFC groups) or freshly
    /// generated primes.
    pub fn new_unchecked(p: UBig) -> Result<Self, CryptoError> {
        if p < UBig::from(5u64) || p.is_even() {
            return Err(CryptoError::NotSafePrime);
        }
        let p_minus_1 = p.sub_small(1)?;
        let q = p_minus_1.shr_bits(1);
        let ctx = MontgomeryCtx::new(&p)?;
        let oracle = RandomOracle::new(b"minshare/qr-group/hash-to-group/v1");
        Ok(QrGroup {
            p,
            q,
            p_minus_1,
            ctx: Arc::new(ctx),
            oracle,
        })
    }

    /// Generates a fresh random safe-prime group with `bits`-bit modulus.
    /// Suitable for tests and small parameters; large sizes take minutes.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Result<Self, CryptoError> {
        let p = generate_safe_prime(rng, bits, 10_000_000)?;
        Self::new_unchecked(p)
    }

    /// Loads one of the bundled RFC 2409 / RFC 3526 safe-prime groups
    /// (768, 1024, 1536 or 2048 bits). The paper's cost analysis assumes
    /// the 1024-bit size.
    pub fn well_known(bits: u64) -> Result<Self, CryptoError> {
        let p = well_known_safe_prime(bits).ok_or(CryptoError::UnsupportedSize { bits })?;
        Self::new_unchecked(p)
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> &UBig {
        &self.p
    }

    /// The group order `q = (p-1)/2`.
    pub fn order(&self) -> &UBig {
        &self.q
    }

    /// Bit length `k` of the modulus — the paper's codeword size (§6.1
    /// counts communication in `k`-bit encrypted codewords).
    pub fn codeword_bits(&self) -> u64 {
        self.p.bit_len()
    }

    /// Bytes needed to serialize one group element (fixed width).
    pub fn codeword_bytes(&self) -> usize {
        self.codeword_bits().div_ceil(8) as usize
    }

    /// A fixed generator of `QR_p`: `4 = 2²` is always a quadratic residue,
    /// and in a prime-order group every non-identity element generates.
    pub fn generator(&self) -> UBig {
        UBig::from(4u64)
    }

    /// Membership test: `x ∈ QR_p` iff `0 < x < p` and `(x/p) = 1`, or
    /// `x = 1` (the identity; its Jacobi symbol is 1 too).
    pub fn is_member(&self, x: &UBig) -> bool {
        if x.is_zero() || x >= &self.p {
            return false;
        }
        matches!(x.jacobi(&self.p), Ok(Jacobi::One))
    }

    /// Uniformly samples a group element by squaring a uniform element of
    /// `Z_p^*` (squaring is exactly 2-to-1 onto `QR_p`).
    pub fn sample_element<R: Rng + ?Sized>(&self, rng: &mut R) -> UBig {
        let t = random_range(rng, &UBig::one(), &self.p);
        self.ctx.mul(&t, &t)
    }

    /// Uniformly samples a commutative-encryption key from
    /// `KeyF = {1, …, q-1}` and precomputes its inverse.
    pub fn gen_key<R: Rng + ?Sized>(&self, rng: &mut R) -> CommutativeKey {
        loop {
            let e = random_range(rng, &UBig::one(), &self.q);
            // With prime q every e ∈ {1..q-1} is invertible, so this
            // accepts on the first draw; the loop (rather than an
            // `expect`) covers callers who built a group on a composite
            // "safe prime" via `new_unchecked`.
            if let Ok(key) = CommutativeKey::from_exponent(e, &self.q) {
                return key;
            }
        }
    }

    /// Reconstructs a key from a raw exponent (validating it lies in
    /// `KeyF`).
    pub fn key_from_exponent(&self, e: UBig) -> Result<CommutativeKey, CryptoError> {
        CommutativeKey::from_exponent(e, &self.q)
    }

    /// The ideal hash `h : V → DomF` of §3.2.2, instantiated as
    /// random-oracle expansion followed by squaring:
    /// `t = RO(v) mod (p-1) + 1 ∈ Z_p^*`, then `h(v) = t² mod p ∈ QR_p`.
    ///
    /// Uniform `t` on `Z_p^*` makes `t²` uniform on `QR_p`; the
    /// 128 extra bits of expansion make the reduction bias negligible.
    pub fn hash_to_group(&self, value: &[u8]) -> UBig {
        let out_bytes = ((self.p.bit_len() + HASH_SLACK_BITS) as usize).div_ceil(8);
        let wide = UBig::from_be_bytes(&self.oracle.expand(value, out_bytes));
        // Construction validates p ≥ 5, so p-1 is nonzero and the
        // reduction cannot fail; the identity fallback is dead code kept
        // only to avoid a panic path in library code.
        let t = match wide.rem_ref(&self.p_minus_1) {
            Ok(r) => r.add_small(1), // t ∈ [1, p-1]
            Err(_) => UBig::one(),
        };
        self.ctx.mul(&t, &t)
    }

    /// Group multiplication `a · b mod p`.
    pub fn mul(&self, a: &UBig, b: &UBig) -> UBig {
        self.ctx.mul(a, b)
    }

    /// Multiplicative inverse in `Z_p^*`.
    pub fn inv(&self, a: &UBig) -> Result<UBig, CryptoError> {
        Ok(a.mod_inv(&self.p)?)
    }

    /// Modular exponentiation `base^exp mod p` through the shared
    /// Montgomery context. One call with a full-size exponent is the
    /// paper's `Ce` cost unit.
    pub fn pow(&self, base: &UBig, exp: &UBig) -> UBig {
        self.ctx.pow(base, exp)
    }

    /// The shared Montgomery context for `mod p`, for building
    /// fixed-exponent plans against this group.
    pub(crate) fn mont_ctx(&self) -> &Arc<MontgomeryCtx> {
        &self.ctx
    }

    /// Serializes a group element to the fixed codeword width.
    pub fn encode_element(&self, x: &UBig) -> Result<Vec<u8>, CryptoError> {
        Ok(x.to_be_bytes_padded(self.codeword_bytes())?)
    }

    /// Parses and validates a group element from codeword bytes.
    pub fn decode_element(&self, bytes: &[u8]) -> Result<UBig, CryptoError> {
        if bytes.len() != self.codeword_bytes() {
            return Err(CryptoError::MalformedCiphertext);
        }
        let x = UBig::from_be_bytes(bytes);
        if !self.is_member(&x) {
            return Err(CryptoError::NotGroupElement);
        }
        Ok(x)
    }
}

impl PartialEq for QrGroup {
    fn eq(&self, other: &Self) -> bool {
        self.p == other.p
    }
}

impl Eq for QrGroup {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x6702)
    }

    fn small_group() -> QrGroup {
        // p = 2879 is a safe prime (q = 1439 prime).
        QrGroup::new_unchecked(UBig::from(2879u64)).unwrap()
    }

    #[test]
    fn new_validates_safety() {
        let mut r = rng();
        assert!(QrGroup::new(UBig::from(23u64), &mut r).is_ok());
        // 13 is prime but not safe; 15 is composite.
        assert_eq!(
            QrGroup::new(UBig::from(13u64), &mut r).unwrap_err(),
            CryptoError::NotSafePrime
        );
        assert_eq!(
            QrGroup::new(UBig::from(15u64), &mut r).unwrap_err(),
            CryptoError::NotSafePrime
        );
    }

    #[test]
    fn order_is_half() {
        let g = small_group();
        assert_eq!(g.order(), &UBig::from(1439u64));
        assert_eq!(g.codeword_bits(), 12);
        assert_eq!(g.codeword_bytes(), 2);
    }

    #[test]
    fn generator_is_member_with_full_order() {
        let g = small_group();
        let gen = g.generator();
        assert!(g.is_member(&gen));
        // gen^q == 1 and gen^1 != 1.
        assert_eq!(g.pow(&gen, g.order()), UBig::one());
        assert!(!g.pow(&gen, &UBig::one()).is_one());
    }

    #[test]
    fn membership_counts_are_exact() {
        // Exactly q = 1439 residues in [1, p-1], identity included.
        let g = small_group();
        let count = (1u64..2879)
            .filter(|&x| g.is_member(&UBig::from(x)))
            .count() as u64;
        assert_eq!(count, 1439);
        assert!(g.is_member(&UBig::one()));
        assert!(!g.is_member(&UBig::zero()));
        assert!(!g.is_member(&UBig::from(2879u64)));
    }

    #[test]
    fn sampled_elements_are_members() {
        let g = small_group();
        let mut r = rng();
        for _ in 0..200 {
            let x = g.sample_element(&mut r);
            assert!(g.is_member(&x), "x={x}");
        }
    }

    #[test]
    fn hash_lands_in_group_and_is_deterministic() {
        let g = small_group();
        for v in [&b"alice"[..], b"bob", b"", b"\x00\x01\x02"] {
            let h = g.hash_to_group(v);
            assert!(g.is_member(&h), "v={v:?}");
            assert_eq!(h, g.hash_to_group(v));
        }
        assert_ne!(g.hash_to_group(b"alice"), g.hash_to_group(b"bob"));
    }

    #[test]
    fn hash_distribution_covers_group() {
        // Hashing many values should hit a decent fraction of the 1439
        // residues, and only residues.
        let g = small_group();
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u32 {
            let h = g.hash_to_group(&i.to_be_bytes());
            assert!(g.is_member(&h));
            seen.insert(h.to_u64().unwrap());
        }
        // Coupon-collector-ish: expect > 1000 distinct of 1439.
        assert!(seen.len() > 1000, "only {} distinct", seen.len());
    }

    #[test]
    fn keys_land_in_keyf() {
        let g = small_group();
        let mut r = rng();
        for _ in 0..100 {
            let k = g.gen_key(&mut r);
            assert!(!k.exponent().is_zero());
            assert!(k.exponent() < g.order());
        }
    }

    #[test]
    fn key_from_exponent_validates() {
        let g = small_group();
        assert!(g.key_from_exponent(UBig::from(7u64)).is_ok());
        assert!(g.key_from_exponent(UBig::zero()).is_err());
        assert!(g.key_from_exponent(UBig::from(1439u64)).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let g = small_group();
        let mut r = rng();
        let x = g.sample_element(&mut r);
        let bytes = g.encode_element(&x).unwrap();
        assert_eq!(bytes.len(), g.codeword_bytes());
        assert_eq!(g.decode_element(&bytes).unwrap(), x);
    }

    #[test]
    fn decode_rejects_nonmembers_and_bad_lengths() {
        let g = small_group();
        // 7 is a non-residue mod 2879? Find one deterministically.
        let mut nonmember = None;
        for x in 2u64..100 {
            if !g.is_member(&UBig::from(x)) {
                nonmember = Some(x);
                break;
            }
        }
        let bad = UBig::from(nonmember.unwrap());
        let bytes = g.encode_element(&bad).unwrap();
        assert_eq!(
            g.decode_element(&bytes).unwrap_err(),
            CryptoError::NotGroupElement
        );
        assert_eq!(
            g.decode_element(&[0u8; 5]).unwrap_err(),
            CryptoError::MalformedCiphertext
        );
    }

    #[test]
    fn well_known_groups_load() {
        for bits in [768u64, 1024] {
            let g = QrGroup::well_known(bits).unwrap();
            assert_eq!(g.codeword_bits(), bits);
        }
        assert!(matches!(
            QrGroup::well_known(512),
            Err(CryptoError::UnsupportedSize { bits: 512 })
        ));
    }

    #[test]
    fn generated_group_works_end_to_end() {
        let mut r = rng();
        let g = QrGroup::generate(&mut r, 48).unwrap();
        let x = g.hash_to_group(b"v");
        let k = g.gen_key(&mut r);
        let y = g.pow(&x, k.exponent());
        assert!(g.is_member(&y));
    }
}
