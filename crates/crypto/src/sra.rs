//! SRA commutative encryption — the *other* classical instantiation of
//! the paper's Definition 2.
//!
//! The paper's commutative-encryption definition cites Shamir, Rivest &
//! Adleman's "Mental Poker" (\[42\]) alongside Diffie–Hellman and Pohlig–
//! Hellman constructions. SRA works over an RSA modulus `n = p·q` whose
//! factorization is **shared by the two parties** (but hidden from
//! outsiders): each party picks `e` with `gcd(e, φ(n)) = 1` and encrypts
//! by `f_e(x) = x^e mod n`, decrypting with `d = e⁻¹ mod φ(n)`.
//!
//! Properties vs. Definition 2:
//!
//! 1. **Commutativity** — powers commute, as in Example 1. ✔
//! 2. **Bijectivity** on `Z_n^*` — `gcd(e, φ(n)) = 1`. ✔
//! 3. **Efficient inversion** given the key (both parties know `φ(n)`). ✔
//! 4. **Indistinguishability** — rests on RSA-style assumptions rather
//!    than DDH, and (crucially) the proof of the paper's Lemma 1 does not
//!    carry over verbatim: with `φ(n)` shared, each *party* can always
//!    decrypt its own layer. SRA is secure against *outsiders* and is the
//!    historical construction; the QR/DDH group of Example 1
//!    ([`crate::group::QrGroup`]) is what the paper's security statements
//!    are proved for, and is what the `minshare` protocol engines use.
//!
//! This module exists to make the reproduction's cipher layer complete
//! (both classical instantiations implemented and property-tested) and to
//! power the `ablation/commutative_scheme` comparison.

use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::prime::generate_prime;
use minshare_bignum::random::random_range;
use minshare_bignum::UBig;
use minshare_hash::RandomOracle;
use rand::Rng;

use crate::error::CryptoError;
use crate::plan::PlanCachePair;

/// Shared SRA parameters: the modulus and (privately, between the two
/// parties) its Euler totient.
///
/// `φ(n)` is equivalent to the factorization of `n`, so `Debug` prints
/// only the public modulus and dropping the context scrubs the totient.
#[derive(Clone)]
pub struct SraContext {
    n: UBig,
    phi: UBig,
    /// Cached Montgomery state for `mod n`; behind an `Arc` so cloning a
    /// context (one per party in the ablation benches) shares the
    /// precomputed `R mod n` / `R² mod n` instead of recomputing or
    /// copying them.
    ctx: std::sync::Arc<MontgomeryCtx>,
    oracle: RandomOracle,
}

impl std::fmt::Debug for SraContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SraContext")
            .field("n", &self.n)
            .field("phi", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Drop for SraContext {
    fn drop(&mut self) {
        self.phi.zeroize();
    }
}

/// An SRA key: exponent and its inverse mod `φ(n)`.
///
/// Secret hygiene mirrors [`crate::commutative::CommutativeKey`]:
/// redacted `Debug`, constant-time equality, zeroize-on-drop.
#[derive(Clone)]
pub struct SraKey {
    e: UBig,
    d: UBig,
    /// Lazily-built fixed-exponent plans (encrypt/decrypt); the recoded
    /// schedule is as secret as the exponent and zeroizes on drop.
    plans: PlanCachePair,
}

impl std::fmt::Debug for SraKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SraKey")
            .field("e", &"<redacted>")
            .field("d", &"<redacted>")
            .finish()
    }
}

impl PartialEq for SraKey {
    fn eq(&self, other: &Self) -> bool {
        // Non-short-circuiting `&` so both fields are always compared.
        minshare_hash::ct::ct_eq_u64(self.e.limbs(), other.e.limbs())
            & minshare_hash::ct::ct_eq_u64(self.d.limbs(), other.d.limbs())
    }
}

impl Eq for SraKey {}

impl Drop for SraKey {
    fn drop(&mut self) {
        self.e.zeroize();
        self.d.zeroize();
    }
}

impl SraKey {
    /// The encryption exponent.
    pub fn exponent(&self) -> &UBig {
        &self.e
    }
}

impl SraContext {
    /// Generates shared parameters with an approximately `bits`-bit
    /// modulus (two `bits/2`-bit primes).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Result<Self, CryptoError> {
        if bits < 16 {
            return Err(CryptoError::UnsupportedSize { bits });
        }
        let half = bits / 2;
        loop {
            let p = generate_prime(rng, half, 1_000_000)?;
            let q = generate_prime(rng, bits - half, 1_000_000)?;
            if p == q {
                continue;
            }
            let n = p.mul_ref(&q);
            let phi = p.sub_small(1)?.mul_ref(&q.sub_small(1)?);
            let ctx = std::sync::Arc::new(MontgomeryCtx::new(&n)?);
            return Ok(SraContext {
                n,
                phi,
                ctx,
                oracle: RandomOracle::new(b"minshare/sra/hash-to-domain/v1"),
            });
        }
    }

    /// The public modulus.
    pub fn modulus(&self) -> &UBig {
        &self.n
    }

    /// Samples a key with `gcd(e, φ(n)) = 1` and precomputes its inverse.
    pub fn gen_key<R: Rng + ?Sized>(&self, rng: &mut R) -> SraKey {
        loop {
            let e = random_range(rng, &UBig::from(3u64), &self.phi);
            if let Ok(d) = e.mod_inv(&self.phi) {
                return SraKey {
                    e,
                    d,
                    plans: PlanCachePair::new(),
                };
            }
        }
    }

    /// Hashes an arbitrary value into `Z_n^*` (random-oracle expansion,
    /// reduction with 128 bits of slack, gcd check with retry-by-counter).
    pub fn hash_to_domain(&self, value: &[u8]) -> UBig {
        let out_bytes = ((self.n.bit_len() + 128) as usize).div_ceil(8);
        // Invariant expects: `generate` only builds contexts with n = p·q
        // for distinct primes ≥ 2^7, so n-1 exists and is nonzero.
        let n_minus_1 = self.n.sub_small(1).expect("n > 1");
        let mut suffix = 0u32;
        loop {
            let mut input = value.to_vec();
            input.extend_from_slice(&suffix.to_be_bytes());
            let wide = UBig::from_be_bytes(&self.oracle.expand(&input, out_bytes));
            let x = wide.rem_ref(&n_minus_1).expect("n-1 nonzero").add_small(1);
            if x.gcd(&self.n).is_one() {
                return x;
            }
            // Probability ≈ 1/p + 1/q — astronomically rare for real
            // parameters, but handled for tiny test moduli.
            suffix += 1;
        }
    }

    /// `f_e(x) = x^e mod n`, through the key's cached fixed-exponent plan.
    pub fn encrypt(&self, key: &SraKey, x: &UBig) -> UBig {
        key.plans.enc_plan(&self.ctx, &key.e).pow(x)
    }

    /// `f_e⁻¹(y) = y^d mod n`.
    pub fn decrypt(&self, key: &SraKey, y: &UBig) -> UBig {
        key.plans.dec_plan(&self.ctx, &key.d).pow(y)
    }

    /// `f_e` over a whole batch through the multi-lane kernel.
    pub fn encrypt_many(&self, key: &SraKey, items: &[UBig]) -> Vec<UBig> {
        key.plans.enc_plan(&self.ctx, &key.e).pow_batch(items)
    }

    /// `f_e⁻¹` over a whole batch through the multi-lane kernel.
    pub fn decrypt_many(&self, key: &SraKey, items: &[UBig]) -> Vec<UBig> {
        key.plans.dec_plan(&self.ctx, &key.d).pow_batch(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> SraContext {
        let mut rng = StdRng::seed_from_u64(0x54a);
        SraContext::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn commutativity_holds() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..20u32 {
            let k1 = c.gen_key(&mut rng);
            let k2 = c.gen_key(&mut rng);
            let x = c.hash_to_domain(&i.to_be_bytes());
            assert_eq!(
                c.encrypt(&k1, &c.encrypt(&k2, &x)),
                c.encrypt(&k2, &c.encrypt(&k1, &x)),
                "i={i}"
            );
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..20u32 {
            let k = c.gen_key(&mut rng);
            let x = c.hash_to_domain(&i.to_be_bytes());
            assert_eq!(c.decrypt(&k, &c.encrypt(&k, &x)), x, "i={i}");
        }
    }

    #[test]
    fn cross_layer_stripping_works() {
        // The §4.1 trick under SRA: f_e1⁻¹(f_e2(f_e1(x))) = f_e2(x).
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let k1 = c.gen_key(&mut rng);
        let k2 = c.gen_key(&mut rng);
        let x = c.hash_to_domain(b"value");
        let double = c.encrypt(&k2, &c.encrypt(&k1, &x));
        assert_eq!(c.decrypt(&k1, &double), c.encrypt(&k2, &x));
    }

    #[test]
    fn intersection_math_under_sra() {
        // The §3.3 membership equation with SRA keys: v ∈ V_S ∩ V_R iff
        // f_eS(f_eR(h(v))) ∈ f_eR(f_eS(h(V_S))).
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let e_s = c.gen_key(&mut rng);
        let e_r = c.gen_key(&mut rng);
        let vs = [b"a".as_slice(), b"b", b"c"];
        let vr = [b"b".as_slice(), b"c", b"d"];
        let zs: std::collections::BTreeSet<UBig> = vs
            .iter()
            .map(|v| c.encrypt(&e_r, &c.encrypt(&e_s, &c.hash_to_domain(v))))
            .collect();
        let matched: Vec<&[u8]> = vr
            .iter()
            .filter(|v| {
                let t = c.encrypt(&e_s, &c.encrypt(&e_r, &c.hash_to_domain(v)));
                zs.contains(&t)
            })
            .copied()
            .collect();
        assert_eq!(matched, vec![b"b".as_slice(), b"c"]);
    }

    #[test]
    fn hash_lands_in_units() {
        let c = ctx();
        for i in 0..50u32 {
            let x = c.hash_to_domain(&i.to_be_bytes());
            assert!(x.gcd(c.modulus()).is_one());
            assert!(&x < c.modulus() && !x.is_zero());
        }
    }

    #[test]
    fn keys_are_invertible_by_construction() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let k = c.gen_key(&mut rng);
            let prod = k.e.mod_mul(&k.d, &c.phi).unwrap();
            assert!(prod.is_one());
        }
    }

    #[test]
    fn secrets_redacted_in_debug() {
        let c = ctx();
        let rendered = format!("{c:?}");
        assert!(rendered.contains("<redacted>"), "phi leaked: {rendered}");
        let mut rng = StdRng::seed_from_u64(7);
        let k = c.gen_key(&mut rng);
        let kd = format!("{k:?}");
        assert!(kd.contains("<redacted>"), "exponent leaked: {kd}");
        assert_eq!(k, k.clone());
        assert_ne!(k, c.gen_key(&mut rng));
    }

    #[test]
    fn tiny_modulus_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(matches!(
            SraContext::generate(&mut rng, 8),
            Err(CryptoError::UnsupportedSize { .. })
        ));
    }
}
