//! Property-based tests for the cryptographic layer: the Definition-2
//! contract of the commutative encryption, payload-cipher round trips, and
//! hash-to-group well-definedness — over randomly generated inputs and a
//! deterministic test group.

use minshare_crypto::group::QrGroup;
use minshare_crypto::kcipher::{ExtCipher, HybridCipher, MulBlockCipher};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared 64-bit test group (generation is the slow part).
fn group() -> &'static QrGroup {
    static GROUP: OnceLock<QrGroup> = OnceLock::new();
    GROUP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xfeed);
        QrGroup::generate(&mut rng, 64).unwrap()
    })
}

proptest! {
    #[test]
    fn hash_to_group_always_member(value in proptest::collection::vec(any::<u8>(), 0..64)) {
        let g = group();
        let h = g.hash_to_group(&value);
        prop_assert!(g.is_member(&h));
    }

    #[test]
    fn commutativity(seed in any::<u64>(), value in proptest::collection::vec(any::<u8>(), 0..32)) {
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let e1 = g.gen_key(&mut rng);
        let e2 = g.gen_key(&mut rng);
        let x = g.hash_to_group(&value);
        prop_assert_eq!(
            g.encrypt(&e1, &g.encrypt(&e2, &x)),
            g.encrypt(&e2, &g.encrypt(&e1, &x))
        );
    }

    #[test]
    fn decrypt_inverts(seed in any::<u64>(), value in proptest::collection::vec(any::<u8>(), 0..32)) {
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let k = g.gen_key(&mut rng);
        let x = g.hash_to_group(&value);
        prop_assert_eq!(g.decrypt(&k, &g.encrypt(&k, &x)), x);
    }

    #[test]
    fn double_encryption_equals_product_key(seed in any::<u64>()) {
        // f_e1(f_e2(x)) = x^(e1·e2 mod q): composing keys multiplies
        // exponents — the algebra the security reductions lean on.
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let e1 = g.gen_key(&mut rng);
        let e2 = g.gen_key(&mut rng);
        let x = g.sample_element(&mut rng);
        let prod = e1
            .exponent()
            .mod_mul(e2.exponent(), g.order())
            .unwrap();
        let composed = g.encrypt(&e1, &g.encrypt(&e2, &x));
        // prod may be 0 only if e1·e2 ≡ 0 (impossible: q prime, both < q).
        let k_prod = g.key_from_exponent(prod).unwrap();
        prop_assert_eq!(composed, g.encrypt(&k_prod, &x));
    }

    #[test]
    fn encryption_stays_in_group(seed in any::<u64>()) {
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let k = g.gen_key(&mut rng);
        let x = g.sample_element(&mut rng);
        prop_assert!(g.is_member(&g.encrypt(&k, &x)));
    }

    #[test]
    fn mulblock_round_trip(seed in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..5)) {
        let g = group();
        let cipher = MulBlockCipher::new(g.clone()).unwrap();
        prop_assume!(payload.len() <= cipher.max_plaintext_len());
        let mut rng = StdRng::seed_from_u64(seed);
        let kappa = g.sample_element(&mut rng);
        let ct = cipher.encrypt(&kappa, &payload).unwrap();
        prop_assert_eq!(cipher.decrypt(&kappa, &ct).unwrap(), payload);
    }

    #[test]
    fn hybrid_round_trip(seed in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..48)) {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 48);
        let mut rng = StdRng::seed_from_u64(seed);
        let kappa = g.sample_element(&mut rng);
        let ct = cipher.encrypt(&kappa, &payload).unwrap();
        prop_assert_eq!(ct.len(), cipher.ciphertext_len());
        prop_assert_eq!(cipher.decrypt(&kappa, &ct).unwrap(), payload);
    }

    #[test]
    fn element_codec_round_trip(seed in any::<u64>()) {
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = g.sample_element(&mut rng);
        let bytes = g.encode_element(&x).unwrap();
        prop_assert_eq!(g.decode_element(&bytes).unwrap(), x);
    }

    #[test]
    fn distinct_values_distinct_hashes(a in proptest::collection::vec(any::<u8>(), 0..16),
                                       b in proptest::collection::vec(any::<u8>(), 0..16)) {
        prop_assume!(a != b);
        let g = group();
        // With a 64-bit group collisions are conceivable but vanishingly
        // rare across a proptest run; treat equality as failure.
        prop_assert_ne!(g.hash_to_group(&a), g.hash_to_group(&b));
    }
}

#[test]
fn ot_round_trip_both_choices() {
    use minshare_crypto::ot::ObliviousTransfer;
    let g = group().clone();
    let ot = ObliviousTransfer::new(g, b"prop-session");
    let mut rng = StdRng::seed_from_u64(123);
    for choice in [false, true] {
        let (state, query) = ot.receiver_query(choice, &mut rng).unwrap();
        let resp = ot
            .sender_respond(&query, b"left-msg", b"rightmsg", &mut rng)
            .unwrap();
        let got = ot.receiver_recover(&state, &resp).unwrap();
        assert_eq!(
            got,
            if choice {
                b"rightmsg".to_vec()
            } else {
                b"left-msg".to_vec()
            }
        );
    }
}

proptest! {
    // The persistent `EncryptPool` must agree with the serial
    // `encrypt_batch` path element-for-element, at every worker count
    // (including 0, where the submitting thread does all the work) and
    // across batch sizes that straddle the sub-chunk claim size.
    #[test]
    fn pool_matches_serial_encrypt_batch(
        seed in any::<u64>(),
        n in 0usize..70,
        threads in 0usize..5,
    ) {
        use minshare_bignum::UBig;
        use minshare_crypto::batch::encrypt_batch;
        use minshare_crypto::pool::EncryptPool;

        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let key = g.gen_key(&mut rng);
        let items: Vec<UBig> = (0..n).map(|_| g.sample_element(&mut rng)).collect();
        let serial = encrypt_batch(g, &key, &items, 1);
        let pool = EncryptPool::new(threads);
        prop_assert_eq!(pool.encrypt_batch(g, &key, &items), serial);
    }
}
