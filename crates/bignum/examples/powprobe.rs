//! Chained-kernel microprobe: Montgomery multiply vs the dedicated
//! squaring kernel, dependency-chained exactly like the exponentiation
//! ladder uses them (each result feeds the next call).
//!
//! The interesting number is the ratio: the squaring kernel computes
//! `~1.5s² + s` limb products against the multiplier's `2s²`, so on a
//! quiet host the ratio should sit around 0.75 at 512 bits. Run with
//! `cargo run --release -p minshare-bignum --example powprobe`; on a
//! busy single-core host, trust the best round, not the average.

use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::random::random_below;
use minshare_bignum::UBig;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::time::Instant;

const ITERS: u32 = 20_000;

fn main() {
    // Deterministic 512-bit odd modulus (top and bottom bits forced).
    let mut rng = StdRng::seed_from_u64(0x5d);
    let mut bytes = vec![0u8; 64];
    rng.fill_bytes(&mut bytes);
    bytes[0] |= 0x80;
    bytes[63] |= 1;
    let n = UBig::from_be_bytes(&bytes);
    let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
    let x = random_below(&mut StdRng::seed_from_u64(9), &n);
    let e = ctx.lift(&x);

    for round in 0..3 {
        let mut a = e.clone();
        let start = Instant::now();
        for _ in 0..ITERS {
            a = ctx.mul_elem(&a, &a);
        }
        let mul_ns = start.elapsed().as_secs_f64() * 1e9 / f64::from(ITERS);
        std::hint::black_box(&a);

        let mut a = e.clone();
        let start = Instant::now();
        for _ in 0..ITERS {
            a = ctx.sqr_elem(&a);
        }
        let sqr_ns = start.elapsed().as_secs_f64() * 1e9 / f64::from(ITERS);
        std::hint::black_box(&a);

        println!(
            "round {round}: chained mul={mul_ns:.0}ns sqr={sqr_ns:.0}ns ratio={:.2}",
            sqr_ns / mul_ns
        );
    }
}
