//! Property-based tests for the big-integer substrate: ring axioms, the
//! division identity, Montgomery-vs-naive agreement, and number-theoretic
//! laws. These are the invariants everything above (commutative
//! encryption, the protocols) silently relies on.

use std::sync::Arc;

use minshare_bignum::modular::Jacobi;
use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::{FixedExponentPlan, UBig};
use proptest::prelude::*;

/// Strategy: arbitrary-width UBig from raw bytes (0 to ~96 bytes ≈ 768 bits).
fn ubig() -> impl Strategy<Value = UBig> {
    proptest::collection::vec(any::<u8>(), 0..96).prop_map(|b| UBig::from_be_bytes(&b))
}

/// Strategy: nonzero UBig.
fn ubig_nonzero() -> impl Strategy<Value = UBig> {
    ubig().prop_map(|x| x.add_small(1))
}

/// Strategy: odd UBig ≥ 3 (valid Montgomery modulus).
fn odd_modulus() -> impl Strategy<Value = UBig> {
    ubig().prop_map(|x| {
        let x = if x.is_even() { x.add_small(1) } else { x };
        if x.is_one() || x.is_zero() {
            UBig::from(3u64)
        } else {
            x
        }
    })
}

/// Strategy: exponents that stress the sliding-window ladder — the edge
/// cases (0, 1, powers of two with their long zero runs, all-ones values
/// where every window is the maximal odd table entry, full 512-bit) mixed
/// with random multi-limb values.
fn adversarial_exponent() -> impl Strategy<Value = UBig> {
    prop_oneof![
        Just(UBig::from(0u64)),
        Just(UBig::from(1u64)),
        Just(UBig::from(2u64)),
        // Single set bit: maximal leading/interior zero runs.
        (0u64..=512).prop_map(|b| UBig::one().shl_bits(b)),
        // All ones: back-to-back maximal odd windows.
        (1u64..=512).prop_map(|bits| {
            UBig::one().shl_bits(bits).sub_small(1).expect("2^bits >= 1")
        }),
        // Random multi-limb exponents up to 512 bits.
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|b| UBig::from_be_bytes(&b)),
    ]
}

/// Strategy: a full-width odd modulus of exactly 4 or 8 limbs (256 or
/// 512 bits) — the widths the interleaved multi-lane kernel dispatches
/// on. Other widths take the scalar fallback, covered separately below.
fn kernel_modulus() -> impl Strategy<Value = UBig> {
    (
        prop_oneof![Just(32usize), Just(64)],
        proptest::collection::vec(any::<u8>(), 64..65),
    )
        .prop_map(|(len, mut b)| {
            b.truncate(len);
            b[0] |= 0x80; // full width: exactly len/8 limbs
            let last = b.len() - 1;
            b[last] |= 1; // odd
            UBig::from_be_bytes(&b)
        })
}

/// Strategy: batches sized to sweep every lane-occupancy shape of the
/// K-lane kernel — empty, partial first block (1..K), exactly full
/// blocks, and full blocks plus a ragged tail.
fn ragged_bases() -> impl Strategy<Value = Vec<UBig>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..96), 0..11)
        .prop_map(|raw| raw.iter().map(|b| UBig::from_be_bytes(b)).collect())
}

/// Strategy: full-width odd moduli of 1..=8 limbs — the whole width range
/// the SIMD (AVX-512 IFMA) backend accepts. Widths outside the scalar
/// kernel's 4/8-limb specializations matter here: the SIMD path covers
/// them all, so the differential must too.
fn simd_modulus() -> impl Strategy<Value = UBig> {
    (1usize..=8, proptest::collection::vec(any::<u8>(), 64..65)).prop_map(|(limbs, mut b)| {
        b.truncate(limbs * 8);
        b[0] |= 0x80; // full width: exactly `limbs` limbs
        let last = b.len() - 1;
        b[last] |= 1; // odd
        UBig::from_be_bytes(&b)
    })
}

proptest! {
    #[test]
    fn add_commutes(a in ubig(), b in ubig()) {
        prop_assert_eq!(a.add_ref(&b), b.add_ref(&a));
    }

    #[test]
    fn add_associates(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(a.add_ref(&b).add_ref(&c), a.add_ref(&b.add_ref(&c)));
    }

    #[test]
    fn add_sub_round_trip(a in ubig(), b in ubig()) {
        let sum = a.add_ref(&b);
        prop_assert_eq!(sum.checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = UBig::from(a).add_ref(&UBig::from(b));
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_commutes(a in ubig(), b in ubig()) {
        prop_assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
    }

    #[test]
    fn mul_associates(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(a.mul_ref(&b).mul_ref(&c), a.mul_ref(&b.mul_ref(&c)));
    }

    #[test]
    fn mul_distributes_over_add(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(
            a.mul_ref(&b.add_ref(&c)),
            a.mul_ref(&b).add_ref(&a.mul_ref(&c))
        );
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = UBig::from(a).mul_ref(&UBig::from(b));
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn division_identity(a in ubig(), b in ubig_nonzero()) {
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
    }

    #[test]
    fn shifts_round_trip(a in ubig(), bits in 0u64..300) {
        prop_assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
    }

    #[test]
    fn shl_is_doubling(a in ubig(), bits in 0u64..100) {
        // a << bits == a * 2^bits
        let pow2 = UBig::one().shl_bits(bits);
        prop_assert_eq!(a.shl_bits(bits), a.mul_ref(&pow2));
    }

    #[test]
    fn decimal_round_trip(a in ubig()) {
        prop_assert_eq!(UBig::from_decimal_str(&a.to_decimal_str()).unwrap(), a);
    }

    #[test]
    fn hex_round_trip(a in ubig()) {
        prop_assert_eq!(UBig::from_hex_str(&a.to_hex_str()).unwrap(), a);
    }

    #[test]
    fn bytes_round_trip(a in ubig()) {
        prop_assert_eq!(UBig::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn bit_len_brackets_value(a in ubig_nonzero()) {
        let n = a.bit_len();
        // 2^(n-1) <= a < 2^n
        prop_assert!(a >= UBig::one().shl_bits(n - 1));
        prop_assert!(a < UBig::one().shl_bits(n));
    }

    #[test]
    fn montgomery_pow_matches_binary(
        base in ubig(),
        exp in proptest::collection::vec(any::<u8>(), 0..8).prop_map(|b| UBig::from_be_bytes(&b)),
        m in odd_modulus(),
    ) {
        prop_assert_eq!(base.modpow(&exp, &m), base.modpow_binary(&exp, &m));
    }

    #[test]
    fn modpow_exponent_addition_law(
        base in ubig(),
        e1 in any::<u32>(),
        e2 in any::<u32>(),
        m in odd_modulus(),
    ) {
        // base^(e1+e2) == base^e1 * base^e2 (mod m)
        let lhs = base.modpow(&UBig::from(e1 as u64 + e2 as u64), &m);
        let p1 = base.modpow(&UBig::from(e1), &m);
        let p2 = base.modpow(&UBig::from(e2), &m);
        prop_assert_eq!(lhs, p1.mod_mul(&p2, &m).unwrap());
    }

    #[test]
    fn mod_inv_is_inverse(a in ubig_nonzero(), m in odd_modulus()) {
        match a.mod_inv(&m) {
            Ok(inv) => {
                prop_assert!(inv < m);
                prop_assert_eq!(a.mod_mul(&inv, &m).unwrap(), UBig::one().rem_ref(&m).unwrap());
            }
            Err(_) => {
                // Must genuinely share a factor with m.
                prop_assert!(!a.gcd(&m).is_one());
            }
        }
    }

    #[test]
    fn gcd_divides_both(a in ubig_nonzero(), b in ubig_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem_ref(&g).unwrap().is_zero());
        prop_assert!(b.rem_ref(&g).unwrap().is_zero());
    }

    #[test]
    fn jacobi_is_multiplicative(a in ubig(), b in ubig(), m in odd_modulus()) {
        let ja = a.jacobi(&m).unwrap().as_i32();
        let jb = b.jacobi(&m).unwrap().as_i32();
        let jab = a.mul_ref(&b).jacobi(&m).unwrap().as_i32();
        prop_assert_eq!(jab, ja * jb);
    }

    #[test]
    fn jacobi_of_square_is_one_or_zero(a in ubig(), m in odd_modulus()) {
        let j = a.square().jacobi(&m).unwrap();
        prop_assert!(j == Jacobi::One || j == Jacobi::Zero);
    }

    #[test]
    fn mod_add_sub_inverse(a in ubig(), b in ubig(), m in odd_modulus()) {
        let ar = a.rem_ref(&m).unwrap();
        let br = b.rem_ref(&m).unwrap();
        prop_assert_eq!(ar.mod_add(&br, &m).mod_sub(&br, &m), ar);
    }

    #[test]
    fn low_bits_is_mod_pow2(a in ubig(), bits in 0u64..200) {
        let m = UBig::one().shl_bits(bits);
        if !m.is_zero() {
            prop_assert_eq!(a.low_bits(bits), a.rem_ref(&m).unwrap());
        }
    }

    #[test]
    fn sliding_window_pow_matches_oracle(
        base in ubig(),
        exp in adversarial_exponent(),
        m in odd_modulus(),
    ) {
        // The default path (sliding windows + squaring kernel) against the
        // plain square-and-multiply oracle, over multi-limb bases and the
        // ladder's adversarial exponent shapes.
        let ctx = MontgomeryCtx::new(&m).unwrap();
        prop_assert_eq!(ctx.pow(&base, &exp), base.modpow_binary(&exp, &m));
    }

    #[test]
    fn every_window_width_matches_oracle(
        base in ubig(),
        exp in adversarial_exponent(),
        m in odd_modulus(),
        w in 1u32..=6,
    ) {
        let ctx = MontgomeryCtx::new(&m).unwrap();
        prop_assert_eq!(ctx.pow_with_window(&base, &exp, w), base.modpow_binary(&exp, &m));
    }

    #[test]
    fn exponent_m_minus_2_matches_oracle(base in ubig(), m in odd_modulus()) {
        // The modular-inversion exponent (Fermat shape): long odd tail.
        if let Ok(e) = m.sub_small(2) {
            let ctx = MontgomeryCtx::new(&m).unwrap();
            prop_assert_eq!(ctx.pow(&base, &e), base.modpow_binary(&e, &m));
        }
    }

    #[test]
    fn pow_batch_matches_pointwise(
        bases in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96), 0..5
        ),
        exp in adversarial_exponent(),
        m in odd_modulus(),
    ) {
        let bases: Vec<UBig> = bases.iter().map(|b| UBig::from_be_bytes(b)).collect();
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let batch = ctx.pow_batch(&bases, &exp);
        prop_assert_eq!(batch.len(), bases.len());
        for (b, got) in bases.iter().zip(&batch) {
            prop_assert_eq!(got, &b.modpow_binary(&exp, &m));
        }
    }

    #[test]
    fn squaring_kernel_matches_general_multiply(a in ubig(), m in odd_modulus()) {
        let ctx = MontgomeryCtx::new(&m).unwrap();
        prop_assert_eq!(ctx.sqr(&a), ctx.mul(&a, &a));
    }

    // -----------------------------------------------------------------
    // Multi-lane fixed-exponent kernel differentials: `pow_multi_ctx`
    // and `FixedExponentPlan` against the plain square-and-multiply
    // oracle, across every lane-occupancy shape and the adversarial
    // exponents (0, 1, single-bit, all-ones, full random).
    // -----------------------------------------------------------------

    #[test]
    fn pow_multi_ctx_matches_scalar_oracle(
        bases in ragged_bases(),
        exp in adversarial_exponent(),
        m in kernel_modulus(),
    ) {
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let multi = ctx.pow_multi_ctx(&bases, &exp);
        prop_assert_eq!(multi.len(), bases.len());
        for (b, got) in bases.iter().zip(&multi) {
            prop_assert_eq!(got, &b.modpow_binary(&exp, &m));
        }
    }

    #[test]
    fn pow_multi_ctx_fallback_width_matches_oracle(
        bases in ragged_bases(),
        exp in adversarial_exponent(),
        m in odd_modulus(),
    ) {
        // Arbitrary-width moduli (usually not 4 or 8 limbs) take the
        // scalar fallback inside `pow_multi_ctx`; the contract is the
        // same either way.
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let multi = ctx.pow_multi_ctx(&bases, &exp);
        for (b, got) in bases.iter().zip(&multi) {
            prop_assert_eq!(got, &b.modpow_binary(&exp, &m));
        }
    }

    #[test]
    fn pow_multi_ctx_fermat_exponent_matches_oracle(
        bases in ragged_bases(),
        m in kernel_modulus(),
    ) {
        // e = m - 2: the modular-inversion shape — near-full bit length
        // with high Hamming weight, the worst case for window recoding.
        let e = m.sub_small(2).unwrap();
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let multi = ctx.pow_multi_ctx(&bases, &e);
        for (b, got) in bases.iter().zip(&multi) {
            prop_assert_eq!(got, &b.modpow_binary(&e, &m));
        }
    }

    // -----------------------------------------------------------------
    // SIMD differentials: the auto-dispatching batch front end against
    // the forced-scalar kernel, bitwise. In a default (scalar) build
    // both sides run the same code and the test degenerates to a
    // determinism check; with `--features simd` on an IFMA host it is
    // the real vector-vs-scalar differential. Moduli sweep every width
    // the vector backend accepts (1..=8 limbs), batches sweep every
    // lane-occupancy shape (0..=10 over 8 lanes), and exponents take
    // the adversarial shapes (0, 1, single-bit, all-ones, random).
    // -----------------------------------------------------------------

    #[test]
    fn simd_batch_matches_forced_scalar(
        bases in ragged_bases(),
        exp in adversarial_exponent(),
        m in simd_modulus(),
    ) {
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let auto = ctx.pow_multi_ctx(&bases, &exp);
        let scalar = ctx.pow_batch_scalar(&bases, &exp);
        prop_assert_eq!(&auto, &scalar);
        for (b, got) in bases.iter().zip(&auto) {
            prop_assert_eq!(got, &b.modpow_binary(&exp, &m));
        }
    }

    #[test]
    fn simd_batch_fermat_exponent_matches_forced_scalar(
        bases in ragged_bases(),
        m in simd_modulus(),
    ) {
        // e = m - 2: near-full bit length, high Hamming weight — the
        // densest multiply schedule the ladder produces.
        let e = m.sub_small(2).unwrap();
        let ctx = MontgomeryCtx::new(&m).unwrap();
        prop_assert_eq!(ctx.pow_multi_ctx(&bases, &e), ctx.pow_batch_scalar(&bases, &e));
    }

    #[test]
    fn fixed_exponent_plan_matches_scalar_oracle(
        bases in ragged_bases(),
        exp in adversarial_exponent(),
        m in kernel_modulus(),
    ) {
        // The cached-plan front end: scalar `pow` and interleaved
        // `pow_batch` must agree with each other and with the oracle.
        let ctx = Arc::new(MontgomeryCtx::new(&m).unwrap());
        let plan = FixedExponentPlan::new(ctx, &exp);
        let batch = plan.pow_batch(&bases);
        prop_assert_eq!(batch.len(), bases.len());
        for (b, got) in bases.iter().zip(&batch) {
            prop_assert_eq!(got, &b.modpow_binary(&exp, &m));
            prop_assert_eq!(&plan.pow(b), got);
        }
    }
}

#[test]
fn fermat_on_generated_safe_prime() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(7);
    let p = minshare_bignum::safe_prime::generate_safe_prime(&mut rng, 40, 100_000).unwrap();
    let pm1 = p.sub_small(1).unwrap();
    for a in [2u64, 3, 5, 7] {
        assert_eq!(UBig::from(a).modpow(&pm1, &p), UBig::one());
    }
}
