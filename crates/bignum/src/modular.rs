//! Modular arithmetic: residue normalization, addition, subtraction,
//! multiplication, extended-Euclid inversion, and the Jacobi symbol.
//!
//! The commutative cipher needs inversion to decrypt (`f_e⁻¹ = f_{e⁻¹ mod q}`,
//! Example 1 of the paper) and the Jacobi symbol to recognize quadratic
//! residues, i.e. membership in `DomF`.

use crate::error::BigNumError;
use crate::UBig;

/// Sign-magnitude helper used by the extended Euclidean algorithm.
#[derive(Clone, Debug)]
struct Signed {
    mag: UBig,
    neg: bool,
}

impl Signed {
    fn from_ubig(mag: UBig) -> Self {
        Signed { mag, neg: false }
    }

    /// `self - q * other`.
    fn sub_mul(&self, q: &UBig, other: &Signed) -> Signed {
        let prod = q.mul_ref(&other.mag);
        if self.neg == other.neg {
            // Same sign: magnitudes subtract.
            if self.mag >= prod {
                Signed {
                    mag: self.mag.checked_sub(&prod).expect("ordered"),
                    neg: self.neg,
                }
            } else {
                Signed {
                    mag: prod.checked_sub(&self.mag).expect("ordered"),
                    neg: !self.neg,
                }
            }
        } else {
            // Opposite signs: magnitudes add, sign of self wins.
            Signed {
                mag: self.mag.add_ref(&prod),
                neg: self.neg,
            }
        }
    }

    /// Reduces into `[0, m)`.
    fn to_residue(&self, m: &UBig) -> Result<UBig, BigNumError> {
        let r = self.mag.rem_ref(m)?;
        if self.neg && !r.is_zero() {
            Ok(m.checked_sub(&r).expect("r < m"))
        } else {
            Ok(r)
        }
    }
}

/// Result of the Jacobi symbol `(a/n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jacobi {
    /// `(a/n) = 1`.
    One,
    /// `(a/n) = -1`.
    MinusOne,
    /// `(a/n) = 0`, i.e. `gcd(a, n) > 1`.
    Zero,
}

impl Jacobi {
    /// The symbol as `+1`, `-1` or `0`.
    pub fn as_i32(self) -> i32 {
        match self {
            Jacobi::One => 1,
            Jacobi::MinusOne => -1,
            Jacobi::Zero => 0,
        }
    }
}

impl UBig {
    /// `(self + other) mod m`, for operands already reduced mod `m`.
    pub fn mod_add(&self, other: &UBig, m: &UBig) -> UBig {
        debug_assert!(self < m && other < m);
        let s = self.add_ref(other);
        if &s >= m {
            s.checked_sub(m).expect("s < 2m")
        } else {
            s
        }
    }

    /// `(self - other) mod m`, for operands already reduced mod `m`.
    pub fn mod_sub(&self, other: &UBig, m: &UBig) -> UBig {
        debug_assert!(self < m && other < m);
        if self >= other {
            self.checked_sub(other).expect("ordered")
        } else {
            m.checked_sub(other).expect("other < m").add_ref(self)
        }
    }

    /// `(self * other) mod m` via full product + reduction. For repeated
    /// multiplication under one modulus prefer
    /// [`crate::montgomery::MontgomeryCtx`].
    pub fn mod_mul(&self, other: &UBig, m: &UBig) -> Result<UBig, BigNumError> {
        self.mul_ref(other).rem_ref(m)
    }

    /// Greatest common divisor (Euclid; operands may be in any order).
    pub fn gcd(&self, other: &UBig) -> UBig {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem_ref(&b).expect("b nonzero");
            a = b;
            b = r;
        }
        a
    }

    /// Multiplicative inverse of `self` modulo `m`
    /// (errors if `gcd(self, m) != 1` or `m < 2`).
    pub fn mod_inv(&self, m: &UBig) -> Result<UBig, BigNumError> {
        if m < &UBig::two() {
            return Err(BigNumError::NonInvertible);
        }
        let a = self.rem_ref(m)?;
        if a.is_zero() {
            return Err(BigNumError::NonInvertible);
        }
        // Extended Euclid on (r0, r1) = (m, a), tracking only the `a`
        // coefficient t.
        let mut r0 = m.clone();
        let mut r1 = a;
        let mut t0 = Signed::from_ubig(UBig::zero());
        let mut t1 = Signed::from_ubig(UBig::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1)?;
            let t2 = t0.sub_mul(&q, &t1);
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return Err(BigNumError::NonInvertible);
        }
        t0.to_residue(m)
    }

    /// Jacobi symbol `(self / n)` for odd `n > 0`. For prime `n` this is
    /// the Legendre symbol, so `Jacobi::One` identifies quadratic residues.
    pub fn jacobi(&self, n: &UBig) -> Result<Jacobi, BigNumError> {
        if n.is_zero() || n.is_even() {
            return Err(BigNumError::EvenModulus);
        }
        let mut a = self.rem_ref(n)?;
        let mut n = n.clone();
        let mut result = 1i32;
        while !a.is_zero() {
            while a.is_even() {
                a = a.shr_bits(1);
                let n_mod_8 = n.limbs()[0] & 7;
                if n_mod_8 == 3 || n_mod_8 == 5 {
                    result = -result;
                }
            }
            std::mem::swap(&mut a, &mut n);
            if a.limbs()[0] & 3 == 3 && n.limbs()[0] & 3 == 3 {
                result = -result;
            }
            a = a.rem_ref(&n)?;
        }
        if n.is_one() {
            Ok(if result == 1 {
                Jacobi::One
            } else {
                Jacobi::MinusOne
            })
        } else {
            Ok(Jacobi::Zero)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_add_wraps() {
        let m = UBig::from(10u64);
        assert_eq!(
            UBig::from(7u64).mod_add(&UBig::from(8u64), &m),
            UBig::from(5u64)
        );
        assert_eq!(
            UBig::from(2u64).mod_add(&UBig::from(3u64), &m),
            UBig::from(5u64)
        );
    }

    #[test]
    fn mod_sub_wraps() {
        let m = UBig::from(10u64);
        assert_eq!(
            UBig::from(3u64).mod_sub(&UBig::from(8u64), &m),
            UBig::from(5u64)
        );
        assert_eq!(
            UBig::from(8u64).mod_sub(&UBig::from(3u64), &m),
            UBig::from(5u64)
        );
        assert_eq!(
            UBig::from(4u64).mod_sub(&UBig::from(4u64), &m),
            UBig::zero()
        );
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(UBig::from(12u64).gcd(&UBig::from(18u64)), UBig::from(6u64));
        assert_eq!(UBig::from(17u64).gcd(&UBig::from(31u64)), UBig::one());
        assert_eq!(UBig::zero().gcd(&UBig::from(5u64)), UBig::from(5u64));
        assert_eq!(UBig::from(5u64).gcd(&UBig::zero()), UBig::from(5u64));
    }

    #[test]
    fn mod_inv_small_prime() {
        let p = UBig::from(97u64);
        for a in 1..97u64 {
            let inv = UBig::from(a).mod_inv(&p).unwrap();
            let prod = UBig::from(a).mod_mul(&inv, &p).unwrap();
            assert_eq!(prod, UBig::one(), "a={a}");
        }
    }

    #[test]
    fn mod_inv_large() {
        let p = UBig::from_decimal_str("170141183460469231731687303715884105727").unwrap(); // 2^127-1
        let a = UBig::from_decimal_str("123456789012345678901234567890").unwrap();
        let inv = a.mod_inv(&p).unwrap();
        assert_eq!(a.mod_mul(&inv, &p).unwrap(), UBig::one());
    }

    #[test]
    fn mod_inv_failures() {
        assert_eq!(
            UBig::from(6u64).mod_inv(&UBig::from(9u64)),
            Err(BigNumError::NonInvertible)
        );
        assert_eq!(
            UBig::zero().mod_inv(&UBig::from(7u64)),
            Err(BigNumError::NonInvertible)
        );
        assert_eq!(
            UBig::from(3u64).mod_inv(&UBig::one()),
            Err(BigNumError::NonInvertible)
        );
    }

    #[test]
    fn jacobi_against_legendre_small_prime() {
        // Against direct Euler criterion over p = 23.
        let p = UBig::from(23u64);
        for a in 0..23u64 {
            let expect = if a == 0 {
                Jacobi::Zero
            } else {
                // Euler: a^((p-1)/2) mod p.
                let e = UBig::from(a).modpow(&UBig::from(11u64), &p);
                if e.is_one() {
                    Jacobi::One
                } else {
                    Jacobi::MinusOne
                }
            };
            assert_eq!(UBig::from(a).jacobi(&p).unwrap(), expect, "a={a}");
        }
    }

    #[test]
    fn jacobi_composite_modulus() {
        // (2/15) = (2/3)(2/5) = (-1)(-1) = 1; (3/15) = 0.
        let n = UBig::from(15u64);
        assert_eq!(UBig::from(2u64).jacobi(&n).unwrap(), Jacobi::One);
        assert_eq!(UBig::from(3u64).jacobi(&n).unwrap(), Jacobi::Zero);
    }

    #[test]
    fn jacobi_rejects_even_modulus() {
        assert!(UBig::from(3u64).jacobi(&UBig::from(8u64)).is_err());
        assert!(UBig::from(3u64).jacobi(&UBig::zero()).is_err());
    }
}
