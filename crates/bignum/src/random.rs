//! Uniform random sampling of big integers from any [`rand`] RNG.
//!
//! The protocols sample secret keys uniformly from `KeyF = {1..q-1}`
//! (paper §3.2.1, Example 1); [`random_range`] provides exactly that.

use rand::Rng;

use crate::limb::{Limb, LIMB_BITS};
use crate::UBig;

/// Uniform sample from `[0, 2^bits)`.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> UBig {
    if bits == 0 {
        return UBig::zero();
    }
    let limbs = bits.div_ceil(LIMB_BITS as u64) as usize;
    let mut v: Vec<Limb> = (0..limbs).map(|_| rng.next_u64()).collect();
    let top_bits = bits % LIMB_BITS as u64;
    if top_bits != 0 {
        v[limbs - 1] &= ((1 as Limb) << top_bits) - 1;
    }
    UBig::from_limbs(v)
}

/// Uniform sample with *exactly* `bits` bits (the top bit is forced on).
pub fn random_exact_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> UBig {
    assert!(bits > 0, "cannot sample a 0-bit nonzero value");
    random_bits(rng, bits - 1).with_bit(bits - 1)
}

/// Uniform sample from `[0, bound)` by rejection.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &UBig) -> UBig {
    assert!(!bound.is_zero(), "random_below with zero bound");
    let bits = bound.bit_len();
    loop {
        let candidate = random_bits(rng, bits);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Uniform sample from `[lo, hi)`.
///
/// # Panics
/// Panics if `lo >= hi`.
pub fn random_range<R: Rng + ?Sized>(rng: &mut R, lo: &UBig, hi: &UBig) -> UBig {
    assert!(lo < hi, "empty range in random_range");
    let width = hi.checked_sub(lo).expect("lo < hi");
    random_below(rng, &width).add_ref(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng();
        for bits in [1u64, 7, 63, 64, 65, 129, 1000] {
            for _ in 0..20 {
                let x = random_bits(&mut r, bits);
                assert!(x.bit_len() <= bits, "bits={bits}");
            }
        }
        assert_eq!(random_bits(&mut r, 0), UBig::zero());
    }

    #[test]
    fn random_exact_bits_sets_top_bit() {
        let mut r = rng();
        for bits in [1u64, 2, 64, 65, 257] {
            for _ in 0..10 {
                let x = random_exact_bits(&mut r, bits);
                assert_eq!(x.bit_len(), bits, "bits={bits}");
            }
        }
    }

    #[test]
    fn random_below_stays_below() {
        let mut r = rng();
        let bound = UBig::from_decimal_str("1000000000000000000000000000").unwrap();
        for _ in 0..100 {
            assert!(random_below(&mut r, &bound) < bound);
        }
        // A tight power-of-two-plus-one bound exercises rejection.
        let bound = UBig::one().shl_bits(128).add_small(1);
        for _ in 0..100 {
            assert!(random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_below_one_is_zero() {
        let mut r = rng();
        assert_eq!(random_below(&mut r, &UBig::one()), UBig::zero());
    }

    #[test]
    fn random_range_bounds() {
        let mut r = rng();
        let lo = UBig::from(1000u64);
        let hi = UBig::from(1010u64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let x = random_range(&mut r, &lo, &hi);
            assert!(x >= lo && x < hi);
            seen.insert(x.to_u64().unwrap());
        }
        // With 500 draws over 10 values we should see them all.
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_bits(&mut StdRng::seed_from_u64(42), 256);
        let b = random_bits(&mut StdRng::seed_from_u64(42), 256);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn random_below_zero_panics() {
        random_below(&mut rng(), &UBig::zero());
    }
}
