//! Addition and subtraction for [`UBig`].

use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::error::BigNumError;
use crate::limb::{adc, sbb, Limb};
use crate::UBig;

impl UBig {
    /// `self + other`.
    pub fn add_ref(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: Limb = 0;
        #[allow(clippy::needless_range_loop)] // paired walk over long/short
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            out.push(adc(long[i], b, &mut carry));
        }
        if carry != 0 {
            out.push(carry);
        }
        UBig::from_limbs(out)
    }

    /// `self - other`, or [`BigNumError::Underflow`] if `other > self`.
    pub fn checked_sub(&self, other: &UBig) -> Result<UBig, BigNumError> {
        if other > self {
            return Err(BigNumError::Underflow);
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: Limb = 0;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            out.push(sbb(self.limbs[i], b, &mut borrow));
        }
        debug_assert_eq!(borrow, 0, "underflow despite ordering check");
        Ok(UBig::from_limbs(out))
    }

    /// `self + v` for a single limb.
    pub fn add_small(&self, v: u64) -> UBig {
        self.add_ref(&UBig::from(v))
    }

    /// `self - v` for a single limb, or an underflow error.
    pub fn sub_small(&self, v: u64) -> Result<UBig, BigNumError> {
        self.checked_sub(&UBig::from(v))
    }
}

impl Add for UBig {
    type Output = UBig;
    fn add(self, rhs: UBig) -> UBig {
        self.add_ref(&rhs)
    }
}

impl Add<&UBig> for UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        self.add_ref(rhs)
    }
}

impl Add for &UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        self.add_ref(rhs)
    }
}

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        *self = self.add_ref(rhs);
    }
}

/// Panicking subtraction, mirroring the standard library's unsigned
/// integers. Use [`UBig::checked_sub`] when the ordering is not known.
impl Sub for &UBig {
    type Output = UBig;
    fn sub(self, rhs: &UBig) -> UBig {
        self.checked_sub(rhs).expect("UBig subtraction underflow")
    }
}

impl Sub for UBig {
    type Output = UBig;
    fn sub(self, rhs: UBig) -> UBig {
        (&self) - (&rhs)
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        *self = (&*self) - rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_carries_across_limbs() {
        let a = UBig::from(u64::MAX);
        let b = UBig::one();
        assert_eq!(a + b, UBig::from_limbs(vec![0, 1]));
    }

    #[test]
    fn add_is_commutative_with_mixed_lengths() {
        let a = UBig::from_limbs(vec![5, 6, 7]);
        let b = UBig::from(9u64);
        assert_eq!(a.add_ref(&b), b.add_ref(&a));
    }

    #[test]
    fn add_zero_is_identity() {
        let a = UBig::from(12345u64);
        assert_eq!(a.add_ref(&UBig::zero()), a);
        assert_eq!(UBig::zero().add_ref(&a), a);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = UBig::from_limbs(vec![0, 1]); // 2^64
        let b = UBig::one();
        assert_eq!((&a - &b), UBig::from(u64::MAX));
    }

    #[test]
    fn sub_to_zero_normalizes() {
        let a = UBig::from_limbs(vec![3, 4]);
        assert_eq!(&a - &a, UBig::zero());
    }

    #[test]
    fn checked_sub_underflow() {
        let a = UBig::from(3u64);
        let b = UBig::from(4u64);
        assert_eq!(a.checked_sub(&b), Err(BigNumError::Underflow));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_operator_panics_on_underflow() {
        let _ = UBig::one() - UBig::two();
    }

    #[test]
    fn small_helpers() {
        let a = UBig::from(10u64);
        assert_eq!(a.add_small(5), UBig::from(15u64));
        assert_eq!(a.sub_small(5).unwrap(), UBig::from(5u64));
        assert!(a.sub_small(11).is_err());
    }
}
