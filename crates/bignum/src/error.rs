//! Error type for the big-integer layer.

use std::fmt;

/// Errors produced by `minshare-bignum` operations.
///
/// Arithmetic that cannot fail (addition, multiplication, shifts) panics
/// only on internal invariant violations; everything user-input-driven
/// (parsing, division, inversion, encoding) returns this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BigNumError {
    /// Division or reduction by zero.
    DivisionByZero,
    /// Subtraction would underflow (`a - b` with `a < b`).
    Underflow,
    /// A character outside the expected digit alphabet.
    ParseError {
        /// The offending character.
        bad_char: char,
    },
    /// An empty string (or string of separators only) was parsed.
    EmptyInput,
    /// The element has no inverse modulo the given modulus.
    NonInvertible,
    /// Montgomery arithmetic requires an odd modulus greater than one.
    EvenModulus,
    /// A value does not fit in the requested fixed-width encoding.
    ValueTooLarge {
        /// Bits required by the value.
        bits: u64,
        /// Bits available in the target encoding.
        capacity_bits: u64,
    },
    /// Safe-prime generation exceeded its iteration budget.
    GenerationExhausted {
        /// Number of candidates examined before giving up.
        attempts: u64,
    },
    /// A requested bit width is too small for the operation.
    BitWidthTooSmall {
        /// The width that was requested.
        requested: u64,
        /// The smallest width the operation supports.
        minimum: u64,
    },
}

impl fmt::Display for BigNumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BigNumError::DivisionByZero => write!(f, "division by zero"),
            BigNumError::Underflow => write!(f, "unsigned subtraction underflow"),
            BigNumError::ParseError { bad_char } => {
                write!(f, "invalid digit {bad_char:?} in number literal")
            }
            BigNumError::EmptyInput => write!(f, "empty number literal"),
            BigNumError::NonInvertible => write!(f, "element is not invertible modulo the modulus"),
            BigNumError::EvenModulus => {
                write!(f, "Montgomery arithmetic requires an odd modulus > 1")
            }
            BigNumError::ValueTooLarge {
                bits,
                capacity_bits,
            } => write!(
                f,
                "value needs {bits} bits but the encoding holds {capacity_bits}"
            ),
            BigNumError::GenerationExhausted { attempts } => {
                write!(f, "prime generation gave up after {attempts} candidates")
            }
            BigNumError::BitWidthTooSmall { requested, minimum } => {
                write!(
                    f,
                    "bit width {requested} below the supported minimum {minimum}"
                )
            }
        }
    }
}

impl std::error::Error for BigNumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BigNumError::ValueTooLarge {
            bits: 130,
            capacity_bits: 128,
        };
        let s = e.to_string();
        assert!(s.contains("130") && s.contains("128"));
        assert!(BigNumError::DivisionByZero.to_string().contains("zero"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&BigNumError::Underflow);
    }
}
