//! Modular exponentiation.
//!
//! [`UBig::modpow`] is the crate's general entry point: it uses Montgomery
//! arithmetic for odd moduli (the only case the protocols need — safe
//! primes are odd) and falls back to binary square-and-multiply with
//! division-based reduction otherwise. The fallback doubles as an
//! independent oracle for testing the Montgomery path.

use crate::montgomery::MontgomeryCtx;
use crate::UBig;

impl UBig {
    /// `self^exponent mod modulus`.
    ///
    /// # Panics
    /// Panics if `modulus` is zero (a programming error in this crate's
    /// callers: protocol code always works modulo a fixed public prime).
    pub fn modpow(&self, exponent: &UBig, modulus: &UBig) -> UBig {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return UBig::zero();
        }
        if modulus.is_odd() {
            let ctx = MontgomeryCtx::new(modulus).expect("odd modulus > 1");
            return self.modpow_with_ctx(exponent, &ctx);
        }
        self.modpow_binary(exponent, modulus)
    }

    /// `self^exponent mod ctx.modulus()` through an existing Montgomery
    /// context. Same-modulus loops should build the context once and call
    /// this instead of [`UBig::modpow`], which pays the `R mod n` / `R² mod n`
    /// precompute divisions on every call.
    pub fn modpow_with_ctx(&self, exponent: &UBig, ctx: &MontgomeryCtx) -> UBig {
        ctx.pow(self, exponent)
    }

    /// Schoolbook square-and-multiply with division-based reduction.
    /// Correct for any modulus ≥ 2; used as the testing oracle.
    pub fn modpow_binary(&self, exponent: &UBig, modulus: &UBig) -> UBig {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return UBig::zero();
        }
        let mut base = self.rem_ref(modulus).expect("modulus nonzero");
        let mut result = UBig::one();
        let bits = exponent.bit_len();
        for i in 0..bits {
            if exponent.bit(i) {
                result = result.mod_mul(&base, modulus).expect("modulus nonzero");
            }
            if i + 1 < bits {
                base = base.mod_mul(&base, modulus).expect("modulus nonzero");
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases() {
        let m = UBig::from(1000u64);
        assert_eq!(
            UBig::from(2u64).modpow(&UBig::from(10u64), &m),
            UBig::from(24u64)
        );
        assert_eq!(UBig::from(5u64).modpow(&UBig::zero(), &m), UBig::one());
        assert_eq!(UBig::from(5u64).modpow(&UBig::one(), &m), UBig::from(5u64));
        assert_eq!(UBig::zero().modpow(&UBig::from(5u64), &m), UBig::zero());
    }

    #[test]
    fn modulus_one_gives_zero() {
        assert_eq!(
            UBig::from(5u64).modpow(&UBig::from(3u64), &UBig::one()),
            UBig::zero()
        );
    }

    #[test]
    fn fermat_little_theorem() {
        let p = UBig::from(1_000_000_007u64);
        let pm1 = p.sub_small(1).unwrap();
        for a in [2u64, 3, 65537, 999_999_999] {
            assert_eq!(UBig::from(a).modpow(&pm1, &p), UBig::one(), "a={a}");
        }
    }

    #[test]
    fn even_modulus_fallback() {
        // 3^5 mod 16 = 243 mod 16 = 3.
        assert_eq!(
            UBig::from(3u64).modpow(&UBig::from(5u64), &UBig::from(16u64)),
            UBig::from(3u64)
        );
    }

    #[test]
    fn binary_matches_u128_oracle() {
        let m = 0xffff_fffb_u64; // prime
        let mut acc: u128 = 1;
        let base = 0x1234_5678u64;
        for e in 0..50u64 {
            let fast = UBig::from(base).modpow_binary(&UBig::from(e), &UBig::from(m));
            assert_eq!(fast.to_u64(), Some(acc as u64), "e={e}");
            acc = acc * base as u128 % m as u128;
        }
    }

    #[test]
    #[should_panic(expected = "zero modulus")]
    fn zero_modulus_panics() {
        let _ = UBig::one().modpow(&UBig::one(), &UBig::zero());
    }
}
