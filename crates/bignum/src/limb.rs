//! Limb-level primitives shared by the multi-precision algorithms.
//!
//! A limb is a `u64`; double-width intermediates use `u128`. These helpers
//! are the only place carry/borrow propagation is written by hand — the
//! higher-level algorithms are expressed in terms of them.

/// The machine word the big integers are built from.
pub type Limb = u64;

/// Number of bits in a [`Limb`].
pub const LIMB_BITS: u32 = 64;

/// Add with carry: returns `a + b + carry`, updating `carry` to the new
/// carry (0 or 1).
#[inline]
pub fn adc(a: Limb, b: Limb, carry: &mut Limb) -> Limb {
    let t = a as u128 + b as u128 + *carry as u128;
    *carry = (t >> LIMB_BITS) as Limb;
    t as Limb
}

/// Subtract with borrow: returns `a - b - borrow`, updating `borrow` to the
/// new borrow (0 or 1).
#[inline]
pub fn sbb(a: Limb, b: Limb, borrow: &mut Limb) -> Limb {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(*borrow as u128);
    *borrow = ((t >> LIMB_BITS) as Limb) & 1;
    t as Limb
}

/// Multiply-accumulate: returns the low limb of `acc + b * c + carry`,
/// updating `carry` to the high limb.
#[inline]
pub fn mac(acc: Limb, b: Limb, c: Limb, carry: &mut Limb) -> Limb {
    let t = acc as u128 + (b as u128) * (c as u128) + *carry as u128;
    *carry = (t >> LIMB_BITS) as Limb;
    t as Limb
}

/// Split a double-width product `a * b` into `(low, high)` limbs.
#[inline]
pub fn mul_wide(a: Limb, b: Limb) -> (Limb, Limb) {
    let t = (a as u128) * (b as u128);
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Divide the double-width value `(hi, lo)` by `d`, returning
/// `(quotient, remainder)`. Requires `hi < d` so the quotient fits a limb.
#[inline]
pub fn div_wide(hi: Limb, lo: Limb, d: Limb) -> (Limb, Limb) {
    debug_assert!(hi < d, "div_wide quotient would overflow a limb");
    let n = ((hi as u128) << LIMB_BITS) | lo as u128;
    ((n / d as u128) as Limb, (n % d as u128) as Limb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        let mut c = 0;
        assert_eq!(adc(Limb::MAX, 1, &mut c), 0);
        assert_eq!(c, 1);
        assert_eq!(adc(1, 2, &mut c), 4); // includes previous carry
        assert_eq!(c, 0);
    }

    #[test]
    fn adc_max_operands_with_carry() {
        let mut c = 1;
        assert_eq!(adc(Limb::MAX, Limb::MAX, &mut c), Limb::MAX);
        assert_eq!(c, 1);
    }

    #[test]
    fn sbb_borrows() {
        let mut b = 0;
        assert_eq!(sbb(0, 1, &mut b), Limb::MAX);
        assert_eq!(b, 1);
        assert_eq!(sbb(5, 2, &mut b), 2); // minus previous borrow
        assert_eq!(b, 0);
    }

    #[test]
    fn mac_accumulates_full_width() {
        let mut c = 0;
        let lo = mac(Limb::MAX, Limb::MAX, Limb::MAX, &mut c);
        // MAX + MAX*MAX = MAX + (2^128 - 2^65 + 1) fits exactly.
        let expect = Limb::MAX as u128 + (Limb::MAX as u128) * (Limb::MAX as u128);
        assert_eq!(lo, expect as Limb);
        assert_eq!(c, (expect >> 64) as Limb);
    }

    #[test]
    fn mul_wide_matches_u128() {
        let (lo, hi) = mul_wide(0xdead_beef_dead_beef, 0x1234_5678_9abc_def0);
        let t = 0xdead_beef_dead_beefu128 * 0x1234_5678_9abc_def0u128;
        assert_eq!(lo, t as Limb);
        assert_eq!(hi, (t >> 64) as Limb);
    }

    #[test]
    fn div_wide_matches_u128() {
        let (q, r) = div_wide(3, 42, 7);
        let n = (3u128 << 64) | 42;
        assert_eq!(q as u128, n / 7);
        assert_eq!(r as u128, n % 7);
    }
}
