//! Division and remainder for [`UBig`] — Knuth's Algorithm D with a
//! single-limb fast path.

use std::ops::{Div, Rem};

use crate::error::BigNumError;
use crate::limb::{div_wide, sbb, Limb, LIMB_BITS};
use crate::UBig;

impl UBig {
    /// Computes `(self / divisor, self % divisor)`.
    pub fn div_rem(&self, divisor: &UBig) -> Result<(UBig, UBig), BigNumError> {
        if divisor.is_zero() {
            return Err(BigNumError::DivisionByZero);
        }
        if self < divisor {
            return Ok((UBig::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_small(divisor.limbs[0])?;
            return Ok((q, UBig::from(r)));
        }
        Ok(div_rem_knuth(self, divisor))
    }

    /// Computes `(self / d, self % d)` for a single-limb divisor.
    pub fn div_rem_small(&self, d: u64) -> Result<(UBig, u64), BigNumError> {
        if d == 0 {
            return Err(BigNumError::DivisionByZero);
        }
        let mut out = vec![0 as Limb; self.limbs.len()];
        let mut rem: Limb = 0;
        for i in (0..self.limbs.len()).rev() {
            let (q, r) = div_wide(rem, self.limbs[i], d);
            out[i] = q;
            rem = r;
        }
        Ok((UBig::from_limbs(out), rem))
    }

    /// `self % modulus`.
    pub fn rem_ref(&self, modulus: &UBig) -> Result<UBig, BigNumError> {
        Ok(self.div_rem(modulus)?.1)
    }
}

/// Knuth Algorithm D (TAOCP vol. 2, 4.3.1) for `u / v` with `v` at least
/// two limbs and `u >= v`.
fn div_rem_knuth(u: &UBig, v: &UBig) -> (UBig, UBig) {
    let n = v.limbs.len();
    let m = u.limbs.len() - n;

    // D1: normalize so the top limb of v has its high bit set.
    let shift = v.limbs[n - 1].leading_zeros();
    let vn = v.shl_bits(shift as u64);
    let mut un = u.shl_bits(shift as u64).limbs;
    un.resize(u.limbs.len() + 1, 0); // extra high limb for the loop

    let vtop = vn.limbs[n - 1];
    let vsecond = vn.limbs[n - 2];
    let mut q = vec![0 as Limb; m + 1];

    // D2-D7: main loop over quotient digits.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two limbs of the current window.
        let numer = ((un[j + n] as u128) << LIMB_BITS) | un[j + n - 1] as u128;
        let mut qhat = numer / vtop as u128;
        let mut rhat = numer % vtop as u128;
        // Correct qhat: it can be at most 2 too large.
        while qhat >> LIMB_BITS != 0
            || qhat * vsecond as u128 > ((rhat << LIMB_BITS) | un[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += vtop as u128;
            if rhat >> LIMB_BITS != 0 {
                break;
            }
        }
        let mut qhat = qhat as Limb;

        // D4: multiply and subtract un[j..j+n+1] -= qhat * vn.
        let mut borrow: Limb = 0;
        let mut mul_carry: Limb = 0;
        for i in 0..n {
            let p = qhat as u128 * vn.limbs[i] as u128 + mul_carry as u128;
            mul_carry = (p >> LIMB_BITS) as Limb;
            un[j + i] = sbb(un[j + i], p as Limb, &mut borrow);
        }
        un[j + n] = sbb(un[j + n], mul_carry, &mut borrow);

        // D5-D6: if we subtracted too much, add one multiple of vn back.
        if borrow != 0 {
            qhat -= 1;
            let mut carry: Limb = 0;
            for i in 0..n {
                un[j + i] = crate::limb::adc(un[j + i], vn.limbs[i], &mut carry);
            }
            un[j + n] = un[j + n].wrapping_add(carry);
        }
        q[j] = qhat;
    }

    // D8: denormalize the remainder.
    un.truncate(n);
    let rem = UBig::from_limbs(un).shr_bits(shift as u64);
    (UBig::from_limbs(q), rem)
}

impl Div for &UBig {
    type Output = UBig;
    fn div(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).expect("division by zero").0
    }
}

impl Rem for &UBig {
    type Output = UBig;
    fn rem(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).expect("division by zero").1
    }
}

impl Div for UBig {
    type Output = UBig;
    fn div(self, rhs: UBig) -> UBig {
        (&self) / (&rhs)
    }
}

impl Rem for UBig {
    type Output = UBig;
    fn rem(self, rhs: UBig) -> UBig {
        (&self) % (&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(hex: &str) -> UBig {
        UBig::from_hex_str(hex).unwrap()
    }

    #[test]
    fn div_by_zero_is_error() {
        assert_eq!(
            UBig::one().div_rem(&UBig::zero()),
            Err(BigNumError::DivisionByZero)
        );
        assert_eq!(
            UBig::one().div_rem_small(0),
            Err(BigNumError::DivisionByZero)
        );
    }

    #[test]
    fn small_dividend() {
        let (q, r) = UBig::from(5u64).div_rem(&UBig::from(7u64)).unwrap();
        assert_eq!(q, UBig::zero());
        assert_eq!(r, UBig::from(5u64));
    }

    #[test]
    fn single_limb_path_matches_u128() {
        let u = 0xdead_beef_cafe_babe_1234_5678_9abc_def0u128;
        let d = 0x1_0000_0001u64;
        let (q, r) = UBig::from(u).div_rem_small(d).unwrap();
        assert_eq!(q.to_u128(), Some(u / d as u128));
        assert_eq!(r as u128, u % d as u128);
    }

    #[test]
    fn knuth_reconstructs_dividend() {
        let u = big("123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
        let v = big("fedcba98765432100123456789abcdef");
        let (q, r) = u.div_rem(&v).unwrap();
        assert!(r < v);
        assert_eq!(q.mul_ref(&v).add_ref(&r), u);
    }

    #[test]
    fn knuth_exact_division() {
        let v = big("fedcba98765432100123456789abcdef11223344");
        let q_expect = big("13579bdf02468ace");
        let u = v.mul_ref(&q_expect);
        let (q, r) = u.div_rem(&v).unwrap();
        assert_eq!(q, q_expect);
        assert_eq!(r, UBig::zero());
    }

    #[test]
    fn knuth_needs_addback_case() {
        // Crafted so qhat over-estimates: dividend with high limbs near MAX
        // and divisor with a small second limb.
        let u = UBig::from_limbs(vec![0, u64::MAX, u64::MAX - 1, u64::MAX]);
        let v = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = u.div_rem(&v).unwrap();
        assert!(r < v);
        assert_eq!(q.mul_ref(&v).add_ref(&r), u);
    }

    #[test]
    fn rem_operator() {
        let a = UBig::from(1_000_000_007u64 * 3 + 17);
        let m = UBig::from(1_000_000_007u64);
        assert_eq!(&a % &m, UBig::from(17u64));
        assert_eq!(&a / &m, UBig::from(3u64));
    }

    #[test]
    fn division_identity_randomized() {
        // Deterministic pseudo-random sweep across limb lengths, including
        // the boundary between the small and Knuth paths.
        let mut x: u64 = 0x853c_49e6_748f_ea9b;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for ulen in 1..8usize {
            for vlen in 1..=ulen {
                let u = UBig::from_limbs((0..ulen).map(|_| next()).collect());
                let v = UBig::from_limbs((0..vlen).map(|_| next()).collect());
                if v.is_zero() {
                    continue;
                }
                let (q, r) = u.div_rem(&v).unwrap();
                assert!(r < v, "remainder bound failed at ({ulen},{vlen})");
                assert_eq!(q.mul_ref(&v).add_ref(&r), u, "identity at ({ulen},{vlen})");
            }
        }
    }
}
