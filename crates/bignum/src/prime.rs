//! Primality testing: trial division by a small-prime sieve followed by
//! Miller–Rabin with random bases.

use std::sync::OnceLock;

use rand::Rng;

use crate::montgomery::MontgomeryCtx;
use crate::random::random_range;
use crate::UBig;

/// Upper bound of the trial-division sieve.
const SIEVE_LIMIT: usize = 1 << 13;

/// Default number of Miller–Rabin rounds. Each round has soundness error
/// ≤ 1/4, so 40 rounds give error ≤ 2⁻⁸⁰ — far below any practical risk
/// for the protocol's public parameters.
pub const DEFAULT_MR_ROUNDS: u32 = 40;

/// The primes below the sieve limit (2^13), computed once.
pub fn small_primes() -> &'static [u64] {
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let mut composite = vec![false; SIEVE_LIMIT];
        let mut primes = Vec::new();
        for i in 2..SIEVE_LIMIT {
            if !composite[i] {
                primes.push(i as u64);
                let mut j = i * i;
                while j < SIEVE_LIMIT {
                    composite[j] = true;
                    j += i;
                }
            }
        }
        primes
    })
}

/// Outcome of trial division, before any Miller–Rabin work.
enum Trial {
    Composite,
    Prime,
    Unknown,
}

fn trial_division(n: &UBig) -> Trial {
    if let Some(v) = n.to_u64() {
        if v < 2 {
            return Trial::Composite;
        }
        if v < (SIEVE_LIMIT * SIEVE_LIMIT) as u64 {
            // Fully decidable by the sieve.
            for &p in small_primes() {
                if p * p > v {
                    return Trial::Prime;
                }
                if v % p == 0 {
                    return if v == p {
                        Trial::Prime
                    } else {
                        Trial::Composite
                    };
                }
            }
            return Trial::Prime;
        }
    }
    for &p in small_primes() {
        let (_, r) = n.div_rem_small(p).expect("p > 0");
        if r == 0 {
            return Trial::Composite;
        }
    }
    Trial::Unknown
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Deterministically correct for everything the sieve decides (all
/// `n < 2²⁶`); probabilistically correct beyond, with error ≤ 4^-rounds.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &UBig, rounds: u32, rng: &mut R) -> bool {
    match trial_division(n) {
        Trial::Composite => return false,
        Trial::Prime => return true,
        Trial::Unknown => {}
    }
    if n.is_even() {
        return false; // even and > 2
    }

    // n - 1 = d · 2^s with d odd.
    let n_minus_1 = n.sub_small(1).expect("n >= 3");
    let s = n_minus_1.trailing_zeros().expect("n-1 > 0");
    let d = n_minus_1.shr_bits(s);

    let ctx = MontgomeryCtx::new(n).expect("odd n > 2");
    let two = UBig::two();

    'rounds: for _ in 0..rounds {
        let a = random_range(rng, &two, &n_minus_1);
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue 'rounds;
        }
        for _ in 0..s - 1 {
            x = ctx.mul(&x, &x);
            if x == n_minus_1 {
                continue 'rounds;
            }
            if x.is_one() {
                // Nontrivial square root of 1 — certainly composite.
                return false;
            }
        }
        return false;
    }
    true
}

/// Convenience wrapper using [`DEFAULT_MR_ROUNDS`].
pub fn is_prime<R: Rng + ?Sized>(n: &UBig, rng: &mut R) -> bool {
    is_probable_prime(n, DEFAULT_MR_ROUNDS, rng)
}

/// Generates a random prime with exactly `bits` bits (top and bottom bits
/// forced on, so products of two such primes have predictable widths —
/// what Paillier key generation needs).
pub fn generate_prime<R: Rng + ?Sized>(
    rng: &mut R,
    bits: u64,
    max_attempts: u64,
) -> Result<UBig, crate::error::BigNumError> {
    if bits < 2 {
        return Err(crate::error::BigNumError::BitWidthTooSmall {
            requested: bits,
            minimum: 2,
        });
    }
    for _ in 0..max_attempts {
        let mut candidate = crate::random::random_exact_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add_small(1);
        }
        if candidate.bit_len() != bits {
            continue;
        }
        if is_probable_prime(&candidate, DEFAULT_MR_ROUNDS, rng) {
            return Ok(candidate);
        }
    }
    Err(crate::error::BigNumError::GenerationExhausted {
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x9e3779b97f4a7c15)
    }

    #[test]
    fn sieve_starts_correctly() {
        let p = small_primes();
        assert_eq!(&p[..10], &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(p.last().copied().unwrap() < SIEVE_LIMIT as u64);
    }

    #[test]
    fn small_numbers() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 11, 97, 7919, 65537];
        let composites = [0u64, 1, 4, 6, 9, 100, 7917, 65535];
        for p in primes {
            assert!(is_prime(&UBig::from(p), &mut r), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(&UBig::from(c), &mut r), "{c} should be composite");
        }
    }

    #[test]
    fn matches_sieve_exhaustively_to_10000() {
        let mut r = rng();
        let sieve: std::collections::HashSet<u64> = small_primes().iter().copied().collect();
        // Only sweep within the sieve's range; beyond SIEVE_LIMIT the
        // sieve set is incomplete by construction.
        for n in 0..SIEVE_LIMIT as u64 {
            assert_eq!(
                is_probable_prime(&UBig::from(n), 10, &mut r),
                sieve.contains(&n),
                "n={n}"
            );
        }
    }

    #[test]
    fn known_large_primes() {
        let mut r = rng();
        // 2^89-1 and 2^107-1 are Mersenne primes.
        for e in [89u64, 107] {
            let p = UBig::one().shl_bits(e).sub_small(1).unwrap();
            assert!(is_prime(&p, &mut r), "2^{e}-1");
        }
        // 2^101-1 is composite.
        let c = UBig::one().shl_bits(101).sub_small(1).unwrap();
        assert!(!is_prime(&c, &mut r));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut r = rng();
        // Fermat pseudoprimes to many bases; Miller-Rabin must reject.
        for n in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(&UBig::from(n), &mut r), "Carmichael {n}");
        }
    }

    #[test]
    fn generate_prime_hits_exact_widths() {
        let mut r = rng();
        for bits in [8u64, 16, 48, 96] {
            let p = generate_prime(&mut r, bits, 100_000).unwrap();
            assert_eq!(p.bit_len(), bits, "bits={bits}");
            assert!(is_prime(&p, &mut r));
            assert!(p.is_odd());
        }
    }

    #[test]
    fn generate_prime_rejects_tiny_widths() {
        let mut r = rng();
        assert!(generate_prime(&mut r, 1, 10).is_err());
    }

    #[test]
    fn product_of_two_large_primes_rejected() {
        let mut r = rng();
        let p = UBig::one().shl_bits(89).sub_small(1).unwrap();
        let q = UBig::one().shl_bits(107).sub_small(1).unwrap();
        assert!(!is_prime(&p.mul_ref(&q), &mut r));
    }
}
