//! Multiplication for [`UBig`]: schoolbook below, Karatsuba above a
//! threshold.
//!
//! The commutative-encryption workload is dominated by Montgomery
//! multiplication inside modular exponentiation (see
//! [`crate::montgomery`]); plain multiplication here mainly serves
//! reduction set-up (`R² mod n`), parsing, and tests, so a simple Karatsuba
//! is more than adequate.

use std::ops::{Mul, MulAssign};

use crate::limb::{adc, mac, Limb};
use crate::UBig;

/// Operand size (in limbs) above which Karatsuba splitting is used.
const KARATSUBA_THRESHOLD: usize = 32;

/// Schoolbook product of two limb slices.
fn mul_schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0 as Limb; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] = mac(out[i + j], ai, bj, &mut carry);
        }
        out[i + b.len()] = carry;
    }
    out
}

/// Adds `b` into `a[offset..]`, propagating the carry. `a` must be long
/// enough to absorb it.
fn add_into(a: &mut [Limb], b: &[Limb], offset: usize) {
    let mut carry: Limb = 0;
    let mut i = 0;
    while i < b.len() {
        a[offset + i] = adc(a[offset + i], b[i], &mut carry);
        i += 1;
    }
    while carry != 0 {
        let idx = offset + i;
        debug_assert!(idx < a.len(), "add_into carry past end");
        a[idx] = adc(a[idx], 0, &mut carry);
        i += 1;
    }
}

/// Karatsuba product; falls back to schoolbook for small operands.
fn mul_karatsuba(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let split = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);

    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);
    // (a0 + a1)(b0 + b1)
    let asum = UBig::from_limbs(a0.to_vec()).add_ref(&UBig::from_limbs(a1.to_vec()));
    let bsum = UBig::from_limbs(b0.to_vec()).add_ref(&UBig::from_limbs(b1.to_vec()));
    let zmid_full = mul_karatsuba(&asum.limbs, &bsum.limbs);
    // z1 = zmid - z0 - z2 (never underflows)
    let zmid = UBig::from_limbs(zmid_full);
    let z1 = zmid
        .checked_sub(&UBig::from_limbs(z0.clone()))
        .and_then(|t| t.checked_sub(&UBig::from_limbs(z2.clone())))
        .expect("Karatsuba middle term cannot underflow");

    let mut out = vec![0 as Limb; a.len() + b.len()];
    add_into(&mut out, &z0, 0);
    add_into(&mut out, &z1.limbs, split);
    add_into(&mut out, &z2, 2 * split);
    out
}

impl UBig {
    /// `self * other`.
    pub fn mul_ref(&self, other: &UBig) -> UBig {
        UBig::from_limbs(mul_karatsuba(&self.limbs, &other.limbs))
    }

    /// `self * v` for a single limb.
    pub fn mul_small(&self, v: u64) -> UBig {
        if v == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: Limb = 0;
        for &l in &self.limbs {
            out.push(mac(0, l, v, &mut carry));
        }
        out.push(carry);
        UBig::from_limbs(out)
    }

    /// `self * self`.
    pub fn square(&self) -> UBig {
        self.mul_ref(self)
    }
}

impl Mul for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        self.mul_ref(rhs)
    }
}

impl Mul for UBig {
    type Output = UBig;
    fn mul(self, rhs: UBig) -> UBig {
        self.mul_ref(&rhs)
    }
}

impl Mul<&UBig> for UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        self.mul_ref(rhs)
    }
}

impl MulAssign<&UBig> for UBig {
    fn mul_assign(&mut self, rhs: &UBig) {
        *self = self.mul_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(hex: &str) -> UBig {
        UBig::from_hex_str(hex).unwrap()
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0x1234_5678_9abc_def0u64;
        let b = 0xfedc_ba98_7654_3210u64;
        let prod = UBig::from(a).mul_ref(&UBig::from(b));
        assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = big("deadbeefdeadbeefdeadbeef");
        assert_eq!(a.mul_ref(&UBig::zero()), UBig::zero());
        assert_eq!(a.mul_ref(&UBig::one()), a);
    }

    #[test]
    fn mul_small_carries() {
        let a = UBig::from(u64::MAX);
        assert_eq!(
            a.mul_small(u64::MAX).to_u128(),
            Some(u64::MAX as u128 * u64::MAX as u128)
        );
        assert_eq!(a.mul_small(0), UBig::zero());
    }

    #[test]
    fn square_matches_mul() {
        let a = big("fedcba9876543210fedcba9876543210");
        assert_eq!(a.square(), a.mul_ref(&a));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to trigger the Karatsuba path.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for i in 0..(KARATSUBA_THRESHOLD * 2 + 3) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            limbs_a.push(x);
            x = x.rotate_left(17) ^ 0xdead_beef;
            limbs_b.push(x);
        }
        let a = UBig::from_limbs(limbs_a.clone());
        let b = UBig::from_limbs(limbs_b.clone());
        let fast = a.mul_ref(&b);
        let slow = UBig::from_limbs(mul_schoolbook(&limbs_a, &limbs_b));
        assert_eq!(fast, slow);
    }

    #[test]
    fn distributivity_spot_check() {
        let a = big("123456789abcdef0123456789abcdef0");
        let b = big("fedcba9876543210");
        let c = big("55555555aaaaaaaa5555555566666666");
        let left = a.mul_ref(&b.add_ref(&c));
        let right = a.mul_ref(&b).add_ref(&a.mul_ref(&c));
        assert_eq!(left, right);
    }
}
