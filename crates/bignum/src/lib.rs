//! # minshare-bignum
//!
//! Arbitrary-precision unsigned integer and modular arithmetic, built from
//! scratch for the `minshare` reproduction of *"Information Sharing Across
//! Private Databases"* (Agrawal, Evfimievski, Srikant — SIGMOD 2003).
//!
//! The paper's commutative encryption is the power function
//! `f_e(x) = x^e mod p` over the quadratic residues modulo a *safe prime*
//! `p = 2q + 1`. Everything that construction needs lives here:
//!
//! * [`UBig`] — little-endian limb vector with schoolbook + Karatsuba
//!   multiplication and Knuth Algorithm D division,
//! * modular arithmetic ([`modular`]) — addition, subtraction,
//!   multiplication, extended-Euclid inversion and the Jacobi symbol,
//! * [`montgomery::MontgomeryCtx`] — CIOS Montgomery multiplication and
//!   fixed-window modular exponentiation (the paper's `Ce` cost unit),
//! * [`prime`] — deterministic trial division plus Miller–Rabin,
//! * [`safe_prime`] — safe-prime generation and the standard RFC 2409 /
//!   RFC 3526 safe primes (768–2048 bits) used by the benchmarks,
//! * [`random`] — uniform sampling below a bound from any [`rand`] RNG.
//!
//! The crate deliberately has no arithmetic dependencies: the big-integer
//! layer is one of the substrates the reproduction builds rather than
//! imports.
//!
//! ## Example
//!
//! ```
//! use minshare_bignum::{UBig, montgomery::MontgomeryCtx};
//!
//! let p = UBig::from_decimal_str("1000000007").unwrap();
//! let ctx = MontgomeryCtx::new(&p).unwrap();
//! let x = UBig::from(123_456_789u64);
//! let e = UBig::from(65_537u64);
//! let y = ctx.pow(&x, &e);
//! assert_eq!(y, x.modpow(&e, &p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod add;
mod bits;
mod div;
mod mul;
mod shift;
mod ubig;

pub mod barrett;
pub mod error;
pub mod fixpow;
pub mod limb;
pub mod modular;
pub mod montgomery;
pub mod pow;
pub mod prime;
pub mod random;
pub mod safe_prime;

pub use error::BigNumError;
pub use fixpow::FixedExponentPlan;
pub use ubig::UBig;
