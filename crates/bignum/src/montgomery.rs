//! Montgomery-form modular arithmetic (CIOS multiplication, fixed-window
//! exponentiation).
//!
//! This module is the engine room of the reproduction: the paper's cost
//! unit `Ce` — "the cost of encryption/decryption by F, e.g. exponentiation
//! `x^y mod p` over k-bit integers" (§6.1) — is exactly one call to
//! [`MontgomeryCtx::pow`] with a `k`-bit modulus. The `ce_modexp`
//! benchmark calibrates `Ce` on the host machine through this code.

use crate::error::BigNumError;
use crate::limb::{adc, Limb, LIMB_BITS};
use crate::UBig;

/// Exponentiation window width in bits.
const WINDOW: u32 = 4;

/// Precomputed context for repeated arithmetic modulo a fixed odd modulus.
///
/// Construction costs two divisions (for `R mod n` and `R² mod n`); each
/// multiplication afterwards is a single CIOS pass with no division.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus `n` (odd, > 1), padded to `limbs` little-endian limbs.
    n: Vec<Limb>,
    /// `-n⁻¹ mod 2^64`.
    n0_inv: Limb,
    /// `R mod n` where `R = 2^(64·limbs)` — the Montgomery form of 1.
    one_mont: Vec<Limb>,
    /// `R² mod n` — used to convert into Montgomery form.
    r2: Vec<Limb>,
    /// The modulus as a `UBig` (for comparisons and callers).
    modulus: UBig,
}

/// `-n0⁻¹ mod 2^64` for odd `n0`, by Newton iteration.
fn neg_inv_limb(n0: Limb) -> Limb {
    debug_assert!(n0 & 1 == 1);
    let mut x: Limb = 1;
    // Each step doubles the number of correct low bits: 6 steps ≥ 64 bits.
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
    }
    x.wrapping_neg()
}

/// Pads the limbs of `x` to exactly `len` limbs (x must fit).
fn padded(x: &UBig, len: usize) -> Vec<Limb> {
    let mut v = x.limbs().to_vec();
    debug_assert!(v.len() <= len);
    v.resize(len, 0);
    v
}

/// `a >= b` over equal-length little-endian limb slices.
fn geq(a: &[Limb], b: &[Limb]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

impl MontgomeryCtx {
    /// Creates a context for an odd modulus greater than one.
    pub fn new(modulus: &UBig) -> Result<Self, BigNumError> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return Err(BigNumError::EvenModulus);
        }
        let limbs = modulus.limb_len();
        let n = padded(modulus, limbs);
        let n0_inv = neg_inv_limb(n[0]);
        let r_bits = limbs as u64 * LIMB_BITS as u64;
        let one_mont = padded(&UBig::one().shl_bits(r_bits).rem_ref(modulus)?, limbs);
        let r2 = padded(&UBig::one().shl_bits(2 * r_bits).rem_ref(modulus)?, limbs);
        Ok(MontgomeryCtx {
            n,
            n0_inv,
            one_mont,
            r2,
            modulus: modulus.clone(),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &UBig {
        &self.modulus
    }

    /// Number of limbs in the Montgomery representation.
    fn limbs(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: returns `a · b · R⁻¹ mod n` over
    /// fixed-width limb vectors.
    fn mont_mul(&self, a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let s = self.limbs();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        let mut t = vec![0 as Limb; s + 2];
        for &ai in a {
            // t += ai * b
            let mut carry: Limb = 0;
            for j in 0..s {
                t[j] = crate::limb::mac(t[j], ai, b[j], &mut carry);
            }
            let mut c2: Limb = 0;
            t[s] = adc(t[s], carry, &mut c2);
            t[s + 1] = c2;

            // m = t[0] * n0_inv mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: Limb = 0;
            // First step: low limb becomes zero by construction.
            let _ = crate::limb::mac(t[0], m, self.n[0], &mut carry);
            for j in 1..s {
                t[j - 1] = crate::limb::mac(t[j], m, self.n[j], &mut carry);
            }
            let mut c2: Limb = 0;
            t[s - 1] = adc(t[s], carry, &mut c2);
            t[s] = t[s + 1] + c2; // cannot overflow: t < 2n·R
            t[s + 1] = 0;
        }
        let mut out = t;
        out.truncate(s + 1);
        // Conditional subtraction: result < 2n, so one pass suffices.
        if out[s] != 0 || geq(&out[..s], &self.n) {
            // When the carry limb is set, subtracting n must clear it.
            let mut borrow: Limb = 0;
            #[allow(clippy::needless_range_loop)] // lockstep limb walk
            for i in 0..s {
                out[i] = crate::limb::sbb(out[i], self.n[i], &mut borrow);
            }
            out[s] = out[s].wrapping_sub(borrow);
            debug_assert_eq!(out[s], 0);
        }
        out.truncate(s);
        out
    }

    /// Converts `x` (any size) into Montgomery form.
    fn to_mont(&self, x: &UBig) -> Vec<Limb> {
        let reduced = x.rem_ref(&self.modulus).expect("modulus nonzero");
        self.mont_mul(&padded(&reduced, self.limbs()), &self.r2)
    }

    /// Converts out of Montgomery form.
    #[allow(clippy::wrong_self_convention)] // standard Montgomery naming
    fn from_mont(&self, x: &[Limb]) -> UBig {
        let mut one = vec![0 as Limb; self.limbs()];
        one[0] = 1;
        UBig::from_limbs(self.mont_mul(x, &one))
    }

    /// `(a * b) mod n` for ordinary (non-Montgomery) operands.
    pub fn mul(&self, a: &UBig, b: &UBig) -> UBig {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exponent mod n` by fixed 4-bit-window exponentiation.
    pub fn pow(&self, base: &UBig, exponent: &UBig) -> UBig {
        if exponent.is_zero() {
            return UBig::one().rem_ref(&self.modulus).expect("nonzero");
        }
        let base_m = self.to_mont(base);

        // Precompute base^0..base^15 in Montgomery form.
        let table_len = 1usize << WINDOW;
        let mut table = Vec::with_capacity(table_len);
        table.push(self.one_mont.clone());
        for i in 1..table_len {
            let prev: &Vec<Limb> = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        let bits = exponent.bit_len();
        let windows = bits.div_ceil(WINDOW as u64);
        let mut acc = self.one_mont.clone();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..WINDOW {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut idx: usize = 0;
            for b in (0..WINDOW as u64).rev() {
                let bit_pos = w * WINDOW as u64 + b;
                idx = (idx << 1) | exponent.bit(bit_pos) as usize;
            }
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
                started = true;
            } else if started {
                // Nothing to multiply; squarings above already applied.
            } else {
                // Leading zero windows: keep acc = 1, no squarings needed.
            }
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontgomeryCtx::new(&UBig::zero()).is_err());
        assert!(MontgomeryCtx::new(&UBig::one()).is_err());
        assert!(MontgomeryCtx::new(&UBig::from(10u64)).is_err());
    }

    #[test]
    fn neg_inv_limb_property() {
        for n0 in [1u64, 3, 5, 0xffff_ffff_ffff_fff1, 0x1234_5678_9abc_def1] {
            let m = neg_inv_limb(n0);
            assert_eq!(n0.wrapping_mul(m), 1u64.wrapping_neg(), "n0={n0:#x}");
        }
    }

    #[test]
    fn mul_matches_naive() {
        let m = UBig::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let a = UBig::from(999_999_999u64);
        let b = UBig::from(123_456_789u64);
        assert_eq!(ctx.mul(&a, &b), a.mod_mul(&b, &m).unwrap());
    }

    #[test]
    fn pow_matches_binary_oracle_small() {
        let m = UBig::from(0xffff_fffb_u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for base in [0u64, 1, 2, 3, 0x1234_5678, 0xffff_fffa] {
            for exp in [0u64, 1, 2, 3, 16, 17, 255, 256, 65537] {
                let fast = ctx.pow(&UBig::from(base), &UBig::from(exp));
                let slow = UBig::from(base).modpow_binary(&UBig::from(exp), &m);
                assert_eq!(fast, slow, "base={base} exp={exp}");
            }
        }
    }

    #[test]
    fn pow_matches_binary_oracle_multilimb() {
        let m =
            UBig::from_hex_str("f37fa8e5afa15b9d4b2f7c8d6e5a4b3c2d1e0f9a8b7c6d5e4f3a2b1c0d9e8f71")
                .unwrap(); // odd 256-bit number (compositeness is fine here)
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = UBig::from_hex_str("123456789abcdef0fedcba9876543210").unwrap();
        let exp = UBig::from_hex_str("deadbeefcafebabe").unwrap();
        assert_eq!(ctx.pow(&base, &exp), base.modpow_binary(&exp, &m));
    }

    #[test]
    fn pow_base_larger_than_modulus() {
        let m = UBig::from(97u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = UBig::from(97 * 5 + 3u64);
        assert_eq!(
            ctx.pow(&base, &UBig::from(10u64)),
            UBig::from(3u64).modpow_binary(&UBig::from(10u64), &m)
        );
    }

    #[test]
    fn pow_exponent_zero_and_one() {
        let m = UBig::from(101u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow(&UBig::from(7u64), &UBig::zero()), UBig::one());
        assert_eq!(ctx.pow(&UBig::from(7u64), &UBig::one()), UBig::from(7u64));
    }

    #[test]
    fn one_mont_is_r_mod_n() {
        let m = UBig::from(1_000_003u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let r = UBig::one().shl_bits(64).rem_ref(&m).unwrap();
        assert_eq!(UBig::from_limbs(ctx.one_mont.clone()), r);
    }
}
