//! Montgomery-form modular arithmetic (CIOS multiplication, dedicated
//! squaring kernel, sliding-window exponentiation).
//!
//! This module is the engine room of the reproduction: the paper's cost
//! unit `Ce` — "the cost of encryption/decryption by F, e.g. exponentiation
//! `x^y mod p` over k-bit integers" (§6.1) — is exactly one call to
//! [`MontgomeryCtx::pow`] with a `k`-bit modulus. The `ce_modexp`
//! benchmark calibrates `Ce` on the host machine through this code.
//!
//! Exponentiation squares far more often than it multiplies (~80% of the
//! window-method work), so squarings go through [`MontgomeryCtx::sqr_elem`]'s
//! dedicated kernel: the symmetric half of the partial products is computed
//! once and doubled, cutting the multiply count from `2s²` to `~1.5s²`
//! per squaring. On top of that, [`MontgomeryCtx::pow`] uses sliding
//! windows with an odd-powers-only table, trimming both the precompute
//! (half the entries of a fixed-window table) and the number of window
//! multiplies. The pre-optimization fixed-4-bit path is kept as
//! [`MontgomeryCtx::pow_fixed4_reference`] so the `BENCH_protocols.json`
//! trajectory can regress the speedup forever.

use crate::error::BigNumError;
use crate::limb::{adc, mul_wide, Limb, LIMB_BITS};
use crate::UBig;

/// Fixed window width of the reference (pre-optimization) exponentiation.
const WINDOW: u32 = 4;

/// Largest sliding-window width [`window_for_bits`] will pick.
const MAX_WINDOW: u32 = 6;

/// Sliding-window width minimizing `table + bits/(w+1)` work for an
/// exponent of the given bit length.
pub(crate) fn window_for_bits(bits: u64) -> u32 {
    match bits {
        0..=7 => 1,
        8..=23 => 2,
        24..=79 => 3,
        80..=239 => 4,
        240..=767 => 5,
        _ => MAX_WINDOW,
    }
}

/// One ladder step of a recoded exponent: `squarings` squarings followed
/// by one multiply with the odd power `base^(2·table_idx + 1)`.
pub(crate) struct WindowStep {
    pub(crate) squarings: u64,
    pub(crate) table_idx: usize,
}

/// A sliding-window recoding of one exponent, independent of the base —
/// computed once per exponent and replayed for every base in a batch.
pub(crate) struct PowPlan {
    /// Table index whose entry initializes the accumulator (the leading
    /// window); `None` for a zero exponent.
    pub(crate) init_idx: Option<usize>,
    /// Largest table index referenced — bounds the per-base precompute.
    pub(crate) max_idx: usize,
    pub(crate) steps: Vec<WindowStep>,
    /// Squarings after the final window (trailing zero bits).
    pub(crate) tail_squarings: u64,
}

impl PowPlan {
    /// Overwrites the recoded schedule in place. The step sequence is a
    /// deterministic function of the exponent, so a plan derived from a
    /// secret exponent is itself secret material; callers that cache
    /// plans must scrub them before the allocation is returned.
    pub(crate) fn zeroize(&mut self) {
        for step in self.steps.iter_mut() {
            step.squarings = 0;
            step.table_idx = 0;
        }
        self.steps.clear();
        self.init_idx = None;
        self.max_idx = 0;
        self.tail_squarings = 0;
        // Keep the writes above from being optimized out as dead stores.
        std::hint::black_box(&self.steps);
    }
}

/// Recodes `exponent` for sliding-window exponentiation with the given
/// window width: leading zeros are skipped, runs of zero bits between
/// windows fold into the next step's squaring count, and windows slide
/// down to their lowest set bit so only odd powers are referenced.
pub(crate) fn recode_exponent(exponent: &UBig, window: u32) -> PowPlan {
    let mut plan = PowPlan {
        init_idx: None,
        max_idx: 0,
        steps: Vec::new(),
        tail_squarings: 0,
    };
    let mut pending: u64 = 0;
    let mut i = exponent.bit_len();
    while i > 0 {
        let top = i - 1;
        if !exponent.bit(top) {
            if plan.init_idx.is_some() {
                pending += 1;
            }
            i -= 1;
            continue;
        }
        // Slide the window down from `top` until its low bit is set, so
        // only odd table entries are ever needed.
        let floor = (top + 1).saturating_sub(window as u64);
        let mut lo = floor;
        while !exponent.bit(lo) {
            lo += 1;
        }
        let width = top - lo + 1;
        let mut val: usize = 0;
        let mut b = top + 1;
        while b > lo {
            b -= 1;
            val = (val << 1) | exponent.bit(b) as usize;
        }
        let idx = val >> 1;
        plan.max_idx = plan.max_idx.max(idx);
        match plan.init_idx {
            None => plan.init_idx = Some(idx),
            Some(_) => {
                plan.steps.push(WindowStep {
                    squarings: pending + width,
                    table_idx: idx,
                });
                pending = 0;
            }
        }
        i = lo;
    }
    plan.tail_squarings = pending;
    plan
}

/// Generates a fixed-width Montgomery squaring kernel (square + REDC +
/// conditional subtract) for a compile-time limb count. The literal trip
/// counts let the compiler fully unroll every loop, drop all bounds
/// checks, and keep the scratch on the stack — this is where the
/// squaring kernel's `~1.5s² + s` vs `2s²` multiply advantage over
/// [`MontgomeryCtx::mont_mul`] actually materializes on real hardware;
/// with runtime-length rows the short triangle loops pay more in loop
/// overhead than they save in multiplies.
macro_rules! mont_sqr_fixed {
    ($name:ident, $s:literal) => {
        fn $name(&self, a: &[Limb], out: &mut Vec<Limb>) {
            const S: usize = $s;
            debug_assert_eq!(a.len(), S);
            debug_assert_eq!(self.n.len(), S);
            let a: &[Limb; S] = a.try_into().expect("dispatch checked width");
            let n: &[Limb; S] = self.n.as_slice().try_into().expect("ctx width");
            let mut t = [0 as Limb; 2 * $s + 1];
            // Fused square: strict upper triangle, doubling + diagonal
            // applied as soon as each limb pair is final (see
            // `mont_sqr_to` for the invariant).
            let mut shift_in: Limb = 0;
            let mut dcarry: Limb = 0;
            for i in 0..S {
                let ai = a[i];
                let mut carry: Limb = 0;
                for j in i + 1..S {
                    t[i + j] = crate::limb::mac(t[i + j], ai, a[j], &mut carry);
                }
                t[i + S] = carry;
                let (lo, hi) = mul_wide(ai, ai);
                let even = t[2 * i];
                let odd = t[2 * i + 1];
                let d0 = (even << 1) | shift_in;
                let d1 = (odd << 1) | (even >> (LIMB_BITS - 1));
                shift_in = odd >> (LIMB_BITS - 1);
                t[2 * i] = adc(d0, lo, &mut dcarry);
                t[2 * i + 1] = adc(d1, hi, &mut dcarry);
            }
            debug_assert_eq!(shift_in, 0);
            debug_assert_eq!(dcarry, 0);
            // REDC with branchless deferred row carries (see `redc_to`).
            let mut deferred: Limb = 0;
            for i in 0..S {
                let m = t[i].wrapping_mul(self.n0_inv);
                let mut carry: Limb = 0;
                for j in 0..S {
                    t[i + j] = crate::limb::mac(t[i + j], m, n[j], &mut carry);
                }
                let mut c1: Limb = 0;
                let top = adc(t[i + S], carry, &mut c1);
                let mut c2: Limb = 0;
                t[i + S] = adc(top, deferred, &mut c2);
                deferred = c1 + c2;
            }
            {
                let mut c: Limb = 0;
                t[2 * S] = adc(t[2 * S], deferred, &mut c);
                debug_assert_eq!(c, 0);
            }
            out.clear();
            out.extend_from_slice(&t[S..2 * S]);
            let top = t[2 * S];
            if top != 0 || geq(out, n) {
                let mut borrow: Limb = 0;
                for i in 0..S {
                    out[i] = crate::limb::sbb(out[i], n[i], &mut borrow);
                }
                debug_assert_eq!(top.wrapping_sub(borrow), 0);
            }
        }
    };
}

/// Precomputed context for repeated arithmetic modulo a fixed odd modulus.
///
/// Construction costs two divisions (for `R mod n` and `R² mod n`); each
/// multiplication afterwards is a single CIOS pass with no division.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus `n` (odd, > 1), padded to `limbs` little-endian limbs.
    pub(crate) n: Vec<Limb>,
    /// `-n⁻¹ mod 2^64`.
    pub(crate) n0_inv: Limb,
    /// `R mod n` where `R = 2^(64·limbs)` — the Montgomery form of 1.
    pub(crate) one_mont: Vec<Limb>,
    /// `R² mod n` — used to convert into Montgomery form.
    pub(crate) r2: Vec<Limb>,
    /// The modulus as a `UBig` (for comparisons and callers).
    modulus: UBig,
    /// Lazily-probed AVX-512 IFMA lane context (`None` once probed when
    /// the host CPU lacks IFMA or the modulus is too wide). Holds only
    /// public modulus constants in radix-2^52; the secret exponent
    /// schedule never crosses into the SIMD crate.
    #[cfg(feature = "simd")]
    pub(crate) ifma: std::sync::OnceLock<Option<std::sync::Arc<minshare_simd::IfmaCtx>>>,
}

/// `-n0⁻¹ mod 2^64` for odd `n0`, by Newton iteration.
fn neg_inv_limb(n0: Limb) -> Limb {
    debug_assert!(n0 & 1 == 1);
    let mut x: Limb = 1;
    // Each step doubles the number of correct low bits: 6 steps ≥ 64 bits.
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
    }
    x.wrapping_neg()
}

/// Pads the limbs of `x` to exactly `len` limbs (x must fit).
fn padded(x: &UBig, len: usize) -> Vec<Limb> {
    let mut v = x.limbs().to_vec();
    debug_assert!(v.len() <= len);
    v.resize(len, 0);
    v
}

/// `a >= b` over equal-length little-endian limb slices.
pub(crate) fn geq(a: &[Limb], b: &[Limb]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

impl MontgomeryCtx {
    mont_sqr_fixed!(mont_sqr4_to, 4);
    mont_sqr_fixed!(mont_sqr8_to, 8);

    /// Creates a context for an odd modulus greater than one.
    pub fn new(modulus: &UBig) -> Result<Self, BigNumError> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return Err(BigNumError::EvenModulus);
        }
        let limbs = modulus.limb_len();
        let n = padded(modulus, limbs);
        let n0_inv = neg_inv_limb(n[0]);
        let r_bits = limbs as u64 * LIMB_BITS as u64;
        let one_mont = padded(&UBig::one().shl_bits(r_bits).rem_ref(modulus)?, limbs);
        let r2 = padded(&UBig::one().shl_bits(2 * r_bits).rem_ref(modulus)?, limbs);
        Ok(MontgomeryCtx {
            n,
            n0_inv,
            one_mont,
            r2,
            modulus: modulus.clone(),
            #[cfg(feature = "simd")]
            ifma: std::sync::OnceLock::new(),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &UBig {
        &self.modulus
    }

    /// Number of limbs in the Montgomery representation.
    pub(crate) fn limbs(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: returns `a · b · R⁻¹ mod n` over
    /// fixed-width limb vectors.
    fn mont_mul(&self, a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let s = self.limbs();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        let mut t = vec![0 as Limb; s + 2];
        for &ai in a {
            // t += ai * b
            let mut carry: Limb = 0;
            for j in 0..s {
                t[j] = crate::limb::mac(t[j], ai, b[j], &mut carry);
            }
            let mut c2: Limb = 0;
            t[s] = adc(t[s], carry, &mut c2);
            t[s + 1] = c2;

            // m = t[0] * n0_inv mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: Limb = 0;
            // First step: low limb becomes zero by construction.
            let _ = crate::limb::mac(t[0], m, self.n[0], &mut carry);
            for j in 1..s {
                t[j - 1] = crate::limb::mac(t[j], m, self.n[j], &mut carry);
            }
            let mut c2: Limb = 0;
            t[s - 1] = adc(t[s], carry, &mut c2);
            t[s] = t[s + 1] + c2; // cannot overflow: t < 2n·R
            t[s + 1] = 0;
        }
        let mut out = t;
        out.truncate(s + 1);
        // Conditional subtraction: result < 2n, so one pass suffices.
        if out[s] != 0 || geq(&out[..s], &self.n) {
            // When the carry limb is set, subtracting n must clear it.
            let mut borrow: Limb = 0;
            #[allow(clippy::needless_range_loop)] // lockstep limb walk
            for i in 0..s {
                out[i] = crate::limb::sbb(out[i], self.n[i], &mut borrow);
            }
            out[s] = out[s].wrapping_sub(borrow);
            debug_assert_eq!(out[s], 0);
        }
        out.truncate(s);
        out
    }

    /// Converts `x` (any size) into Montgomery form.
    pub(crate) fn to_mont(&self, x: &UBig) -> Vec<Limb> {
        let reduced = x.rem_ref(&self.modulus).expect("modulus nonzero");
        self.mont_mul(&padded(&reduced, self.limbs()), &self.r2)
    }

    /// Converts out of Montgomery form.
    #[allow(clippy::wrong_self_convention)] // standard Montgomery naming
    pub(crate) fn from_mont(&self, x: &[Limb]) -> UBig {
        let mut one = vec![0 as Limb; self.limbs()];
        one[0] = 1;
        UBig::from_limbs(self.mont_mul(x, &one))
    }

    /// CIOS Montgomery squaring: returns `a² · R⁻¹ mod n`.
    ///
    /// Computes the strict upper triangle of the partial-product matrix
    /// once, doubles it with a single shift pass, adds the diagonal
    /// `aᵢ²` terms, then runs a separate Montgomery reduction over the
    /// double-width result — `s(s-1)/2 + s` limb multiplies for the
    /// square plus `s²` for the reduction, versus `2s²` for
    /// [`Self::mont_mul`].
    fn mont_sqr(&self, a: &[Limb]) -> Vec<Limb> {
        let mut t = Vec::new();
        let mut out = Vec::new();
        self.mont_sqr_to(a, &mut t, &mut out);
        out
    }

    /// [`Self::mont_sqr`] writing into caller-owned buffers: `t` is the
    /// double-width scratch, `out` receives the `s`-limb result. The
    /// exponentiation ladder reuses both across hundreds of squarings so
    /// the hot loop never touches the allocator.
    fn mont_sqr_to(&self, a: &[Limb], t: &mut Vec<Limb>, out: &mut Vec<Limb>) {
        let s = self.limbs();
        debug_assert_eq!(a.len(), s);
        // Protocol-standard widths go through fully unrolled kernels:
        // 4 limbs (256-bit demo groups) and 8 limbs (the paper's 512-bit
        // working size).
        match s {
            4 => return self.mont_sqr4_to(a, out),
            8 => return self.mont_sqr8_to(a, out),
            _ => {}
        }
        // Wide square into 2s+1 limbs (the extra limb is headroom for the
        // reduction's carries).
        t.clear();
        t.resize(2 * s + 1, 0);
        // Single pass: strict upper triangle t += Σ_{i<j} a_i·a_j·2^{64(i+j)}
        // with doubling and the diagonal fused in. Row `i` macs into
        // t[2i+1 .. i+s] (sliced to equal lengths so the inner loop
        // compiles without bounds checks); once its macs finish, positions
        // 2i and 2i+1 hold their final off-diagonal sums (no later row
        // reaches below 2i+3), so they are doubled (1-bit shift) and the
        // diagonal a_i² added immediately, while still cache- and
        // register-hot. The total is a² < 2^(128s), so nothing spills
        // past limb 2s-1.
        let mut shift_in: Limb = 0;
        let mut dcarry: Limb = 0;
        for i in 0..s {
            let ai = a[i];
            let mut carry: Limb = 0;
            let row = &mut t[2 * i + 1..i + s];
            for (tj, &aj) in row.iter_mut().zip(&a[i + 1..]) {
                *tj = crate::limb::mac(*tj, ai, aj, &mut carry);
            }
            // t[i+s] was never written by an earlier row (rows only reach
            // index i+s-1), so the carry lands in a fresh limb.
            t[i + s] = carry;
            let (lo, hi) = mul_wide(ai, ai);
            let even = t[2 * i];
            let odd = t[2 * i + 1];
            let d0 = (even << 1) | shift_in;
            let d1 = (odd << 1) | (even >> (LIMB_BITS - 1));
            shift_in = odd >> (LIMB_BITS - 1);
            t[2 * i] = adc(d0, lo, &mut dcarry);
            t[2 * i + 1] = adc(d1, hi, &mut dcarry);
        }
        debug_assert_eq!(shift_in, 0);
        debug_assert_eq!(dcarry, 0);
        self.redc_to(t, out);
    }

    /// Montgomery reduction of a double-width value `t < n·R` (plus one
    /// headroom limb): writes `t · R⁻¹ mod n` into `out` as `s` limbs.
    fn redc_to(&self, t: &mut [Limb], out: &mut Vec<Limb>) {
        let s = self.limbs();
        debug_assert_eq!(t.len(), 2 * s + 1);
        // Row carries are deferred branchlessly: row i's carry out of
        // position i+s lands at i+s+1, which is exactly where row i+1
        // finishes — so a single `deferred` limb replaces a cascading
        // (branch-mispredicting) carry walk.
        let mut deferred: Limb = 0;
        for i in 0..s {
            let m = t[i].wrapping_mul(self.n0_inv);
            let mut carry: Limb = 0;
            let row = &mut t[i..i + s];
            for (tj, &nj) in row.iter_mut().zip(&self.n) {
                *tj = crate::limb::mac(*tj, m, nj, &mut carry);
            }
            let mut c1: Limb = 0;
            let top = adc(t[i + s], carry, &mut c1);
            let mut c2: Limb = 0;
            t[i + s] = adc(top, deferred, &mut c2);
            // Both carries are 0/1 and cannot both fire past 2^64 - 1.
            deferred = c1 + c2;
        }
        {
            let mut c: Limb = 0;
            t[2 * s] = adc(t[2 * s], deferred, &mut c);
            debug_assert_eq!(c, 0);
        }
        // The upper half (plus carry limb t[2s]) is the reduced value,
        // < 2n: one conditional subtract, written straight into `out`.
        out.clear();
        out.extend_from_slice(&t[s..2 * s]);
        let top = t[2 * s];
        if top != 0 || geq(out, &self.n) {
            let mut borrow: Limb = 0;
            #[allow(clippy::needless_range_loop)] // lockstep limb walk
            for i in 0..s {
                out[i] = crate::limb::sbb(out[i], self.n[i], &mut borrow);
            }
            // When the carry limb was set, subtracting n must clear it.
            debug_assert_eq!(top.wrapping_sub(borrow), 0);
        }
    }

    /// [`Self::mont_mul`] writing into caller-owned buffers, for the
    /// exponentiation hot loop. `t` is the `s + 2`-limb scratch, `out`
    /// receives the `s`-limb product. Kept separate from [`Self::mont_mul`]
    /// so the committed [`Self::pow_fixed4_reference`] baseline is
    /// untouched by hot-path tuning.
    fn mont_mul_to(&self, a: &[Limb], b: &[Limb], t: &mut Vec<Limb>, out: &mut Vec<Limb>) {
        let s = self.limbs();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        t.clear();
        t.resize(s + 2, 0);
        for &ai in a {
            // t += ai * b
            let mut carry: Limb = 0;
            for j in 0..s {
                t[j] = crate::limb::mac(t[j], ai, b[j], &mut carry);
            }
            let mut c2: Limb = 0;
            t[s] = adc(t[s], carry, &mut c2);
            t[s + 1] = c2;

            // m = t[0] * n0_inv mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: Limb = 0;
            // First step: low limb becomes zero by construction.
            let _ = crate::limb::mac(t[0], m, self.n[0], &mut carry);
            for j in 1..s {
                t[j - 1] = crate::limb::mac(t[j], m, self.n[j], &mut carry);
            }
            let mut c2: Limb = 0;
            t[s - 1] = adc(t[s], carry, &mut c2);
            t[s] = t[s + 1] + c2; // cannot overflow: t < 2n·R
            t[s + 1] = 0;
        }
        out.clear();
        out.extend_from_slice(&t[..s]);
        let top = t[s];
        // Conditional subtraction: result < 2n, so one pass suffices.
        if top != 0 || geq(out, &self.n) {
            let mut borrow: Limb = 0;
            #[allow(clippy::needless_range_loop)] // lockstep limb walk
            for i in 0..s {
                out[i] = crate::limb::sbb(out[i], self.n[i], &mut borrow);
            }
            debug_assert_eq!(top.wrapping_sub(borrow), 0);
        }
    }

    /// `(a * b) mod n` for ordinary (non-Montgomery) operands.
    pub fn mul(&self, a: &UBig, b: &UBig) -> UBig {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `a² mod n` through the dedicated squaring kernel.
    pub fn sqr(&self, a: &UBig) -> UBig {
        let am = self.to_mont(a);
        self.from_mont(&self.mont_sqr(&am))
    }

    /// Lifts `x` into Montgomery form for repeated kernel-level work.
    pub fn lift(&self, x: &UBig) -> MontElem {
        MontElem(self.to_mont(x))
    }

    /// Converts a Montgomery-form element back to an ordinary integer.
    pub fn retrieve(&self, x: &MontElem) -> UBig {
        self.from_mont(&x.0)
    }

    /// One Montgomery multiplication over lifted elements
    /// (`a · b · R⁻¹ mod n`, staying in Montgomery form).
    pub fn mul_elem(&self, a: &MontElem, b: &MontElem) -> MontElem {
        MontElem(self.mont_mul(&a.0, &b.0))
    }

    /// One Montgomery squaring over a lifted element, through the
    /// dedicated kernel (`a² · R⁻¹ mod n`, staying in Montgomery form).
    pub fn sqr_elem(&self, a: &MontElem) -> MontElem {
        MontElem(self.mont_sqr(&a.0))
    }

    /// `base^exponent mod n` by sliding-window exponentiation with an
    /// odd-powers-only table and the dedicated squaring kernel. Window
    /// width is chosen from the exponent's bit length.
    pub fn pow(&self, base: &UBig, exponent: &UBig) -> UBig {
        self.pow_with_window(base, exponent, window_for_bits(exponent.bit_len()))
    }

    /// [`Self::pow`] with an explicit window width (clamped to
    /// `1..=6`) — exposed for the window-width ablation bench.
    pub fn pow_with_window(&self, base: &UBig, exponent: &UBig, window: u32) -> UBig {
        let base_m = self.to_mont(base);
        self.from_mont(&self.pow_mont(&base_m, exponent, window))
    }

    /// Exponentiates every base in `bases` to the same `exponent`,
    /// reusing this context's precomputed state across the batch. This is
    /// the protocol hot path: one commutative-encryption round raises the
    /// whole codeword set to a fixed secret exponent.
    pub fn pow_batch(&self, bases: &[UBig], exponent: &UBig) -> Vec<UBig> {
        let window = window_for_bits(exponent.bit_len());
        // Recode the exponent once: every base replays the same plan, so
        // the per-base cost is pure kernel work (no bit scanning).
        let plan = recode_exponent(exponent, window.clamp(1, MAX_WINDOW));
        bases
            .iter()
            .map(|b| self.from_mont(&self.pow_planned(&self.to_mont(b), &plan)))
            .collect()
    }

    /// Core sliding-window ladder over Montgomery-form operands.
    fn pow_mont(&self, base_m: &[Limb], exponent: &UBig, window: u32) -> Vec<Limb> {
        let plan = recode_exponent(exponent, window.clamp(1, MAX_WINDOW));
        self.pow_planned(base_m, &plan)
    }

    /// Executes a recoded exponent against one Montgomery-form base.
    ///
    /// Two result buffers ping-pong through the ladder and the wide
    /// scratch is reused by every kernel call, so the hot loop performs
    /// no allocation after the odd-powers table is built.
    pub(crate) fn pow_planned(&self, base_m: &[Limb], plan: &PowPlan) -> Vec<Limb> {
        let init_idx = match plan.init_idx {
            // Zero exponent: empty ladder, result is 1 in Montgomery form.
            None => return self.one_mont.clone(),
            Some(idx) => idx,
        };
        let s = self.limbs();
        let mut wide: Vec<Limb> = Vec::with_capacity(2 * s + 1);
        let mut tmp: Vec<Limb> = Vec::with_capacity(s);

        // Odd powers only: table[i] = base^(2i+1) in Montgomery form,
        // built just far enough to cover the plan's largest index.
        let table_len = plan.max_idx + 1;
        let mut table: Vec<Vec<Limb>> = Vec::with_capacity(table_len);
        table.push(base_m.to_vec());
        if table_len > 1 {
            let mut base_sq = Vec::new();
            self.mont_sqr_to(base_m, &mut wide, &mut base_sq);
            for i in 1..table_len {
                let mut next = Vec::with_capacity(s);
                self.mont_mul_to(&table[i - 1], &base_sq, &mut wide, &mut next);
                table.push(next);
            }
        }

        let mut acc = table[init_idx].clone();
        for step in &plan.steps {
            for _ in 0..step.squarings {
                self.mont_sqr_to(&acc, &mut wide, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            self.mont_mul_to(&acc, &table[step.table_idx], &mut wide, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        for _ in 0..plan.tail_squarings {
            self.mont_sqr_to(&acc, &mut wide, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        acc
    }

    /// The pre-optimization fixed 4-bit-window exponentiation (generic
    /// CIOS multiply for squarings, full even+odd table). Kept as the
    /// committed baseline for the `BENCH_protocols.json` speedup
    /// trajectory; protocol code must use [`Self::pow`].
    ///
    /// The original formulation skipped the window multiply whenever a
    /// window's bits happened to be all zero — a data-dependent branch on
    /// exponent material (the SEC02 finding baselined in PR 6). The ladder
    /// now runs a constant schedule for a given bit length: every window
    /// below the top one performs [`WINDOW`] squarings followed by an
    /// unconditional multiply with `table[idx]` (`table[0]` is 1 in
    /// Montgomery form, so zero windows cost the same multiply as any
    /// other). Results are unchanged; only the skip is gone.
    pub fn pow_fixed4_reference(&self, base: &UBig, exponent: &UBig) -> UBig {
        if exponent.is_zero() {
            return UBig::one().rem_ref(&self.modulus).expect("nonzero");
        }
        let base_m = self.to_mont(base);

        // Precompute base^0..base^15 in Montgomery form.
        let table_len = 1usize << WINDOW;
        let mut table = Vec::with_capacity(table_len);
        table.push(self.one_mont.clone());
        for i in 1..table_len {
            let prev: &Vec<Limb> = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        let window_idx = |w: u64| {
            let mut idx: usize = 0;
            for b in (0..WINDOW as u64).rev() {
                let bit_pos = w * WINDOW as u64 + b;
                idx = (idx << 1) | exponent.bit(bit_pos) as usize;
            }
            idx
        };

        let bits = exponent.bit_len();
        let windows = bits.div_ceil(WINDOW as u64);
        // The top window contains the exponent's leading set bit, so it
        // seeds the accumulator directly; every remaining window squares
        // then multiplies, unconditionally.
        let mut acc = table[window_idx(windows - 1)].clone();
        for w in (0..windows - 1).rev() {
            for _ in 0..WINDOW {
                acc = self.mont_mul(&acc, &acc);
            }
            acc = self.mont_mul(&acc, &table[window_idx(w)]);
        }
        self.from_mont(&acc)
    }
}

/// An element in Montgomery representation, produced by
/// [`MontgomeryCtx::lift`] and only meaningful with the context that
/// created it (mixing contexts of different limb widths is a logic error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontElem(Vec<Limb>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontgomeryCtx::new(&UBig::zero()).is_err());
        assert!(MontgomeryCtx::new(&UBig::one()).is_err());
        assert!(MontgomeryCtx::new(&UBig::from(10u64)).is_err());
    }

    #[test]
    fn neg_inv_limb_property() {
        for n0 in [1u64, 3, 5, 0xffff_ffff_ffff_fff1, 0x1234_5678_9abc_def1] {
            let m = neg_inv_limb(n0);
            assert_eq!(n0.wrapping_mul(m), 1u64.wrapping_neg(), "n0={n0:#x}");
        }
    }

    #[test]
    fn mul_matches_naive() {
        let m = UBig::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let a = UBig::from(999_999_999u64);
        let b = UBig::from(123_456_789u64);
        assert_eq!(ctx.mul(&a, &b), a.mod_mul(&b, &m).unwrap());
    }

    #[test]
    fn pow_matches_binary_oracle_small() {
        let m = UBig::from(0xffff_fffb_u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for base in [0u64, 1, 2, 3, 0x1234_5678, 0xffff_fffa] {
            for exp in [0u64, 1, 2, 3, 16, 17, 255, 256, 65537] {
                let fast = ctx.pow(&UBig::from(base), &UBig::from(exp));
                let slow = UBig::from(base).modpow_binary(&UBig::from(exp), &m);
                assert_eq!(fast, slow, "base={base} exp={exp}");
            }
        }
    }

    #[test]
    fn pow_matches_binary_oracle_multilimb() {
        let m =
            UBig::from_hex_str("f37fa8e5afa15b9d4b2f7c8d6e5a4b3c2d1e0f9a8b7c6d5e4f3a2b1c0d9e8f71")
                .unwrap(); // odd 256-bit number (compositeness is fine here)
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = UBig::from_hex_str("123456789abcdef0fedcba9876543210").unwrap();
        let exp = UBig::from_hex_str("deadbeefcafebabe").unwrap();
        assert_eq!(ctx.pow(&base, &exp), base.modpow_binary(&exp, &m));
    }

    #[test]
    fn pow_base_larger_than_modulus() {
        let m = UBig::from(97u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = UBig::from(97 * 5 + 3u64);
        assert_eq!(
            ctx.pow(&base, &UBig::from(10u64)),
            UBig::from(3u64).modpow_binary(&UBig::from(10u64), &m)
        );
    }

    #[test]
    fn pow_exponent_zero_and_one() {
        let m = UBig::from(101u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow(&UBig::from(7u64), &UBig::zero()), UBig::one());
        assert_eq!(ctx.pow(&UBig::from(7u64), &UBig::one()), UBig::from(7u64));
    }

    #[test]
    fn sqr_matches_mul() {
        let m =
            UBig::from_hex_str("f37fa8e5afa15b9d4b2f7c8d6e5a4b3c2d1e0f9a8b7c6d5e4f3a2b1c0d9e8f71")
                .unwrap();
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let mut x = UBig::from_hex_str("123456789abcdef0fedcba9876543210").unwrap();
        for _ in 0..50 {
            assert_eq!(ctx.sqr(&x), ctx.mul(&x, &x));
            x = ctx.sqr(&x);
        }
    }

    #[test]
    fn mont_elem_kernel_roundtrip() {
        let m = UBig::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let a = UBig::from(999_999_999u64);
        let b = UBig::from(123_456_789u64);
        let (am, bm) = (ctx.lift(&a), ctx.lift(&b));
        assert_eq!(ctx.retrieve(&am), a);
        assert_eq!(ctx.retrieve(&ctx.mul_elem(&am, &bm)), ctx.mul(&a, &b));
        assert_eq!(ctx.retrieve(&ctx.sqr_elem(&am)), ctx.sqr(&a));
        assert_eq!(ctx.mul_elem(&am, &am), ctx.sqr_elem(&am));
    }

    #[test]
    fn all_window_widths_agree_with_oracle() {
        let m =
            UBig::from_hex_str("f37fa8e5afa15b9d4b2f7c8d6e5a4b3c2d1e0f9a8b7c6d5e4f3a2b1c0d9e8f71")
                .unwrap();
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = UBig::from_hex_str("123456789abcdef0fedcba9876543210").unwrap();
        let exp = UBig::from_hex_str("deadbeefcafebabe0123456789abcdef").unwrap();
        let want = base.modpow_binary(&exp, &m);
        for w in 0..=8u32 {
            // widths outside 1..=6 are clamped, so every call must agree
            assert_eq!(ctx.pow_with_window(&base, &exp, w), want, "window={w}");
        }
    }

    #[test]
    fn adversarial_exponents_match_oracle() {
        let m =
            UBig::from_hex_str("f37fa8e5afa15b9d4b2f7c8d6e5a4b3c2d1e0f9a8b7c6d5e4f3a2b1c0d9e8f71")
                .unwrap();
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = UBig::from_hex_str("0fedcba987654321ffffffffffffffff").unwrap();
        // All-ones exponents stress maximal windows; 2^k stresses all-zero
        // tails; m-2 is the Fermat-inversion shape used by key setup.
        let exps = [
            UBig::zero(),
            UBig::one(),
            UBig::from(2u64),
            UBig::from(0xffff_ffff_ffff_ffffu64),
            UBig::one().shl_bits(255),
            UBig::one().shl_bits(256).sub_small(1).unwrap(),
            m.sub_small(2).unwrap(),
        ];
        for exp in &exps {
            assert_eq!(
                ctx.pow(&base, exp),
                base.modpow_binary(exp, &m),
                "exp bits={}",
                exp.bit_len()
            );
        }
    }

    #[test]
    fn pow_batch_matches_pointwise_pow() {
        let m = UBig::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let exp = UBig::from(65537u64);
        let bases: Vec<UBig> = (0u64..20).map(|i| UBig::from(i * 37 + 5)).collect();
        let batch = ctx.pow_batch(&bases, &exp);
        assert_eq!(batch.len(), bases.len());
        for (b, got) in bases.iter().zip(&batch) {
            assert_eq!(got, &ctx.pow(b, &exp));
        }
        assert!(ctx.pow_batch(&[], &exp).is_empty());
    }

    #[test]
    fn fixed4_reference_matches_sliding_pow() {
        let m =
            UBig::from_hex_str("f37fa8e5afa15b9d4b2f7c8d6e5a4b3c2d1e0f9a8b7c6d5e4f3a2b1c0d9e8f71")
                .unwrap();
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = UBig::from_hex_str("123456789abcdef0fedcba9876543210").unwrap();
        for exp in [
            UBig::zero(),
            UBig::one(),
            UBig::from(65537u64),
            m.sub_small(2).unwrap(),
        ] {
            assert_eq!(
                ctx.pow_fixed4_reference(&base, &exp),
                ctx.pow(&base, &exp),
                "exp bits={}",
                exp.bit_len()
            );
        }
    }

    #[test]
    fn one_mont_is_r_mod_n() {
        let m = UBig::from(1_000_003u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let r = UBig::one().shl_bits(64).rem_ref(&m).unwrap();
        assert_eq!(UBig::from_limbs(ctx.one_mont.clone()), r);
    }
}
