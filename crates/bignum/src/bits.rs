//! Bit-level helpers for [`UBig`].

use crate::limb::{Limb, LIMB_BITS};
use crate::UBig;

impl UBig {
    /// Sets bit `i` (growing the limb vector if needed) and returns the
    /// result.
    pub fn with_bit(&self, i: u64) -> UBig {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        let mut limbs = self.limbs.clone();
        if limbs.len() <= limb {
            limbs.resize(limb + 1, 0);
        }
        limbs[limb] |= (1 as Limb) << off;
        UBig::from_limbs(limbs)
    }

    /// Clears bit `i` and returns the result.
    pub fn without_bit(&self, i: u64) -> UBig {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        if limb >= self.limbs.len() {
            return self.clone();
        }
        let mut limbs = self.limbs.clone();
        limbs[limb] &= !((1 as Limb) << off);
        UBig::from_limbs(limbs)
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * LIMB_BITS as u64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.limbs.iter().map(|l| l.count_ones() as u64).sum()
    }

    /// Keeps only the lowest `bits` bits (i.e. `self mod 2^bits`).
    pub fn low_bits(&self, bits: u64) -> UBig {
        let limb = (bits / LIMB_BITS as u64) as usize;
        let off = (bits % LIMB_BITS as u64) as u32;
        if limb >= self.limbs.len() {
            return self.clone();
        }
        let mut limbs = self.limbs[..=limb.min(self.limbs.len() - 1)].to_vec();
        if off == 0 {
            limbs.truncate(limb);
        } else if limb < limbs.len() {
            limbs[limb] &= ((1 as Limb) << off) - 1;
        }
        UBig::from_limbs(limbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_bit_grows() {
        let x = UBig::zero().with_bit(100);
        assert_eq!(x, UBig::one().shl_bits(100));
        assert!(x.bit(100));
    }

    #[test]
    fn without_bit() {
        let x = UBig::from(0b1010u64);
        assert_eq!(x.without_bit(1), UBig::from(0b1000u64));
        assert_eq!(x.without_bit(3).without_bit(1), UBig::zero());
        assert_eq!(x.without_bit(200), x); // out of range is a no-op
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(UBig::zero().trailing_zeros(), None);
        assert_eq!(UBig::one().trailing_zeros(), Some(0));
        assert_eq!(UBig::from(8u64).trailing_zeros(), Some(3));
        assert_eq!(UBig::from_limbs(vec![0, 0, 4]).trailing_zeros(), Some(130));
    }

    #[test]
    fn count_ones() {
        assert_eq!(UBig::zero().count_ones(), 0);
        assert_eq!(UBig::from(0b1011u64).count_ones(), 3);
        assert_eq!(UBig::from_limbs(vec![u64::MAX, 1]).count_ones(), 65);
    }

    #[test]
    fn low_bits_masks() {
        let x = UBig::from(0xffffu64);
        assert_eq!(x.low_bits(8), UBig::from(0xffu64));
        assert_eq!(x.low_bits(16), x);
        assert_eq!(x.low_bits(64), x);
        assert_eq!(x.low_bits(0), UBig::zero());
        let y = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
        assert_eq!(y.low_bits(64), UBig::from(u64::MAX));
        assert_eq!(y.low_bits(65), UBig::from_limbs(vec![u64::MAX, 1]));
    }
}
