//! Safe primes: generation and the standard RFC 2409 / RFC 3526 groups.
//!
//! The paper's commutative encryption (Example 1) works over the quadratic
//! residues modulo a *safe* prime `p` — one where `q = (p-1)/2` is also
//! prime — so that `|QR_p| = q` is prime and DDH is believed to hold in the
//! subgroup. Generating fresh 1024-bit safe primes takes minutes, so the
//! benchmarks use the well-known safe primes standardized for IKE
//! (RFC 2409 Oakley groups 1 and 2) and for MODP Diffie–Hellman
//! (RFC 3526 groups 5 and 14), all of the form
//! `p = 2^n − 2^(n−64) − 1 + 2^64 · (⌊2^(n−130) π⌋ + c)`.
//! Their safety is re-verified by this module's tests.

use rand::Rng;

use crate::error::BigNumError;
use crate::prime::{is_probable_prime, small_primes};
use crate::random::random_exact_bits;
use crate::UBig;

/// RFC 2409 Oakley Group 1 — 768-bit safe prime.
pub const RFC2409_OAKLEY1_768: &str = "\
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1 29024E08 8A67CC74 \
    020BBEA6 3B139B22 514A0879 8E3404DD EF9519B3 CD3A431B 302B0A6D F25F1437 \
    4FE1356D 6D51C245 E485B576 625E7EC6 F44C42E9 A63A3620 FFFFFFFF FFFFFFFF";

/// RFC 2409 Oakley Group 2 — 1024-bit safe prime. This is the size the
/// paper's cost analysis assumes (`k = 1024` bits, §6).
pub const RFC2409_OAKLEY2_1024: &str = "\
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1 29024E08 8A67CC74 \
    020BBEA6 3B139B22 514A0879 8E3404DD EF9519B3 CD3A431B 302B0A6D F25F1437 \
    4FE1356D 6D51C245 E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED \
    EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE65381 FFFFFFFF FFFFFFFF";

/// RFC 3526 Group 5 — 1536-bit safe prime.
pub const RFC3526_MODP_1536: &str = "\
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1 29024E08 8A67CC74 \
    020BBEA6 3B139B22 514A0879 8E3404DD EF9519B3 CD3A431B 302B0A6D F25F1437 \
    4FE1356D 6D51C245 E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED \
    EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D C2007CB8 A163BF05 \
    98DA4836 1C55D39A 69163FA8 FD24CF5F 83655D23 DCA3AD96 1C62F356 208552BB \
    9ED52907 7096966D 670C354E 4ABC9804 F1746C08 CA237327 FFFFFFFF FFFFFFFF";

/// RFC 3526 Group 14 — 2048-bit safe prime.
pub const RFC3526_MODP_2048: &str = "\
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1 29024E08 8A67CC74 \
    020BBEA6 3B139B22 514A0879 8E3404DD EF9519B3 CD3A431B 302B0A6D F25F1437 \
    4FE1356D 6D51C245 E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED \
    EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D C2007CB8 A163BF05 \
    98DA4836 1C55D39A 69163FA8 FD24CF5F 83655D23 DCA3AD96 1C62F356 208552BB \
    9ED52907 7096966D 670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B \
    E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9 DE2BCBF6 95581718 \
    3995497C EA956AE5 15D22618 98FA0510 15728E5A 8AACAA68 FFFFFFFF FFFFFFFF";

/// Returns the standard safe prime with the given bit size, if one is
/// bundled (768, 1024, 1536 or 2048 bits).
pub fn well_known_safe_prime(bits: u64) -> Option<UBig> {
    let hex = match bits {
        768 => RFC2409_OAKLEY1_768,
        1024 => RFC2409_OAKLEY2_1024,
        1536 => RFC3526_MODP_1536,
        2048 => RFC3526_MODP_2048,
        _ => return None,
    };
    Some(UBig::from_hex_str(hex).expect("bundled constant parses"))
}

/// Number of Miller–Rabin rounds used while *searching* (the final
/// candidate is re-checked at full strength).
const SEARCH_MR_ROUNDS: u32 = 8;

/// Generates a safe prime `p = 2q + 1` with exactly `bits` bits.
///
/// Intended for test-sized parameters (≤ a few hundred bits); for the
/// benchmark sizes use [`well_known_safe_prime`]. `max_attempts` bounds the
/// number of random candidates examined.
pub fn generate_safe_prime<R: Rng + ?Sized>(
    rng: &mut R,
    bits: u64,
    max_attempts: u64,
) -> Result<UBig, BigNumError> {
    if bits < 4 {
        // The smallest safe primes are 5, 7, 11; below 4 bits the
        // exact-bit-width constraint can be unsatisfiable.
        return Err(BigNumError::BitWidthTooSmall {
            requested: bits,
            minimum: 4,
        });
    }
    for attempt in 0..max_attempts {
        // Sample q with bits-1 bits, odd.
        let mut q = random_exact_bits(rng, bits - 1);
        if q.is_even() {
            q = q.add_small(1);
        }
        let p = q.shl_bits(1).add_small(1);
        if p.bit_len() != bits {
            continue;
        }
        // Cheap joint sieve: p ≡ 0 (mod s) or q ≡ 0 (mod s) kills the pair.
        let mut sieved_out = false;
        for &s in small_primes().iter().take(256) {
            let (_, rq) = q.div_rem_small(s).expect("s > 0");
            let (_, rp) = p.div_rem_small(s).expect("s > 0");
            if (rq == 0 && q != UBig::from(s)) || (rp == 0 && p != UBig::from(s)) {
                sieved_out = true;
                break;
            }
        }
        if sieved_out {
            continue;
        }
        if !is_probable_prime(&q, SEARCH_MR_ROUNDS, rng) {
            continue;
        }
        if !is_probable_prime(&p, SEARCH_MR_ROUNDS, rng) {
            continue;
        }
        // Final high-assurance check on both.
        if is_probable_prime(&q, crate::prime::DEFAULT_MR_ROUNDS, rng)
            && is_probable_prime(&p, crate::prime::DEFAULT_MR_ROUNDS, rng)
        {
            return Ok(p);
        }
        let _ = attempt;
    }
    Err(BigNumError::GenerationExhausted {
        attempts: max_attempts,
    })
}

/// Returns `true` iff `p` is (probably) a safe prime.
pub fn is_safe_prime<R: Rng + ?Sized>(p: &UBig, rng: &mut R) -> bool {
    if p < &UBig::from(5u64) {
        return false;
    }
    if !is_probable_prime(p, crate::prime::DEFAULT_MR_ROUNDS, rng) {
        return false;
    }
    let q = p.sub_small(1).expect("p >= 5").shr_bits(1);
    is_probable_prime(&q, crate::prime::DEFAULT_MR_ROUNDS, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5afe)
    }

    #[test]
    fn generates_small_safe_primes() {
        let mut r = rng();
        for bits in [8u64, 16, 32, 48] {
            let p = generate_safe_prime(&mut r, bits, 100_000).unwrap();
            assert_eq!(p.bit_len(), bits, "bits={bits}");
            assert!(is_safe_prime(&p, &mut r), "p={p}");
        }
    }

    #[test]
    fn generation_bit_width_guard() {
        let mut r = rng();
        assert!(matches!(
            generate_safe_prime(&mut r, 2, 10),
            Err(BigNumError::BitWidthTooSmall { .. })
        ));
    }

    #[test]
    fn is_safe_prime_classifies() {
        let mut r = rng();
        // 5, 7, 11, 23, 47, 59, 83, 107 are safe primes.
        for p in [5u64, 7, 11, 23, 47, 59, 83, 107, 2879] {
            assert!(is_safe_prime(&UBig::from(p), &mut r), "{p}");
        }
        // 13, 17, 29, 37 are prime but not safe; 15, 21 are not prime.
        for p in [2u64, 3, 13, 17, 29, 37, 15, 21] {
            assert!(!is_safe_prime(&UBig::from(p), &mut r), "{p}");
        }
    }

    #[test]
    fn bundled_constants_have_declared_sizes() {
        for bits in [768u64, 1024, 1536, 2048] {
            let p = well_known_safe_prime(bits).unwrap();
            assert_eq!(p.bit_len(), bits, "bits={bits}");
            // All RFC MODP primes are ≡ 3 (mod 4): generator 2 generates QR.
            assert_eq!(p.limbs()[0] & 3, 3);
        }
        assert!(well_known_safe_prime(512).is_none());
    }

    #[test]
    fn oakley_768_is_safe_prime() {
        let mut r = rng();
        let p = well_known_safe_prime(768).unwrap();
        let q = p.sub_small(1).unwrap().shr_bits(1);
        assert!(is_probable_prime(&p, 6, &mut r));
        assert!(is_probable_prime(&q, 6, &mut r));
    }

    #[test]
    fn oakley_1024_is_safe_prime() {
        let mut r = rng();
        let p = well_known_safe_prime(1024).unwrap();
        let q = p.sub_small(1).unwrap().shr_bits(1);
        assert!(is_probable_prime(&p, 6, &mut r));
        assert!(is_probable_prime(&q, 6, &mut r));
    }

    #[test]
    fn modp_1536_and_2048_are_safe_primes() {
        let mut r = rng();
        for bits in [1536u64, 2048] {
            let p = well_known_safe_prime(bits).unwrap();
            let q = p.sub_small(1).unwrap().shr_bits(1);
            assert!(is_probable_prime(&p, 4, &mut r), "p {bits}");
            assert!(is_probable_prime(&q, 4, &mut r), "q {bits}");
        }
    }
}
