//! The [`UBig`] arbitrary-precision unsigned integer.
//!
//! Representation: a little-endian vector of 64-bit limbs with no trailing
//! zero limb (*normalized*). Zero is the empty vector. All public
//! constructors normalize, and every algorithm in the crate preserves the
//! invariant.

use std::cmp::Ordering;
use std::fmt;

use crate::error::BigNumError;
use crate::limb::{Limb, LIMB_BITS};

/// An arbitrary-precision unsigned integer.
///
/// `UBig` supports the usual arithmetic operators (by value and by
/// reference), comparison, hashing, and conversions to and from bytes,
/// hexadecimal and decimal strings. The modular and number-theoretic
/// operations live in the [`crate::modular`], [`crate::montgomery`],
/// [`crate::pow`] and [`crate::prime`] modules.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct UBig {
    /// Little-endian limbs, normalized (no trailing zeros).
    pub(crate) limbs: Vec<Limb>,
}

impl UBig {
    /// The value `0`.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// The value `2`.
    pub fn two() -> Self {
        UBig { limbs: vec![2] }
    }

    /// Returns `true` iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff `self == 1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` iff the least-significant bit is clear (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` iff the least-significant bit is set.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Builds a `UBig` from little-endian limbs, dropping trailing zeros.
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Borrows the normalized little-endian limbs.
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Best-effort secure erasure: overwrites every allocated limb with
    /// zero and leaves `self == 0`. The crate forbids `unsafe`, so instead
    /// of volatile stores the zeroed buffer is passed through
    /// [`std::hint::black_box`], which keeps the compiler from eliding the
    /// writes as dead. Used by key types that hold secret exponents to
    /// scrub them on drop. Copies made by earlier arithmetic (temporaries,
    /// reallocations) are beyond its reach — hence *best-effort*.
    pub fn zeroize(&mut self) {
        for limb in self.limbs.iter_mut() {
            *limb = 0;
        }
        std::hint::black_box(&mut self.limbs);
        self.limbs.clear();
    }

    /// Number of significant limbs (zero has none).
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// Number of significant bits; zero has bit length 0.
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64
                    + (LIMB_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Value of bit `i` (false beyond the bit length).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Converts to `u64`, if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Parses a big-endian byte string (leading zero bytes allowed).
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb: Limb = 0;
            for &b in chunk {
                limb = (limb << 8) | b as Limb;
            }
            limbs.push(limb);
        }
        UBig::from_limbs(limbs)
    }

    /// Serializes to a minimal big-endian byte string (zero → empty).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the top limb only.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to a fixed-width big-endian byte string, left-padded with
    /// zeros. Returns an error if the value needs more than `width` bytes.
    pub fn to_be_bytes_padded(&self, width: usize) -> Result<Vec<u8>, BigNumError> {
        let raw = self.to_be_bytes();
        if raw.len() > width {
            return Err(BigNumError::ValueTooLarge {
                bits: self.bit_len(),
                capacity_bits: width as u64 * 8,
            });
        }
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// Parses a hexadecimal string. Whitespace and underscores are ignored
    /// (so the RFC group constants can be pasted verbatim); an optional
    /// `0x` prefix is allowed.
    pub fn from_hex_str(s: &str) -> Result<Self, BigNumError> {
        let s = s.trim();
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        let mut nibbles = Vec::with_capacity(s.len());
        for ch in s.chars() {
            if ch.is_whitespace() || ch == '_' {
                continue;
            }
            let v = ch
                .to_digit(16)
                .ok_or(BigNumError::ParseError { bad_char: ch })?;
            nibbles.push(v as u8);
        }
        if nibbles.is_empty() {
            return Err(BigNumError::EmptyInput);
        }
        let mut limbs = Vec::with_capacity(nibbles.len() / 16 + 1);
        for chunk in nibbles.rchunks(16) {
            let mut limb: Limb = 0;
            for &n in chunk {
                limb = (limb << 4) | n as Limb;
            }
            limbs.push(limb);
        }
        Ok(UBig::from_limbs(limbs))
    }

    /// Formats as lowercase hexadecimal without a prefix (zero → `"0"`).
    pub fn to_hex_str(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Parses a decimal string (underscores permitted as separators).
    pub fn from_decimal_str(s: &str) -> Result<Self, BigNumError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(BigNumError::EmptyInput);
        }
        let mut acc = UBig::zero();
        let mut saw_digit = false;
        // Consume 19 digits at a time (19 decimal digits fit in a u64).
        let mut chunk: u64 = 0;
        let mut chunk_len: u32 = 0;
        for ch in s.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch
                .to_digit(10)
                .ok_or(BigNumError::ParseError { bad_char: ch })?;
            saw_digit = true;
            chunk = chunk * 10 + d as u64;
            chunk_len += 1;
            if chunk_len == 19 {
                acc = acc.mul_small(10u64.pow(19 - 1) * 10) + UBig::from(chunk);
                chunk = 0;
                chunk_len = 0;
            }
        }
        if !saw_digit {
            return Err(BigNumError::EmptyInput);
        }
        if chunk_len > 0 {
            acc = acc.mul_small(10u64.pow(chunk_len)) + UBig::from(chunk);
        }
        Ok(acc)
    }

    /// Formats as a decimal string.
    pub fn to_decimal_str(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits: Vec<String> = Vec::new();
        let mut cur = self.clone();
        // Peel off 19 decimal digits at a time.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(CHUNK).expect("CHUNK is nonzero");
            digits.push(r.to_string());
            cur = q;
        }
        let mut s = String::new();
        for (i, d) in digits.iter().enumerate().rev() {
            if i == digits.len() - 1 {
                s.push_str(d);
            } else {
                s.push_str(&format!("{:019}", d.parse::<u64>().unwrap()));
            }
        }
        s
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        if v == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from(v as u64)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as Limb, (v >> 64) as Limb])
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal_str())
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hex is more useful when debugging limb-level algorithms.
        write!(f, "UBig(0x{})", self.to_hex_str())
    }
}

impl fmt::LowerHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized_empty() {
        assert!(UBig::zero().is_zero());
        assert_eq!(UBig::from(0u64), UBig::zero());
        assert_eq!(UBig::from_limbs(vec![0, 0, 0]), UBig::zero());
        assert_eq!(UBig::zero().bit_len(), 0);
    }

    #[test]
    fn bit_len_and_bit() {
        let x = UBig::from(0b1011u64);
        assert_eq!(x.bit_len(), 4);
        assert!(x.bit(0) && x.bit(1) && !x.bit(2) && x.bit(3));
        assert!(!x.bit(64));
        let y = UBig::from_limbs(vec![0, 1]);
        assert_eq!(y.bit_len(), 65);
        assert!(y.bit(64));
    }

    #[test]
    fn zeroize_clears_to_zero() {
        let mut x = UBig::from_limbs(vec![u64::MAX, 0xdead_beef, 7]);
        x.zeroize();
        assert!(x.is_zero());
        assert!(x.limbs().is_empty());
        // Idempotent, including on zero.
        x.zeroize();
        assert!(x.is_zero());
    }

    #[test]
    fn parity() {
        assert!(UBig::zero().is_even());
        assert!(UBig::one().is_odd());
        assert!(UBig::from(u64::MAX).is_odd());
        assert!(UBig::from_limbs(vec![0, 1]).is_even());
    }

    #[test]
    fn ordering_across_lengths() {
        let small = UBig::from(u64::MAX);
        let big = UBig::from_limbs(vec![0, 1]);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big.clone()), Ordering::Equal);
    }

    #[test]
    fn be_bytes_round_trip() {
        let cases = [
            UBig::zero(),
            UBig::one(),
            UBig::from(u64::MAX),
            UBig::from(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10u128),
        ];
        for x in cases {
            assert_eq!(UBig::from_be_bytes(&x.to_be_bytes()), x);
        }
    }

    #[test]
    fn be_bytes_leading_zeros_ignored() {
        assert_eq!(UBig::from_be_bytes(&[0, 0, 1, 2]), UBig::from(0x0102u64));
        assert_eq!(UBig::from_be_bytes(&[]), UBig::zero());
    }

    #[test]
    fn be_bytes_minimal_length() {
        assert_eq!(UBig::from(0x01_00u64).to_be_bytes(), vec![1, 0]);
        assert_eq!(UBig::from(0xffu64).to_be_bytes(), vec![0xff]);
    }

    #[test]
    fn padded_bytes() {
        let x = UBig::from(0x0102u64);
        assert_eq!(x.to_be_bytes_padded(4).unwrap(), vec![0, 0, 1, 2]);
        assert!(x.to_be_bytes_padded(1).is_err());
        assert_eq!(UBig::zero().to_be_bytes_padded(3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn hex_round_trip() {
        let x = UBig::from_hex_str("0xDEADBEEF_00000000_12345678").unwrap();
        assert_eq!(UBig::from_hex_str(&x.to_hex_str()).unwrap(), x);
        assert_eq!(x.to_hex_str(), "deadbeef0000000012345678");
    }

    #[test]
    fn hex_rejects_garbage() {
        assert!(UBig::from_hex_str("12g4").is_err());
        assert!(UBig::from_hex_str("").is_err());
        assert!(UBig::from_hex_str("  _ ").is_err());
    }

    #[test]
    fn hex_allows_rfc_formatting() {
        let spaced = UBig::from_hex_str("FFFFFFFF FFFFFFFF C90FDAA2").unwrap();
        let joined = UBig::from_hex_str("FFFFFFFFFFFFFFFFC90FDAA2").unwrap();
        assert_eq!(spaced, joined);
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
            "99999999999999999999999999999999999999999999999",
        ] {
            let x = UBig::from_decimal_str(s).unwrap();
            assert_eq!(x.to_decimal_str(), s);
        }
    }

    #[test]
    fn decimal_rejects_garbage() {
        assert!(UBig::from_decimal_str("12a").is_err());
        assert!(UBig::from_decimal_str("").is_err());
        assert!(UBig::from_decimal_str("_").is_err());
    }

    #[test]
    fn u128_round_trip() {
        let v = 0xdead_beef_dead_beef_dead_beef_dead_beefu128;
        assert_eq!(UBig::from(v).to_u128(), Some(v));
        assert_eq!(UBig::from(7u64).to_u64(), Some(7));
        assert_eq!(UBig::from_limbs(vec![1, 2, 3]).to_u128(), None);
    }

    #[test]
    fn display_and_debug() {
        let x = UBig::from(255u64);
        assert_eq!(format!("{x}"), "255");
        assert_eq!(format!("{x:?}"), "UBig(0xff)");
        assert_eq!(format!("{x:x}"), "ff");
    }
}
