//! Bit shifts for [`UBig`].

use std::ops::{Shl, Shr};

use crate::limb::{Limb, LIMB_BITS};
use crate::UBig;

impl UBig {
    /// `self << bits`.
    pub fn shl_bits(&self, bits: u64) -> UBig {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS as u64) as usize;
        let bit_shift = (bits % LIMB_BITS as u64) as u32;
        let mut out = vec![0 as Limb; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: Limb = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        UBig::from_limbs(out)
    }

    /// `self >> bits` (shifting past the end yields zero).
    pub fn shr_bits(&self, bits: u64) -> UBig {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = (bits % LIMB_BITS as u64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&n| n << (LIMB_BITS - bit_shift));
                out.push(lo | hi);
            }
        }
        UBig::from_limbs(out)
    }
}

impl Shl<u64> for &UBig {
    type Output = UBig;
    fn shl(self, bits: u64) -> UBig {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &UBig {
    type Output = UBig;
    fn shr(self, bits: u64) -> UBig {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shl_small_and_cross_limb() {
        assert_eq!(UBig::one().shl_bits(4), UBig::from(16u64));
        assert_eq!(UBig::one().shl_bits(64), UBig::from_limbs(vec![0, 1]));
        assert_eq!(UBig::one().shl_bits(65), UBig::from_limbs(vec![0, 2]));
        let x = UBig::from(0x8000_0000_0000_0000u64);
        assert_eq!(x.shl_bits(1), UBig::from_limbs(vec![0, 1]));
    }

    #[test]
    fn shr_small_and_cross_limb() {
        assert_eq!(UBig::from(16u64).shr_bits(4), UBig::one());
        assert_eq!(UBig::from_limbs(vec![0, 1]).shr_bits(64), UBig::one());
        assert_eq!(UBig::from_limbs(vec![0, 2]).shr_bits(65), UBig::one());
        assert_eq!(UBig::from(7u64).shr_bits(100), UBig::zero());
    }

    #[test]
    fn shift_round_trip() {
        let x = UBig::from_hex_str("deadbeefcafebabe0123456789abcdef").unwrap();
        for bits in [0u64, 1, 7, 63, 64, 65, 127, 128, 200] {
            assert_eq!(x.shl_bits(bits).shr_bits(bits), x, "bits={bits}");
        }
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        let x = UBig::from(0x1234_5678u64);
        assert_eq!(x.shl_bits(20), x.mul_small(1 << 20));
    }

    #[test]
    fn operators() {
        let x = UBig::from(6u64);
        assert_eq!(&x << 1, UBig::from(12u64));
        assert_eq!(&x >> 1, UBig::from(3u64));
    }

    #[test]
    fn zero_shifts() {
        assert_eq!(UBig::zero().shl_bits(100), UBig::zero());
        assert_eq!(UBig::zero().shr_bits(100), UBig::zero());
    }
}
