//! Multi-lane fixed-exponent exponentiation.
//!
//! Every protocol round in the paper raises a whole codeword set to the
//! *same* secret exponent — §6.1 charges `Ce·(|VS| + 2|VR|)`
//! exponentiations for intersection, all sharing one `e` per key. Two
//! amortizations fall out of that shape:
//!
//! 1. **Plan reuse** ([`FixedExponentPlan`]): the sliding-window recoding
//!    of the exponent (window schedule, odd-powers table layout) is
//!    computed once per key and replayed for every base, across calls.
//! 2. **Lane interleaving** ([`MontgomeryCtx::pow_multi_ctx`]): the
//!    ladder advances [`LANES`] independent Montgomery lanes per window
//!    step. A single CIOS carry chain is serial — each `mac` waits on the
//!    previous carry — so a scalar kernel leaves most of the multiplier's
//!    pipeline idle. Interleaving K independent lanes at the *limb* level
//!    (inner loop over lanes for each limb position) puts K disjoint
//!    carry chains in flight, letting the out-of-order core overlap them.
//!    This is a single-core ILP win: it needs no threads, so it holds on
//!    the 1-core bench host where thread pools lose.
//!
//! The interleaved kernels are monomorphized per limb count (4-limb
//! demo groups and the paper's 8-limb/512-bit working size) with all
//! scratch on the stack; other widths fall back to the scalar
//! sliding-window ladder, so results are identical for every modulus.

use std::fmt;
use std::sync::Arc;

use crate::limb::{adc, mac, mul_wide, sbb, Limb, LIMB_BITS};
use crate::montgomery::{geq, recode_exponent, window_for_bits, MontgomeryCtx, PowPlan};
use crate::UBig;

/// Number of independent Montgomery lanes the interleaved kernels
/// advance per window step. Four 64-bit carry chains are enough to cover
/// the multiply latency on current cores without spilling the per-lane
/// state out of registers.
pub const LANES: usize = 4;

/// Widest limb count with a dedicated interleaved kernel (8 limbs = the
/// paper's 512-bit working modulus). Lane state is padded to this width
/// so every specialization shares one stack layout.
const MAX_FIXED_LIMBS: usize = 8;

/// One lane's value, padded to [`MAX_FIXED_LIMBS`]; only the low `S`
/// limbs are meaningful for an `S`-limb modulus.
type LaneVal = [Limb; MAX_FIXED_LIMBS];

/// Zero-initialized lane block.
const ZERO_BLOCK: [LaneVal; LANES] = [[0; MAX_FIXED_LIMBS]; LANES];

/// The modulus limbs padded to the fixed kernel width.
fn padded_modulus<const S: usize>(ctx: &MontgomeryCtx) -> LaneVal {
    let mut n = [0 as Limb; MAX_FIXED_LIMBS];
    n[..S].copy_from_slice(&ctx.n[..S]);
    n
}

/// Final CIOS cleanup for one lane: copy the low `S` limbs out of the
/// row buffer and apply the single conditional subtract (`t < 2n`).
fn finish_lane<const S: usize>(t: &[Limb], top: Limb, n: &LaneVal, out: &mut LaneVal) {
    out[..S].copy_from_slice(&t[..S]);
    if top != 0 || geq(&out[..S], &n[..S]) {
        let mut borrow: Limb = 0;
        for i in 0..S {
            out[i] = sbb(out[i], n[i], &mut borrow);
        }
        debug_assert_eq!(top.wrapping_sub(borrow), 0);
    }
}

/// [`LANES`]-lane CIOS Montgomery multiplication: `out[l] = a[l]·b[l]·R⁻¹
/// mod n` for all lanes. The inner loops run lane-innermost so the four
/// independent carry chains interleave in the instruction stream; all
/// scratch lives on the stack and the loop bodies are allocation-free.
fn mul_multi<const S: usize>(
    ctx: &MontgomeryCtx,
    a: &[LaneVal; LANES],
    b: &[LaneVal; LANES],
    out: &mut [LaneVal; LANES],
) {
    let n = padded_modulus::<S>(ctx);
    let n0_inv = ctx.n0_inv;
    let mut t = [[0 as Limb; MAX_FIXED_LIMBS + 2]; LANES];
    for i in 0..S {
        // t[l] += a[l][i] * b[l]
        let mut carry = [0 as Limb; LANES];
        for j in 0..S {
            for l in 0..LANES {
                t[l][j] = mac(t[l][j], a[l][i], b[l][j], &mut carry[l]);
            }
        }
        for l in 0..LANES {
            let mut c2: Limb = 0;
            t[l][S] = adc(t[l][S], carry[l], &mut c2);
            t[l][S + 1] = c2;
        }
        // m[l] = t[l][0] * n0_inv; t[l] = (t[l] + m[l]*n) / 2^64
        let mut m = [0 as Limb; LANES];
        let mut carry = [0 as Limb; LANES];
        for l in 0..LANES {
            m[l] = t[l][0].wrapping_mul(n0_inv);
            // First step: low limb becomes zero by construction.
            let _ = mac(t[l][0], m[l], n[0], &mut carry[l]);
        }
        for j in 1..S {
            for l in 0..LANES {
                t[l][j - 1] = mac(t[l][j], m[l], n[j], &mut carry[l]);
            }
        }
        for l in 0..LANES {
            let mut c2: Limb = 0;
            t[l][S - 1] = adc(t[l][S], carry[l], &mut c2);
            t[l][S] = t[l][S + 1] + c2; // cannot overflow: t < 2n·R
            t[l][S + 1] = 0;
        }
    }
    for l in 0..LANES {
        finish_lane::<S>(&t[l][..S], t[l][S], &n, &mut out[l]);
    }
}

/// [`LANES`]-lane Montgomery squaring: the fused
/// triangle + double + diagonal pass of the scalar kernel (see
/// `MontgomeryCtx::mont_sqr_to`), with the rows of all lanes interleaved
/// limb-by-limb, followed by a lane-interleaved deferred-carry REDC.
fn sqr_multi<const S: usize>(
    ctx: &MontgomeryCtx,
    a: &[LaneVal; LANES],
    out: &mut [LaneVal; LANES],
) {
    let n = padded_modulus::<S>(ctx);
    let n0_inv = ctx.n0_inv;
    let mut t = [[0 as Limb; 2 * MAX_FIXED_LIMBS + 1]; LANES];
    // Strict upper triangle with doubling + diagonal fused per row (the
    // invariant is documented on the scalar kernel: once row i's macs
    // finish, positions 2i and 2i+1 are final).
    let mut shift_in = [0 as Limb; LANES];
    let mut dcarry = [0 as Limb; LANES];
    for i in 0..S {
        let mut carry = [0 as Limb; LANES];
        for j in i + 1..S {
            for l in 0..LANES {
                t[l][i + j] = mac(t[l][i + j], a[l][i], a[l][j], &mut carry[l]);
            }
        }
        for l in 0..LANES {
            t[l][i + S] = carry[l];
            let (lo, hi) = mul_wide(a[l][i], a[l][i]);
            let even = t[l][2 * i];
            let odd = t[l][2 * i + 1];
            let d0 = (even << 1) | shift_in[l];
            let d1 = (odd << 1) | (even >> (LIMB_BITS - 1));
            shift_in[l] = odd >> (LIMB_BITS - 1);
            t[l][2 * i] = adc(d0, lo, &mut dcarry[l]);
            t[l][2 * i + 1] = adc(d1, hi, &mut dcarry[l]);
        }
    }
    // REDC with branchless deferred row carries (see `redc_to`).
    let mut deferred = [0 as Limb; LANES];
    for i in 0..S {
        let mut m = [0 as Limb; LANES];
        for l in 0..LANES {
            m[l] = t[l][i].wrapping_mul(n0_inv);
        }
        let mut carry = [0 as Limb; LANES];
        for j in 0..S {
            for l in 0..LANES {
                t[l][i + j] = mac(t[l][i + j], m[l], n[j], &mut carry[l]);
            }
        }
        for l in 0..LANES {
            let mut c1: Limb = 0;
            let top = adc(t[l][i + S], carry[l], &mut c1);
            let mut c2: Limb = 0;
            t[l][i + S] = adc(top, deferred[l], &mut c2);
            deferred[l] = c1 + c2;
        }
    }
    for l in 0..LANES {
        let mut c: Limb = 0;
        t[l][2 * S] = adc(t[l][2 * S], deferred[l], &mut c);
        debug_assert_eq!(c, 0);
        finish_lane::<S>(&t[l][S..2 * S], t[l][2 * S], &n, &mut out[l]);
    }
}

impl MontgomeryCtx {
    /// Executes a recoded exponent against one block of [`LANES`]
    /// Montgomery-form bases, advancing all lanes through the shared
    /// window schedule. Identical ladder shape to the scalar
    /// `pow_planned`; only the kernels are lane-blocked.
    fn pow_block<const S: usize>(&self, bases: &[LaneVal; LANES], plan: &PowPlan) -> [LaneVal; LANES] {
        let init_idx = match plan.init_idx {
            // Zero exponent: empty ladder, every lane is 1 in Montgomery form.
            None => {
                let mut ones = ZERO_BLOCK;
                for lane in ones.iter_mut() {
                    lane[..S].copy_from_slice(&self.one_mont);
                }
                return ones;
            }
            Some(idx) => idx,
        };
        // Odd powers only: table[i][l] = base_l^(2i+1) in Montgomery form.
        let table_len = plan.max_idx + 1;
        let mut table: Vec<[LaneVal; LANES]> = Vec::with_capacity(table_len);
        table.push(*bases);
        if table_len > 1 {
            let mut base_sq = ZERO_BLOCK;
            sqr_multi::<S>(self, bases, &mut base_sq);
            for i in 1..table_len {
                let mut next = ZERO_BLOCK;
                mul_multi::<S>(self, &table[i - 1], &base_sq, &mut next);
                table.push(next);
            }
        }
        let mut acc = table[init_idx];
        let mut tmp = ZERO_BLOCK;
        for step in &plan.steps {
            for _ in 0..step.squarings {
                sqr_multi::<S>(self, &acc, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            mul_multi::<S>(self, &acc, &table[step.table_idx], &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        for _ in 0..plan.tail_squarings {
            sqr_multi::<S>(self, &acc, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        acc
    }

    /// Raises a batch of bases through the fixed-width interleaved
    /// kernels, [`LANES`] at a time. A ragged tail replays lane 0 in the
    /// unused lanes and discards their results — same wall time as a
    /// full block, but correctness never depends on the batch shape.
    fn pow_batch_fixed<const S: usize>(&self, bases: &[UBig], plan: &PowPlan) -> Vec<UBig> {
        let mut out = Vec::with_capacity(bases.len());
        for block in bases.chunks(LANES) {
            let mut lanes = ZERO_BLOCK;
            for (lane, base) in lanes.iter_mut().zip(block) {
                lane[..S].copy_from_slice(&self.to_mont(base));
            }
            for l in block.len()..LANES {
                lanes[l] = lanes[0];
            }
            let res = self.pow_block::<S>(&lanes, plan);
            for lane in res.iter().take(block.len()) {
                out.push(self.from_mont(&lane[..S]));
            }
        }
        out
    }

    /// Replays one recoded plan over a batch of bases, choosing the best
    /// kernel available: the AVX-512 IFMA lane backend when the `simd`
    /// feature is on, the CPU supports it and the batch is large enough
    /// to fill its wider lanes; otherwise the interleaved fixed-width
    /// scalar kernel (4/8-limb moduli) or the scalar sliding-window
    /// ladder. All paths are proptest-differentialed to identical results.
    pub(crate) fn pow_batch_planned(&self, bases: &[UBig], plan: &PowPlan) -> Vec<UBig> {
        #[cfg(feature = "simd")]
        if bases.len() >= simd_path::MIN_SIMD_BATCH {
            if let Some(ictx) = self.ifma_ctx() {
                return self.pow_batch_ifma(ictx, bases, plan);
            }
        }
        self.pow_batch_scalar_planned(bases, plan)
    }

    /// The scalar kernel dispatch: interleaved fixed-width kernels for the
    /// protocol-standard 4/8-limb moduli, sliding-window ladder otherwise.
    fn pow_batch_scalar_planned(&self, bases: &[UBig], plan: &PowPlan) -> Vec<UBig> {
        match self.limbs() {
            4 => self.pow_batch_fixed::<4>(bases, plan),
            8 => self.pow_batch_fixed::<8>(bases, plan),
            _ => bases
                .iter()
                .map(|b| self.from_mont(&self.pow_planned(&self.to_mont(b), plan)))
                .collect(),
        }
    }

    /// [`Self::pow_multi_ctx`] pinned to the scalar kernels, bypassing any
    /// SIMD backend. This is the differential oracle for the `simd`
    /// feature's proptests and the honest "scalar `pow_multi`" side of the
    /// kernel benchmarks; in a default build it is exactly `pow_multi_ctx`.
    pub fn pow_batch_scalar(&self, bases: &[UBig], exponent: &UBig) -> Vec<UBig> {
        let plan = recode_exponent(exponent, window_for_bits(exponent.bit_len()));
        self.pow_batch_scalar_planned(bases, &plan)
    }

    /// True when batches under this context actually run on the SIMD
    /// backend: the `simd` feature is compiled in, the CPU passes runtime
    /// detection, and the modulus fits the lane kernel's digit budget.
    pub fn simd_active(&self) -> bool {
        #[cfg(feature = "simd")]
        {
            self.ifma_ctx().is_some()
        }
        #[cfg(not(feature = "simd"))]
        {
            false
        }
    }

    /// Exponentiates every base in `bases` to the same `exponent`
    /// through the [`LANES`]-lane interleaved kernel: the exponent is
    /// recoded once, then each block of [`LANES`] bases walks the shared
    /// window schedule together so their Montgomery carry chains overlap
    /// on a single core. Returns exactly [`MontgomeryCtx::pow_batch`]'s
    /// results, faster. For an exponent reused across calls, build a
    /// [`FixedExponentPlan`] instead to amortize the recoding too.
    pub fn pow_multi_ctx(&self, bases: &[UBig], exponent: &UBig) -> Vec<UBig> {
        let plan = recode_exponent(exponent, window_for_bits(exponent.bit_len()));
        self.pow_batch_planned(bases, &plan)
    }
}

/// AVX-512 IFMA lane path: digit conversions between 64-bit limbs and the
/// radix-2^52 layout the SIMD crate computes in, plus the batch driver.
/// The exponent's recoded schedule stays on this side of the crate
/// boundary — `minshare-simd` only ever sees individual multiply operands
/// and public modulus constants.
#[cfg(feature = "simd")]
mod simd_path {
    use super::*;
    use minshare_simd::{IfmaCtx, LaneBlock, DIGIT_BITS, DIGIT_MASK, LANES as SIMD_LANES};

    /// Below this batch size the 8-wide lane kernel runs mostly empty and
    /// the scalar interleaved kernel is faster; the protocol hot path
    /// (whole codeword sets per round) is always far above it.
    pub(super) const MIN_SIMD_BATCH: usize = 4;

    /// Radix-2^52 digit count covering an `limbs`-limb modulus.
    fn digit_count(limbs: usize) -> usize {
        (limbs * LIMB_BITS as usize).div_ceil(DIGIT_BITS as usize)
    }

    /// Canonical radix-2^52 digits of a little-endian limb slice (which
    /// may be shorter than the digits cover — high digits read as zero).
    fn limbs_to_digits(limbs: &[Limb], out: &mut [u64]) {
        for (d, slot) in out.iter_mut().enumerate() {
            let off = d * DIGIT_BITS as usize;
            let i = off / LIMB_BITS as usize;
            let sh = off % LIMB_BITS as usize;
            let mut v = limbs.get(i).copied().unwrap_or(0) >> sh;
            if sh > (LIMB_BITS - DIGIT_BITS) as usize {
                v |= limbs.get(i + 1).copied().unwrap_or(0) << (LIMB_BITS as usize - sh);
            }
            *slot = v & DIGIT_MASK;
        }
    }

    /// Reassembles canonical radix-2^52 digits into a `UBig`.
    fn digits_to_ubig(digits: &[u64]) -> UBig {
        let bits = digits.len() * DIGIT_BITS as usize;
        let nlimbs = bits.div_ceil(LIMB_BITS as usize);
        let mut limbs = vec![0 as Limb; nlimbs];
        for (d, &dig) in digits.iter().enumerate() {
            let off = d * DIGIT_BITS as usize;
            let i = off / LIMB_BITS as usize;
            let sh = off % LIMB_BITS as usize;
            limbs[i] |= dig << sh;
            if sh > (LIMB_BITS - DIGIT_BITS) as usize && i + 1 < nlimbs {
                limbs[i + 1] |= dig >> (LIMB_BITS as usize - sh);
            }
        }
        UBig::from_limbs(limbs)
    }

    impl MontgomeryCtx {
        /// The cached IFMA lane context for this modulus, built on first
        /// use: `None` (once probed) when the CPU lacks AVX-512 IFMA or
        /// the modulus exceeds the lane kernel's digit budget. Only public
        /// constants (n, R' mod n, R'² mod n, -n⁻¹ mod 2^52) cross into
        /// the SIMD crate.
        pub(crate) fn ifma_ctx(&self) -> Option<&Arc<IfmaCtx>> {
            self.ifma
                .get_or_init(|| {
                    if !minshare_simd::available() {
                        return None;
                    }
                    let k = digit_count(self.limbs());
                    if k == 0 || k > minshare_simd::MAX_DIGITS {
                        return None;
                    }
                    let r_bits = (k as u64) * DIGIT_BITS as u64;
                    let one = UBig::one().shl_bits(r_bits).rem_ref(self.modulus()).ok()?;
                    let rr = UBig::one()
                        .shl_bits(2 * r_bits)
                        .rem_ref(self.modulus())
                        .ok()?;
                    let mut n52 = vec![0u64; k];
                    let mut rr52 = vec![0u64; k];
                    let mut one52 = vec![0u64; k];
                    limbs_to_digits(&self.n, &mut n52);
                    limbs_to_digits(rr.limbs(), &mut rr52);
                    limbs_to_digits(one.limbs(), &mut one52);
                    let n0_inv52 = self.n0_inv & DIGIT_MASK;
                    IfmaCtx::new(k, &n52, n0_inv52, &rr52, &one52).map(Arc::new)
                })
                .as_ref()
        }

        /// The shared window ladder over one 8-wide lane block — the same
        /// shape as [`MontgomeryCtx::pow_block`], with the lane kernels
        /// swapped for the IFMA backend.
        fn pow_block_ifma(&self, ictx: &IfmaCtx, bases: &LaneBlock, plan: &PowPlan) -> LaneBlock {
            let init_idx = match plan.init_idx {
                // Zero exponent: every lane is 1 in Montgomery form.
                None => return ictx.one_block(),
                Some(idx) => idx,
            };
            let table_len = plan.max_idx + 1;
            let mut table: Vec<LaneBlock> = Vec::with_capacity(table_len);
            table.push(*bases);
            if table_len > 1 {
                let base_sq = ictx.mont_sqr(bases);
                for i in 1..table_len {
                    table.push(ictx.mont_mul(&table[i - 1], &base_sq));
                }
            }
            let mut acc = table[init_idx];
            for step in &plan.steps {
                for _ in 0..step.squarings {
                    acc = ictx.mont_sqr(&acc);
                }
                acc = ictx.mont_mul(&acc, &table[step.table_idx]);
            }
            for _ in 0..plan.tail_squarings {
                acc = ictx.mont_sqr(&acc);
            }
            acc
        }

        /// Batch driver for the IFMA path: blocks of 8 bases walk the
        /// shared window schedule together. Ragged tails replay lane 0 in
        /// the unused lanes (uniform kernel math, discarded results),
        /// mirroring the scalar kernel's tail policy.
        pub(super) fn pow_batch_ifma(
            &self,
            ictx: &IfmaCtx,
            bases: &[UBig],
            plan: &PowPlan,
        ) -> Vec<UBig> {
            let k = ictx.k();
            let mut out = Vec::with_capacity(bases.len());
            let mut digits = vec![0u64; k];
            for block in bases.chunks(SIMD_LANES) {
                let mut lanes = LaneBlock::zero();
                for (lane, base) in block.iter().enumerate() {
                    let reduced = base.rem_ref(self.modulus()).expect("modulus nonzero");
                    limbs_to_digits(reduced.limbs(), &mut digits);
                    lanes.set_lane(lane, &digits);
                }
                if block.len() < SIMD_LANES {
                    let mut lane0 = vec![0u64; k];
                    lanes.lane(0, &mut lane0);
                    for l in block.len()..SIMD_LANES {
                        lanes.set_lane(l, &lane0);
                    }
                }
                let bases_m = ictx.to_mont(&lanes);
                let res_m = self.pow_block_ifma(ictx, &bases_m, plan);
                let res = ictx.from_mont(&res_m);
                for lane in 0..block.len() {
                    res.lane(lane, &mut digits);
                    // from_mont leaves values <= n; one rem finishes the
                    // conditional subtract in the integer domain.
                    out.push(
                        digits_to_ubig(&digits)
                            .rem_ref(self.modulus())
                            .expect("modulus nonzero"),
                    );
                }
            }
            out
        }
    }
}

/// A reusable fixed-exponent exponentiation plan: the sliding-window
/// recoding of one exponent plus (a handle to) the Montgomery constants
/// of one modulus, built once per key and replayed for every value.
///
/// The recoded schedule is a deterministic encoding of the exponent, so
/// the plan is secret material wherever the exponent is: it has no
/// `Debug`/`PartialEq` derives, and the schedule is zeroized on drop.
pub struct FixedExponentPlan {
    ctx: Arc<MontgomeryCtx>,
    plan: PowPlan,
}

impl FixedExponentPlan {
    /// Recodes `exponent` for the modulus behind `ctx`. Cost is one bit
    /// scan of the exponent; no per-base state is built until use.
    pub fn new(ctx: Arc<MontgomeryCtx>, exponent: &UBig) -> Self {
        let plan = recode_exponent(exponent, window_for_bits(exponent.bit_len()));
        FixedExponentPlan { ctx, plan }
    }

    /// The modulus this plan exponentiates under.
    pub fn modulus(&self) -> &UBig {
        self.ctx.modulus()
    }

    /// `base^e mod n` for this plan's fixed `e`, via the scalar ladder.
    pub fn pow(&self, base: &UBig) -> UBig {
        self.ctx
            .from_mont(&self.ctx.pow_planned(&self.ctx.to_mont(base), &self.plan))
    }

    /// `base^e mod n` for every base, via the [`LANES`]-lane interleaved
    /// kernel (`pow_multi_ctx` with this plan's cached recoding).
    pub fn pow_batch(&self, bases: &[UBig]) -> Vec<UBig> {
        self.ctx.pow_batch_planned(bases, &self.plan)
    }
}

impl fmt::Debug for FixedExponentPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The schedule encodes the exponent: expose only public shape.
        f.debug_struct("FixedExponentPlan")
            .field("modulus_bits", &self.ctx.modulus().bit_len())
            .finish_non_exhaustive()
    }
}

impl Drop for FixedExponentPlan {
    fn drop(&mut self) {
        self.plan.zeroize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_512() -> MontgomeryCtx {
        // Odd 512-bit modulus (8 limbs): exercises the interleaved kernel.
        let m = UBig::from_hex_str(
            "f37fa8e5afa15b9d4b2f7c8d6e5a4b3c2d1e0f9a8b7c6d5e4f3a2b1c0d9e8f71\
             23456789abcdef0fedcba987654321ffffffffffffffff0123456789abcdef03",
        )
        .unwrap();
        MontgomeryCtx::new(&m).unwrap()
    }

    fn ctx_3_limbs() -> MontgomeryCtx {
        // 192-bit modulus: no fixed kernel, exercises the scalar fallback.
        let m = UBig::from_hex_str(
            "f37fa8e5afa15b9d4b2f7c8d6e5a4b3c2d1e0f9a8b7c6d5f",
        )
        .unwrap();
        MontgomeryCtx::new(&m).unwrap()
    }

    fn bases(ctx: &MontgomeryCtx, count: usize) -> Vec<UBig> {
        (0..count as u64)
            .map(|i| {
                UBig::from(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(3))
                    .modpow_binary(&UBig::from(3u64), ctx.modulus())
            })
            .collect()
    }

    #[test]
    fn multi_matches_scalar_batch_all_ragged_tails() {
        let ctx = ctx_512();
        let exp = UBig::from_hex_str("deadbeefcafebabe0123456789abcdef").unwrap();
        // 1..=2·LANES+1 covers every tail shape (batch % LANES in 0..LANES).
        for count in 1..=(2 * LANES + 1) {
            let bases = bases(&ctx, count);
            assert_eq!(
                ctx.pow_multi_ctx(&bases, &exp),
                ctx.pow_batch(&bases, &exp),
                "count={count}"
            );
        }
        assert!(ctx.pow_multi_ctx(&[], &exp).is_empty());
    }

    #[test]
    fn multi_adversarial_exponents() {
        let ctx = ctx_512();
        let bases = bases(&ctx, LANES + 1);
        let exps = [
            UBig::zero(),
            UBig::one(),
            UBig::from(2u64),
            ctx.modulus().sub_small(2).unwrap(),
            UBig::one().shl_bits(511),
            UBig::one().shl_bits(512).sub_small(1).unwrap(),
        ];
        for exp in &exps {
            let want: Vec<UBig> = bases
                .iter()
                .map(|b| b.modpow_binary(exp, ctx.modulus()))
                .collect();
            assert_eq!(
                ctx.pow_multi_ctx(&bases, exp),
                want,
                "exp bits={}",
                exp.bit_len()
            );
        }
    }

    #[test]
    fn generic_width_falls_back_to_scalar() {
        let ctx = ctx_3_limbs();
        let exp = UBig::from(65537u64);
        let bases = bases(&ctx, LANES + 2);
        let want: Vec<UBig> = bases
            .iter()
            .map(|b| b.modpow_binary(&exp, ctx.modulus()))
            .collect();
        assert_eq!(ctx.pow_multi_ctx(&bases, &exp), want);
    }

    #[test]
    fn plan_reuse_matches_fresh_recode() {
        let ctx = Arc::new(ctx_512());
        let exp = UBig::from_hex_str("0123456789abcdef00ff00ff00ff00ff").unwrap();
        let plan = FixedExponentPlan::new(Arc::clone(&ctx), &exp);
        assert_eq!(plan.modulus(), ctx.modulus());
        let bases = bases(&ctx, 2 * LANES + 3);
        for _ in 0..2 {
            assert_eq!(plan.pow_batch(&bases), ctx.pow_batch(&bases, &exp));
        }
        assert_eq!(plan.pow(&bases[0]), ctx.pow(&bases[0], &exp));
    }
}
