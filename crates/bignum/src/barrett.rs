//! Barrett reduction — the classical division-free alternative to
//! Montgomery arithmetic.
//!
//! Montgomery multiplication (the default engine behind `Ce`) requires an
//! odd modulus and a domain conversion; Barrett reduction works for any
//! modulus and reduces each product directly:
//! with `k = ⌈log₂ m⌉` and a precomputed `µ = ⌊4^k / m⌋`,
//!
//! ```text
//! q = ((x >> (k−1)) · µ) >> (k+1),   r = x − q·m,   r ∈ [0, 3m)
//! ```
//!
//! The `ablation/modexp_strategy` bench compares the two engines; the
//! workspace keeps Montgomery as the default because it wins on repeated
//! multiplication under a fixed odd modulus (exactly the protocol
//! workload), while Barrett serves even moduli and one-off reductions.

use crate::error::BigNumError;
use crate::UBig;

/// Precomputed Barrett context for a fixed modulus `m ≥ 3`.
#[derive(Clone, Debug)]
pub struct BarrettCtx {
    m: UBig,
    /// `⌊4^k / m⌋` for `k = bit_len(m)`.
    mu: UBig,
    /// `k = bit_len(m)`.
    k: u64,
}

impl BarrettCtx {
    /// Builds a context. Works for any modulus `≥ 3` (odd or even).
    pub fn new(modulus: &UBig) -> Result<Self, BigNumError> {
        if modulus < &UBig::from(3u64) {
            return Err(BigNumError::BitWidthTooSmall {
                requested: modulus.bit_len(),
                minimum: 2,
            });
        }
        let k = modulus.bit_len();
        let mu = UBig::one().shl_bits(2 * k).div_rem(modulus)?.0;
        Ok(BarrettCtx {
            m: modulus.clone(),
            mu,
            k,
        })
    }

    /// The modulus.
    pub fn modulus(&self) -> &UBig {
        &self.m
    }

    /// Reduces `x mod m` for any `x < 4^k` (in particular any product of
    /// two reduced operands).
    pub fn reduce(&self, x: &UBig) -> UBig {
        debug_assert!(x.bit_len() <= 2 * self.k, "operand too wide for Barrett");
        // q ≈ x / m, under-estimating by at most 2.
        let q = x
            .shr_bits(self.k - 1)
            .mul_ref(&self.mu)
            .shr_bits(self.k + 1);
        let mut r = x
            .checked_sub(&q.mul_ref(&self.m))
            .expect("Barrett quotient never over-estimates");
        while r >= self.m {
            r = r.checked_sub(&self.m).expect("ordered");
        }
        r
    }

    /// `(a · b) mod m` for reduced operands.
    pub fn mul(&self, a: &UBig, b: &UBig) -> UBig {
        debug_assert!(a < &self.m && b < &self.m);
        self.reduce(&a.mul_ref(b))
    }

    /// `base^exp mod m` by square-and-multiply over Barrett reduction.
    pub fn pow(&self, base: &UBig, exp: &UBig) -> UBig {
        let mut result = UBig::one().rem_ref(&self.m).expect("m nonzero");
        let mut b = base.rem_ref(&self.m).expect("m nonzero");
        let bits = exp.bit_len();
        for i in 0..bits {
            if exp.bit(i) {
                result = self.mul(&result, &b);
            }
            if i + 1 < bits {
                b = self.mul(&b, &b);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_tiny_moduli() {
        assert!(BarrettCtx::new(&UBig::zero()).is_err());
        assert!(BarrettCtx::new(&UBig::from(2u64)).is_err());
        assert!(BarrettCtx::new(&UBig::from(3u64)).is_ok());
    }

    #[test]
    fn reduce_matches_rem_small() {
        let m = UBig::from(1_000_003u64);
        let ctx = BarrettCtx::new(&m).unwrap();
        for x in [0u64, 1, 999_999, 1_000_003, 123_456_789_012] {
            let xb = UBig::from(x);
            assert_eq!(ctx.reduce(&xb), xb.rem_ref(&m).unwrap(), "x={x}");
        }
    }

    #[test]
    fn reduce_matches_rem_multilimb() {
        let m = UBig::from_hex_str("f123456789abcdef0fedcba987654321").unwrap();
        let ctx = BarrettCtx::new(&m).unwrap();
        // Products of reduced operands (the real workload).
        let mut x: u64 = 0x1234_5678;
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = UBig::from_limbs(vec![x, x.rotate_left(13)])
                .rem_ref(&m)
                .unwrap();
            let b = UBig::from_limbs(vec![x.rotate_left(29), x])
                .rem_ref(&m)
                .unwrap();
            let prod = a.mul_ref(&b);
            assert_eq!(ctx.reduce(&prod), prod.rem_ref(&m).unwrap());
        }
    }

    #[test]
    fn works_with_even_modulus() {
        // Montgomery cannot do this; Barrett can.
        let m = UBig::from(1_000_000u64);
        let ctx = BarrettCtx::new(&m).unwrap();
        let x = UBig::from(123_456_789_876u64);
        assert_eq!(ctx.reduce(&x), x.rem_ref(&m).unwrap());
        assert_eq!(
            ctx.pow(&UBig::from(7u64), &UBig::from(13u64)),
            UBig::from(7u64).modpow_binary(&UBig::from(13u64), &m)
        );
    }

    #[test]
    fn pow_matches_montgomery() {
        let m = UBig::from_hex_str("e91a2b3c4d5e6f7081928374655647381").unwrap();
        let m = if m.is_even() { m.add_small(1) } else { m };
        let barrett = BarrettCtx::new(&m).unwrap();
        let mont = crate::montgomery::MontgomeryCtx::new(&m).unwrap();
        let base = UBig::from_hex_str("123456789abcdef").unwrap();
        for e in [0u64, 1, 2, 65537, 0xdead_beef] {
            let exp = UBig::from(e);
            assert_eq!(barrett.pow(&base, &exp), mont.pow(&base, &exp), "e={e}");
        }
    }

    #[test]
    fn boundary_reduction_count() {
        // The classical bound: at most two subtractions after the
        // quotient estimate. Probe values right below 4^k.
        let m = UBig::from(0xffff_fffb_u64); // prime near 2^32
        let ctx = BarrettCtx::new(&m).unwrap();
        let max = UBig::one().shl_bits(64).sub_small(1).unwrap();
        assert_eq!(ctx.reduce(&max), max.rem_ref(&m).unwrap());
    }
}
