//! Property tests for the session-mux envelope.
//!
//! Three contracts, each load-bearing for the multi-session daemon:
//!
//! 1. **Round-trip** — every well-formed frame survives encode → decode
//!    bit-exactly, for arbitrary kinds, session ids, sequences, and
//!    payloads.
//! 2. **Corruption is typed loss, never misrouting** — any truncation or
//!    byte-level corruption of the wire image either decodes back to the
//!    *identical* frame (multiple flips cancelling out is theoretically
//!    possible, a single flip never goes undetected) or fails with a
//!    typed `NetError::MalformedFrame`. No corrupt frame ever decodes to
//!    a *different* session.
//! 3. **Transparency** — for a single session, the payload stream
//!    delivered through the envelope over a real transport is
//!    byte-identical to what the bare transport delivers, for arbitrary
//!    interleavings of other sessions on the wire around it.

use minshare_net::duplex::duplex_pair;
use minshare_net::{MuxFrame, MuxKind, NetError, Transport, MUX_HEADER_LEN};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = MuxKind> {
    prop_oneof![
        Just(MuxKind::Open),
        Just(MuxKind::Accept),
        Just(MuxKind::Busy),
        Just(MuxKind::Data),
        Just(MuxKind::Close),
        Just(MuxKind::Goaway),
    ]
}

fn arb_frame() -> impl Strategy<Value = MuxFrame> {
    (arb_kind(), any::<u32>(), any::<u32>(), vec(any::<u8>(), 0..512)).prop_map(
        |(kind, session, seq, payload)| MuxFrame {
            kind,
            session,
            seq,
            payload,
        },
    )
}

proptest! {
    // Contract 1: encode → decode is the identity on well-formed frames.
    #[test]
    fn round_trip_is_identity(frame in arb_frame()) {
        let decoded = MuxFrame::decode(&frame.encode()).expect("well-formed frame must decode");
        prop_assert_eq!(decoded, frame);
    }

    // Contract 1 corollary: the wire image is exactly header + payload.
    #[test]
    fn wire_length_is_header_plus_payload(frame in arb_frame()) {
        prop_assert_eq!(frame.encode().len(), MUX_HEADER_LEN + frame.payload.len());
    }

    // Contract 2: every truncation of a valid wire image is a typed
    // malformed-frame error.
    #[test]
    fn truncation_is_typed(frame in arb_frame(), cut in any::<usize>()) {
        let wire = frame.encode();
        let keep = cut % wire.len().max(1);
        let result = MuxFrame::decode(wire.get(..keep).unwrap_or(&[]));
        prop_assert!(matches!(result, Err(NetError::MalformedFrame { .. })));
    }

    // Contract 2: arbitrary byte corruption either cancels out (decodes
    // to the identical frame) or is a typed error. It never decodes to a
    // frame with different routing (session/kind/seq) or payload.
    #[test]
    fn corruption_never_misroutes(
        frame in arb_frame(),
        tweaks in vec((any::<usize>(), 1u8..=255), 1..8),
    ) {
        let wire = frame.encode();
        let mut bad = wire.clone();
        for (pos, xor) in &tweaks {
            let i = pos % bad.len();
            if let Some(byte) = bad.get_mut(i) {
                *byte ^= xor;
            }
        }
        match MuxFrame::decode(&bad) {
            // The tweaks cancelled each other out: must be the very
            // same frame, not a lookalike.
            Ok(decoded) => prop_assert_eq!(decoded, frame),
            Err(NetError::MalformedFrame { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    // Contract 2 at the bit level: a single bit flip is always detected
    // (CRC-32 has Hamming distance > 1 at these frame lengths).
    #[test]
    fn single_bitflip_always_detected(
        frame in arb_frame(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bad = frame.encode();
        let i = pos % bad.len();
        if let Some(byte) = bad.get_mut(i) {
            *byte ^= 1 << bit;
        }
        prop_assert!(matches!(
            MuxFrame::decode(&bad),
            Err(NetError::MalformedFrame { .. })
        ));
    }

    // Contract 3: sessions interleaved arbitrarily on one connection each
    // see exactly their own payload stream, in order — and that stream is
    // byte-identical to the same payloads sent over the bare transport
    // with no envelope at all.
    #[test]
    fn interleaved_sessions_demux_to_independent_streams(
        traffic in vec((0u32..5, vec(any::<u8>(), 0..64)), 1..60),
    ) {
        // Envelope path: all sessions share one connection.
        let (mut tx, mut rx) = duplex_pair();
        let mut seqs = std::collections::HashMap::new();
        for (session, payload) in &traffic {
            let seq = seqs.entry(*session).or_insert(0u32);
            tx.send(&MuxFrame::data(*session, *seq, payload.clone()).encode()).unwrap();
            *seq += 1;
        }
        drop(tx);
        let mut demuxed: std::collections::HashMap<u32, Vec<Vec<u8>>> = Default::default();
        while let Ok(raw) = rx.recv() {
            let frame = MuxFrame::decode(&raw).expect("uncorrupted frame must decode");
            prop_assert_eq!(frame.kind, MuxKind::Data);
            // Per-session sequence numbers count that session's frames only.
            let stream = demuxed.entry(frame.session).or_default();
            prop_assert_eq!(frame.seq as usize, stream.len());
            stream.push(frame.payload);
        }

        // Bare path: each session alone on its own connection.
        for wanted in 0u32..5 {
            let (mut btx, mut brx) = duplex_pair();
            for (session, payload) in &traffic {
                if *session == wanted {
                    btx.send(payload).unwrap();
                }
            }
            drop(btx);
            let mut bare = Vec::new();
            while let Ok(frame) = brx.recv() {
                bare.push(frame);
            }
            prop_assert_eq!(
                demuxed.remove(&wanted).unwrap_or_default(),
                bare,
                "session {} stream diverged from its solo run",
                wanted
            );
        }
        // Nothing demuxed to a session nobody sent to.
        prop_assert!(demuxed.is_empty());
    }
}
