//! Round-trip equality tests for the zero-copy frame batching path.
//!
//! The contract under test: for every transport in the stack,
//! `send_batch(batch)` is indistinguishable on the receive side (and on
//! the raw wire) from calling `send` once per frame.

use minshare_net::duplex::duplex_pair;
use minshare_net::framebatch::FrameBatch;
use minshare_net::robust::RobustTransport;
use minshare_net::secure::{Role, SecureChannel};
use minshare_net::simnet::{sim_pair, FaultPlan, SimConfig};
use minshare_net::{CountingTransport, NetError, Transport};

use minshare_crypto::QrGroup;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A varied set of payloads: empty, tiny, and multi-KiB frames.
fn payloads() -> Vec<Vec<u8>> {
    let mut out = vec![Vec::new(), b"x".to_vec(), b"two parts".to_vec()];
    for i in 0..8u32 {
        let len = 17 * (i as usize + 1) * (i as usize + 1);
        out.push((0..len).map(|j| (j as u8).wrapping_mul(31).wrapping_add(i as u8)).collect());
    }
    out
}

fn batch_of(frames: &[Vec<u8>]) -> FrameBatch {
    let mut batch = FrameBatch::new();
    for frame in frames {
        // Exercise the scatter/gather path: split each payload in two.
        let mid = frame.len() / 2;
        batch.push(&[&frame[..mid], &frame[mid..]]).unwrap();
    }
    batch
}

#[test]
fn duplex_batch_equals_per_frame() {
    let frames = payloads();

    let (mut a1, mut b1) = duplex_pair();
    for frame in &frames {
        a1.send(frame).unwrap();
    }
    let (mut a2, mut b2) = duplex_pair();
    a2.send_batch(batch_of(&frames)).unwrap();

    for frame in &frames {
        assert_eq!(&b1.recv().unwrap(), frame);
        assert_eq!(&b2.recv().unwrap(), frame);
    }
    drop((a1, a2));
    assert_eq!(b1.recv().unwrap_err(), NetError::Closed);
    assert_eq!(b2.recv().unwrap_err(), NetError::Closed);
}

#[test]
fn duplex_batch_respects_frame_limit() {
    let (a, _b) = duplex_pair();
    let mut a = a.with_frame_limit(8);
    let mut batch = FrameBatch::new();
    batch.push(&[&[0u8; 4]]).unwrap();
    batch.push(&[&[0u8; 9]]).unwrap();
    assert!(matches!(
        a.send_batch(batch).unwrap_err(),
        NetError::FrameTooLarge { size: 9, limit: 8 }
    ));
}

#[test]
fn counting_transport_accounts_batches_like_singles() {
    let frames = payloads();

    let (a1, mut b1) = duplex_pair();
    let (mut a1, single_stats) = CountingTransport::new(a1);
    for frame in &frames {
        a1.send(frame).unwrap();
    }
    let (a2, mut b2) = duplex_pair();
    let (mut a2, batch_stats) = CountingTransport::new(a2);
    a2.send_batch(batch_of(&frames)).unwrap();

    assert_eq!(batch_stats.bytes_sent(), single_stats.bytes_sent());
    assert_eq!(batch_stats.frames_sent(), single_stats.frames_sent());
    assert_eq!(batch_stats.frames_sent(), frames.len() as u64);
    for frame in &frames {
        assert_eq!(&b1.recv().unwrap(), frame);
        assert_eq!(&b2.recv().unwrap(), frame);
    }
}

fn secure_pair(
    group: &QrGroup,
) -> (
    SecureChannel<minshare_net::duplex::DuplexEndpoint>,
    SecureChannel<minshare_net::duplex::DuplexEndpoint>,
) {
    let (a, b) = duplex_pair();
    let g2 = group.clone();
    let responder = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(2);
        SecureChannel::establish(b, &g2, Role::Responder, &mut rng).unwrap()
    });
    let mut rng = StdRng::seed_from_u64(1);
    let chan_a = SecureChannel::establish(a, group, Role::Initiator, &mut rng).unwrap();
    (chan_a, responder.join().unwrap())
}

/// The secure channel's batch path must produce byte-identical records:
/// two channels with identical (seeded) keys, one sending per-frame and
/// one batching, must be interchangeable from the receiver's view.
#[test]
fn secure_channel_batch_equals_per_frame() {
    let mut rng = StdRng::seed_from_u64(0x5ec);
    let group = QrGroup::generate(&mut rng, 64).unwrap();
    let frames = payloads();

    let (mut single_tx, mut single_rx) = secure_pair(&group);
    let (mut batch_tx, mut batch_rx) = secure_pair(&group);

    for frame in &frames {
        single_tx.send(frame).unwrap();
    }
    batch_tx.send_batch(batch_of(&frames)).unwrap();

    for frame in &frames {
        assert_eq!(&single_rx.recv().unwrap(), frame);
        assert_eq!(&batch_rx.recv().unwrap(), frame);
    }
    // Counters advanced identically: the next frame from either sender
    // decrypts on the other pair's receiver-state clone of itself.
    single_tx.send(b"tail").unwrap();
    batch_tx.send(b"tail").unwrap();
    assert_eq!(single_rx.recv().unwrap(), b"tail");
    assert_eq!(batch_rx.recv().unwrap(), b"tail");
}

/// Batches pushed through the retry layer over seeded fault schedules:
/// delivered frames are exactly the sent prefix, in order, uncorrupted
/// and deduplicated. A sender whose final ACK is lost can end with a
/// typed error after the receiver already has everything (two-generals
/// tail), so the assertion is prefix-exactness per seed plus at least
/// one fully clean seed.
#[test]
fn robust_batch_survives_seeded_fault_schedules() {
    let frames = payloads();
    let mut clean = 0u32;
    for seed in 0..6u64 {
        let plan = FaultPlan {
            seed,
            drop: 0.25,
            duplicate: 0.25,
            delay: 0.3,
            reorder: 0.25,
            truncate: 0.15,
            bitflip: 0.15,
            max_delay_ms: 15,
            partitions: Vec::new(),
            bytes_per_ms: 0,
        };
        let config = SimConfig {
            real_backstop_ms: 5_000,
            ..SimConfig::default()
        };
        let (a, b, _trace) = sim_pair(config, &plan);
        let (mut a, mut b) = (RobustTransport::new(a), RobustTransport::new(b));

        let total = frames.len();
        let receiver = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < total {
                match b.recv() {
                    Ok(frame) => got.push(frame),
                    Err(_) => break,
                }
            }
            got
        });
        let send_result = a.send_batch(batch_of(&frames));
        drop(a); // close the link so a waiting receiver unblocks
        let got = receiver.join().unwrap();
        assert!(got.len() <= total, "seed {seed}: duplicate delivery");
        assert_eq!(
            got[..],
            frames[..got.len()],
            "seed {seed}: corrupted or reordered payloads"
        );
        match send_result {
            Ok(()) => {
                // Every frame was ACKed, so the receiver has them all.
                assert_eq!(got.len(), total, "seed {seed}: ACKed frame lost");
                clean += 1;
            }
            Err(NetError::Closed)
            | Err(NetError::RetriesExhausted { .. })
            | Err(NetError::TimedOut { .. }) => {}
            Err(other) => panic!("seed {seed}: unexpected terminal error {other}"),
        }
    }
    assert!(clean > 0, "no seed completed cleanly");
}

/// The simnet endpoint itself (default per-frame batch path) delivers a
/// batch in order over a perfect link.
#[test]
fn simnet_default_batch_path_round_trips() {
    let frames = payloads();
    let (mut a, mut b, _trace) = sim_pair(SimConfig::default(), &FaultPlan::perfect());
    a.send_batch(batch_of(&frames)).unwrap();
    for frame in &frames {
        assert_eq!(&b.recv().unwrap(), frame);
    }
}
