//! Session-multiplexing envelope.
//!
//! One framed connection carries many independent protocol sessions: each
//! underlying frame is a mux frame — a 13-byte header (kind, session id,
//! per-session sequence, CRC-32) followed by an opaque payload. The
//! envelope rides *inside* whatever frame discipline the connection
//! already has (TCP length-prefix, [`crate::secure::SecureChannel`]
//! records, simnet frames), so it composes under encryption and under the
//! retry layer unchanged: a secured connection seals whole mux frames,
//! and a `RobustTransport` below the mux retransmits them verbatim.
//!
//! # Frame layout
//!
//! ```text
//! kind (1) ‖ session id (4 BE) ‖ seq (4 BE) ‖ crc32 (4 BE) ‖ payload
//! ```
//!
//! The CRC covers `kind ‖ session ‖ seq ‖ payload`. Its job is to turn
//! corruption into *loss*: over a lossy link a bit-flipped session id
//! would otherwise route a frame into a different session — exactly the
//! cross-session interference the conformance harness forbids. A frame
//! that fails structural validation or its checksum is a typed
//! [`NetError::MalformedFrame`]; connection loops drop such frames and
//! let the per-session reliability layer retransmit.
//!
//! The per-session `seq` counts DATA frames on each direction of each
//! session. Ordering and exactly-once delivery are enforced by the
//! reliability layer above or below the mux (depending on the stack); the
//! sequence field exists so wire captures and per-session metrics can
//! attribute and order frames without parsing payloads.
//!
//! For a single session the envelope is a pure wrapper: the payload
//! stream delivered to the session is byte-identical to what the bare
//! connection would have delivered (property-tested in
//! `tests/mux_props.rs`).

use crate::error::NetError;
use crate::robust::crc32;

/// Byte length of the mux frame header.
pub const MUX_HEADER_LEN: usize = 13;

const KIND_OPEN: u8 = 1;
const KIND_ACCEPT: u8 = 2;
const KIND_BUSY: u8 = 3;
const KIND_DATA: u8 = 4;
const KIND_CLOSE: u8 = 5;
const KIND_GOAWAY: u8 = 6;
const KIND_STATS: u8 = 7;

/// What a mux frame means to the session layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxKind {
    /// Client asks the server to admit a new session; the payload is an
    /// application-level request (e.g. which protocol to run).
    Open,
    /// Server admitted the session named in the header. Idempotent: a
    /// retransmitted OPEN is answered with another ACCEPT.
    Accept,
    /// Server refused the session — admission control is at capacity.
    /// The payload carries the limit in force (4-byte BE), surfaced to
    /// the client as [`NetError::Busy`].
    Busy,
    /// One application frame belonging to the session in the header.
    Data,
    /// The named session is finished (either side may say so).
    Close,
    /// The whole connection is shutting down: no new sessions will be
    /// admitted, existing sessions drain.
    Goaway,
    /// Read-only telemetry exchange on the reserved session 0. A client
    /// STATS frame has an empty payload; the server answers with another
    /// STATS frame whose payload is one versioned JSON snapshot of the
    /// daemon's metrics registry (see `minshare-trace::metrics`,
    /// `stats_version` field). Never carries protocol data.
    Stats,
}

impl MuxKind {
    fn tag(self) -> u8 {
        match self {
            MuxKind::Open => KIND_OPEN,
            MuxKind::Accept => KIND_ACCEPT,
            MuxKind::Busy => KIND_BUSY,
            MuxKind::Data => KIND_DATA,
            MuxKind::Close => KIND_CLOSE,
            MuxKind::Goaway => KIND_GOAWAY,
            MuxKind::Stats => KIND_STATS,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            KIND_OPEN => Some(MuxKind::Open),
            KIND_ACCEPT => Some(MuxKind::Accept),
            KIND_BUSY => Some(MuxKind::Busy),
            KIND_DATA => Some(MuxKind::Data),
            KIND_CLOSE => Some(MuxKind::Close),
            KIND_GOAWAY => Some(MuxKind::Goaway),
            KIND_STATS => Some(MuxKind::Stats),
            _ => None,
        }
    }
}

/// One decoded frame of the session-mux envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxFrame {
    /// What the frame means (see [`MuxKind`]).
    pub kind: MuxKind,
    /// Which session it belongs to. Session 0 is reserved for
    /// connection-scoped frames (GOAWAY).
    pub session: u32,
    /// Per-session, per-direction DATA counter; 0 for control frames.
    pub seq: u32,
    /// Opaque payload (application frame for DATA, request for OPEN,
    /// limit for BUSY, empty otherwise).
    pub payload: Vec<u8>,
}

impl MuxFrame {
    /// A DATA frame carrying one application frame of `session`.
    pub fn data(session: u32, seq: u32, payload: Vec<u8>) -> Self {
        MuxFrame {
            kind: MuxKind::Data,
            session,
            seq,
            payload,
        }
    }

    /// A control frame with an empty payload.
    pub fn control(kind: MuxKind, session: u32) -> Self {
        MuxFrame {
            kind,
            session,
            seq: 0,
            payload: Vec::new(),
        }
    }

    /// An OPEN frame carrying the application-level session request.
    pub fn open(session: u32, request: Vec<u8>) -> Self {
        MuxFrame {
            kind: MuxKind::Open,
            session,
            seq: 0,
            payload: request,
        }
    }

    /// A BUSY rejection advertising the session `limit` in force.
    pub fn busy(session: u32, limit: usize) -> Self {
        MuxFrame {
            kind: MuxKind::Busy,
            session,
            seq: 0,
            payload: (limit.min(u32::MAX as usize) as u32).to_be_bytes().to_vec(),
        }
    }

    /// The limit a BUSY frame advertises (0 if the payload is malformed —
    /// the rejection itself is already typed).
    pub fn busy_limit(&self) -> usize {
        let arr: Option<[u8; 4]> = self.payload.get(0..4).and_then(|b| b.try_into().ok());
        arr.map_or(0, |a| u32::from_be_bytes(a) as usize)
    }

    /// Serializes the frame: header (kind, session, seq, CRC) + payload.
    ///
    /// Registered as a wire sink with the analyzer (WIRE01): everything
    /// that enters a mux payload is on its way to a transport.
    pub fn encode(&self) -> Vec<u8> {
        let tag = self.kind.tag();
        let session = self.session.to_be_bytes();
        let seq = self.seq.to_be_bytes();
        let crc = crc32(&[&[tag], &session, &seq, &self.payload]);
        let mut out = Vec::with_capacity(MUX_HEADER_LEN + self.payload.len());
        out.push(tag);
        out.extend_from_slice(&session);
        out.extend_from_slice(&seq);
        out.extend_from_slice(&crc.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and integrity-checks one raw frame. Truncated headers,
    /// unknown kinds, and checksum failures are typed
    /// [`NetError::MalformedFrame`]s; connection loops treat them as
    /// loss (drop and let the reliability layer retransmit), never as a
    /// frame for some other session.
    pub fn decode(raw: &[u8]) -> Result<MuxFrame, NetError> {
        if raw.len() < MUX_HEADER_LEN {
            return Err(NetError::MalformedFrame {
                detail: format!(
                    "mux frame of {} bytes shorter than the {MUX_HEADER_LEN}-byte header",
                    raw.len()
                ),
            });
        }
        let tag = *raw.first().ok_or_else(short_header)?;
        let kind = MuxKind::from_tag(tag).ok_or_else(|| NetError::MalformedFrame {
            detail: format!("unknown mux frame kind {tag}"),
        })?;
        let session_bytes: [u8; 4] = raw
            .get(1..5)
            .and_then(|b| b.try_into().ok())
            .ok_or_else(short_header)?;
        let seq_bytes: [u8; 4] = raw
            .get(5..9)
            .and_then(|b| b.try_into().ok())
            .ok_or_else(short_header)?;
        let crc_bytes: [u8; 4] = raw
            .get(9..13)
            .and_then(|b| b.try_into().ok())
            .ok_or_else(short_header)?;
        let payload = raw.get(13..).unwrap_or(&[]);
        let expected = crc32(&[&[tag], &session_bytes, &seq_bytes, payload]);
        if u32::from_be_bytes(crc_bytes) != expected {
            return Err(NetError::MalformedFrame {
                detail: "mux frame checksum mismatch".to_string(),
            });
        }
        Ok(MuxFrame {
            kind,
            session: u32::from_be_bytes(session_bytes),
            seq: u32::from_be_bytes(seq_bytes),
            payload: payload.to_vec(),
        })
    }
}

fn short_header() -> NetError {
    NetError::MalformedFrame {
        detail: "mux frame header truncated".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_kind() {
        for kind in [
            MuxKind::Open,
            MuxKind::Accept,
            MuxKind::Busy,
            MuxKind::Data,
            MuxKind::Close,
            MuxKind::Goaway,
            MuxKind::Stats,
        ] {
            let frame = MuxFrame {
                kind,
                session: 0xdead_beef,
                seq: 42,
                payload: b"payload bytes".to_vec(),
            };
            assert_eq!(MuxFrame::decode(&frame.encode()).unwrap(), frame);
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = MuxFrame::control(MuxKind::Close, 7);
        let wire = frame.encode();
        assert_eq!(wire.len(), MUX_HEADER_LEN);
        assert_eq!(MuxFrame::decode(&wire).unwrap(), frame);
    }

    #[test]
    fn truncation_is_typed() {
        let wire = MuxFrame::data(3, 1, b"hello".to_vec()).encode();
        for len in 0..wire.len() {
            assert!(
                matches!(
                    MuxFrame::decode(&wire[..len]),
                    Err(NetError::MalformedFrame { .. })
                ),
                "truncation to {len} bytes not rejected"
            );
        }
    }

    #[test]
    fn any_single_bitflip_is_typed() {
        // The property that guarantees session isolation over a faulty
        // link: no corruption can silently reroute a frame.
        let wire = MuxFrame::data(0x0102_0304, 9, b"isolated".to_vec()).encode();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        MuxFrame::decode(&bad),
                        Err(NetError::MalformedFrame { .. })
                    ),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn unknown_kind_is_typed() {
        let mut wire = MuxFrame::control(MuxKind::Accept, 1).encode();
        wire[0] = 0xEE;
        assert!(matches!(
            MuxFrame::decode(&wire),
            Err(NetError::MalformedFrame { .. })
        ));
    }

    #[test]
    fn stats_frame_round_trips_snapshot_payload() {
        // STATS rides session 0 and carries an opaque JSON snapshot.
        let frame = MuxFrame {
            kind: MuxKind::Stats,
            session: 0,
            seq: 0,
            payload: b"{\"stats_version\":1}".to_vec(),
        };
        assert_eq!(MuxFrame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn busy_limit_round_trips() {
        let frame = MuxFrame::busy(5, 64);
        let decoded = MuxFrame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded.busy_limit(), 64);
        // Malformed payload degrades to 0, not a panic.
        assert_eq!(MuxFrame::control(MuxKind::Busy, 5).busy_limit(), 0);
    }
}
