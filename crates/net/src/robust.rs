//! Bounded-retry reliability layer.
//!
//! [`RobustTransport`] restores reliable, ordered, exactly-once frame
//! semantics on top of a lossy [`DeadlineTransport`] (in practice the
//! fault-injecting [`crate::simnet`]): a stop-and-wait ARQ with
//!
//! * a CRC-32 integrity check on every frame — truncated or bit-flipped
//!   frames are silently discarded, turning corruption into loss;
//! * per-message retransmission on a timeout that backs off
//!   exponentially, up to a bounded attempt budget
//!   ([`NetError::RetriesExhausted`] when it runs out);
//! * sequence numbers that de-duplicate retransmitted or duplicated
//!   frames, so the layer above sees each message exactly once;
//! * a resumable `SYNC`/`SYNC-REPLY` handshake ([`RobustTransport::establish`],
//!   [`RobustTransport::resync`]) that aligns both sides' counters.
//!
//! Exactly-once delivery is what keeps a [`crate::secure::SecureChannel`]
//! layered *above* this transport consistent across retransmits: the
//! secure layer's strict per-direction sequence counters advance once per
//! message, and a retransmitted frame is the byte-identical ciphertext —
//! never a re-encryption under a reused counter (see SECURITY.md).
//!
//! Both parties may be in `send` simultaneously (the pipelined engines
//! do this): a sender waiting for its ACK accepts, acknowledges, and
//! buffers incoming DATA frames, so full-duplex phases cannot deadlock.

use std::collections::VecDeque;

use crate::error::NetError;
use crate::transport::{DeadlineTransport, Transport};

const TAG_DATA: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_SYNC: u8 = 3;
const TAG_SYNC_REPLY: u8 = 4;

/// CRC-32 (IEEE 802.3, reflected) over the concatenation of `parts`.
/// Shared with the session-mux envelope, whose header carries the same
/// checksum so corruption becomes loss rather than misrouting.
pub(crate) fn crc32(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for part in parts {
        for &byte in *part {
            crc ^= u32::from(byte);
            let mut k = 0;
            while k < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
                k += 1;
            }
        }
    }
    !crc
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let arr: [u8; 8] = bytes.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_be_bytes(arr))
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_be_bytes(arr))
}

#[derive(Debug)]
enum Frame {
    Data { seq: u64, payload: Vec<u8> },
    Ack { seq: u64 },
    Sync { send_seq: u64, recv_seq: u64, reply: bool },
}

/// Encodes a DATA frame into `out` (cleared first), so a caller sending
/// many messages can reuse one scratch buffer instead of allocating per
/// frame.
fn encode_data_into(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    let seq_bytes = seq.to_be_bytes();
    let crc = crc32(&[&[TAG_DATA], &seq_bytes, payload]);
    out.clear();
    out.reserve(13 + payload.len());
    out.push(TAG_DATA);
    out.extend_from_slice(&seq_bytes);
    out.extend_from_slice(&crc.to_be_bytes());
    out.extend_from_slice(payload);
}

fn encode_data(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_data_into(seq, payload, &mut out);
    out
}

fn encode_ack(seq: u64) -> Vec<u8> {
    let seq_bytes = seq.to_be_bytes();
    let crc = crc32(&[&[TAG_ACK], &seq_bytes]);
    let mut out = Vec::with_capacity(13);
    out.push(TAG_ACK);
    out.extend_from_slice(&seq_bytes);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

fn encode_sync(reply: bool, send_seq: u64, recv_seq: u64) -> Vec<u8> {
    let tag = if reply { TAG_SYNC_REPLY } else { TAG_SYNC };
    let s = send_seq.to_be_bytes();
    let r = recv_seq.to_be_bytes();
    let crc = crc32(&[&[tag], &s, &r]);
    let mut out = Vec::with_capacity(21);
    out.push(tag);
    out.extend_from_slice(&s);
    out.extend_from_slice(&r);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Parses and integrity-checks one raw frame. `None` means the frame is
/// malformed or failed its checksum — the caller treats it as lost.
fn decode(raw: &[u8]) -> Option<Frame> {
    let (&tag, rest) = raw.split_first()?;
    match tag {
        TAG_DATA => {
            let seq = read_u64(rest, 0)?;
            let crc = read_u32(rest, 8)?;
            let payload = rest.get(12..)?;
            if crc32(&[&[TAG_DATA], &seq.to_be_bytes(), payload]) != crc {
                return None;
            }
            Some(Frame::Data {
                seq,
                payload: payload.to_vec(),
            })
        }
        TAG_ACK => {
            let seq = read_u64(rest, 0)?;
            let crc = read_u32(rest, 8)?;
            if rest.len() != 12 || crc32(&[&[TAG_ACK], &seq.to_be_bytes()]) != crc {
                return None;
            }
            Some(Frame::Ack { seq })
        }
        TAG_SYNC | TAG_SYNC_REPLY => {
            let send_seq = read_u64(rest, 0)?;
            let recv_seq = read_u64(rest, 8)?;
            let crc = read_u32(rest, 16)?;
            if rest.len() != 20
                || crc32(&[&[tag], &send_seq.to_be_bytes(), &recv_seq.to_be_bytes()]) != crc
            {
                return None;
            }
            Some(Frame::Sync {
                send_seq,
                recv_seq,
                reply: tag == TAG_SYNC_REPLY,
            })
        }
        _ => None,
    }
}

/// Absorbs `Closed` from a best-effort inner operation into the
/// `peer_gone` flag. A peer's departure mid-operation must surface as the
/// operation's own deterministic outcome, never as a `Closed` whose
/// timing depends on which side's timeout fired first: the receiver
/// legitimately drops its endpoint the moment its own deadline budget
/// runs out, and that drop can race any of the sender's inner calls.
fn absorb_closed(result: Result<(), NetError>, peer_gone: &mut bool) -> Result<(), NetError> {
    match result {
        Err(NetError::Closed) => {
            *peer_gone = true;
            Ok(())
        }
        other => other,
    }
}

/// Retry policy for [`RobustTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustConfig {
    /// Transmission attempts per message (1 + retries) before giving up
    /// with [`NetError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Wait for an ACK after the first transmission, in (virtual or
    /// wall-clock) milliseconds.
    pub base_timeout_ms: u64,
    /// Ceiling for the exponentially backed-off wait.
    pub max_timeout_ms: u64,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            max_attempts: 12,
            base_timeout_ms: 30,
            max_timeout_ms: 2_000,
        }
    }
}

/// How many decodable-but-unhelpful frames (stale ACKs, duplicate DATA,
/// junk) one wait will process before counting the wait as a timeout.
/// Bounds the work a misbehaving peer can force per attempt.
const FRAMES_PER_WAIT: u32 = 64;

/// A reliable transport over a lossy one. See the module docs.
pub struct RobustTransport<T: DeadlineTransport> {
    inner: T,
    config: RobustConfig,
    /// Sequence number of the next DATA frame this side will send.
    send_seq: u64,
    /// Sequence number of the next DATA frame expected from the peer.
    recv_seq: u64,
    /// Payloads accepted (and ACKed) while waiting for our own ACK,
    /// delivered in order by subsequent `recv` calls.
    buffered: VecDeque<Vec<u8>>,
}

impl<T: DeadlineTransport> RobustTransport<T> {
    /// Wraps `inner` with the default retry policy.
    pub fn new(inner: T) -> Self {
        Self::with_config(inner, RobustConfig::default())
    }

    /// Wraps `inner` with an explicit retry policy.
    pub fn with_config(inner: T, config: RobustConfig) -> Self {
        RobustTransport {
            inner,
            config,
            send_seq: 0,
            recv_seq: 0,
            buffered: VecDeque::new(),
        }
    }

    /// Consumes the wrapper, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// `(next send seq, next expected recv seq)` — mainly for tests and
    /// diagnostics.
    pub fn counters(&self) -> (u64, u64) {
        (self.send_seq, self.recv_seq)
    }

    fn next_timeout(&self, current: u64) -> u64 {
        current.saturating_mul(2).min(self.config.max_timeout_ms)
    }

    /// Handles one incoming DATA frame: acknowledge it and, if it is the
    /// next expected message, buffer it. Retransmitted or duplicated
    /// frames are re-ACKed but not buffered twice; future frames (ahead
    /// of the expected sequence, possible only after a counter
    /// desynchronization) are ignored so the peer keeps retransmitting.
    fn accept_data(&mut self, seq: u64, payload: Vec<u8>) -> Result<(), NetError> {
        if seq == self.recv_seq {
            self.recv_seq += 1;
            self.buffered.push_back(payload);
            self.inner.send(&encode_ack(seq))?;
        } else if seq < self.recv_seq {
            self.inner.send(&encode_ack(seq))?;
        }
        Ok(())
    }

    /// Answers a handshake probe mid-stream. A `SYNC` is always
    /// answered with a `SYNC-REPLY`; a `SYNC-REPLY` is never answered,
    /// which keeps a duplicated probe from echoing forever.
    fn answer_sync(&mut self, reply: bool) -> Result<(), NetError> {
        if !reply {
            self.inner
                .send(&encode_sync(true, self.send_seq, self.recv_seq))?;
        }
        Ok(())
    }

    /// Runs the counter-alignment handshake until both sides have seen
    /// each other. Safe to call at session start and again mid-stream
    /// ([`Self::resync`]): each side adopts the further-along counter,
    /// so a message delivered-but-unacknowledged before an interruption
    /// is skipped rather than replayed out of sequence.
    pub fn establish(&mut self) -> Result<(), NetError> {
        let mut got_reply = false;
        let mut timeout = self.config.base_timeout_ms;
        let mut peer_gone = false;
        for _ in 0..self.config.max_attempts {
            if !peer_gone {
                let sync = encode_sync(false, self.send_seq, self.recv_seq);
                absorb_closed(self.inner.send(&sync), &mut peer_gone)?;
            }
            let mut frames = 0u32;
            while frames < FRAMES_PER_WAIT {
                frames += 1;
                // Once the peer is gone, only frames already in flight
                // can still help; poll them out without waiting.
                let wait = if peer_gone { 0 } else { timeout };
                let raw = match self.inner.recv_deadline(wait) {
                    Ok(Some(raw)) => raw,
                    Ok(None) => break,
                    // Nothing buffered and the peer is closed: no reply
                    // can ever arrive, so the attempt budget is moot.
                    Err(NetError::Closed) => return Err(self.exhausted()),
                    Err(e) => return Err(e),
                };
                match decode(&raw) {
                    Some(Frame::Sync {
                        send_seq,
                        recv_seq,
                        reply,
                    }) => {
                        // Adopt the peer's view where it is ahead.
                        self.recv_seq = self.recv_seq.max(send_seq);
                        self.send_seq = self.send_seq.max(recv_seq);
                        absorb_closed(self.answer_sync(reply), &mut peer_gone)?;
                        if reply {
                            got_reply = true;
                        }
                        if got_reply {
                            return Ok(());
                        }
                    }
                    // The peer already left the handshake and is sending
                    // data: the channel is established.
                    Some(Frame::Data { seq, payload }) => {
                        absorb_closed(self.accept_data(seq, payload), &mut peer_gone)?;
                        return Ok(());
                    }
                    Some(Frame::Ack { .. }) | None => {}
                }
            }
            if peer_gone {
                return Err(self.exhausted());
            }
            timeout = self.next_timeout(timeout);
        }
        Err(self.exhausted())
    }

    /// Re-runs the handshake mid-stream to realign both sides' counters
    /// (e.g. after an application-level recovery from
    /// [`NetError::RetriesExhausted`]).
    pub fn resync(&mut self) -> Result<(), NetError> {
        minshare_trace::emit("net", "resync", false, Vec::new);
        self.establish()
    }

    /// The single typed outcome of an operation whose attempt budget can
    /// no longer be satisfied — whether the budget genuinely ran out or
    /// the peer departed mid-retransmit. Reporting the full configured
    /// budget in both cases keeps the error value independent of *when*
    /// the departure was observed.
    fn exhausted(&self) -> NetError {
        NetError::RetriesExhausted {
            attempts: self.config.max_attempts,
        }
    }

    /// The stop-and-wait core: transmits `encoded` (a DATA frame
    /// carrying the current `send_seq`) until its ACK arrives, servicing
    /// crossing traffic meanwhile.
    fn send_encoded(&mut self, encoded: &[u8]) -> Result<(), NetError> {
        let seq = self.send_seq;
        let mut timeout = self.config.base_timeout_ms;
        let mut peer_gone = false;
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                // Retransmissions depend on real-clock timeout expiry, so
                // the event is timing-dependent, not seed-deterministic.
                let timeout_ms = timeout;
                minshare_trace::emit("net", "retransmit", false, || {
                    vec![
                        minshare_trace::count("attempt", u64::from(attempt)),
                        minshare_trace::count("timeout_ms", timeout_ms),
                    ]
                });
            }
            if !peer_gone {
                absorb_closed(self.inner.send(encoded), &mut peer_gone)?;
            }
            let mut frames = 0u32;
            while frames < FRAMES_PER_WAIT {
                frames += 1;
                // A departed peer may still have frames in flight (its
                // final ACK can already be queued); drain them without
                // waiting before giving up.
                let wait = if peer_gone { 0 } else { timeout };
                let raw = match self.inner.recv_deadline(wait) {
                    Ok(Some(raw)) => raw,
                    Ok(None) => break,
                    // Nothing buffered and the peer is closed: the ACK
                    // can never arrive. Same typed outcome as a genuine
                    // exhaustion, so the result does not depend on the
                    // timing of the peer's departure.
                    Err(NetError::Closed) => return Err(self.exhausted()),
                    Err(e) => return Err(e),
                };
                match decode(&raw) {
                    Some(Frame::Ack { seq: acked }) if acked == seq => {
                        self.send_seq += 1;
                        return Ok(());
                    }
                    Some(Frame::Data { seq, payload }) => {
                        absorb_closed(self.accept_data(seq, payload), &mut peer_gone)?;
                    }
                    Some(Frame::Sync { reply, .. }) => {
                        absorb_closed(self.answer_sync(reply), &mut peer_gone)?;
                    }
                    Some(Frame::Ack { .. }) | None => {}
                }
            }
            if peer_gone {
                return Err(self.exhausted());
            }
            timeout = self.next_timeout(timeout);
        }
        Err(self.exhausted())
    }
}

impl<T: DeadlineTransport> Transport for RobustTransport<T> {
    /// Sends one message, retransmitting until acknowledged. Incoming
    /// DATA frames that arrive while waiting are acknowledged and
    /// buffered for [`Self::recv`].
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let encoded = encode_data(self.send_seq, frame);
        self.send_encoded(&encoded)
    }

    /// Sends every frame of the batch through the stop-and-wait ARQ,
    /// reusing one encode buffer across the run (the per-message wait
    /// for an ACK is inherent to the protocol, so there is no bulk wire
    /// path to exploit — only the allocation churn to avoid).
    fn send_batch(&mut self, batch: crate::framebatch::FrameBatch) -> Result<(), NetError> {
        let mut encoded = Vec::new();
        for frame in batch.frames() {
            encode_data_into(self.send_seq, frame, &mut encoded);
            self.send_encoded(&encoded)?;
        }
        Ok(())
    }

    /// Receives the next message, waiting through a bounded number of
    /// retry windows. On a quiet window the last delivered message is
    /// re-ACKed, in case the peer is retransmitting into a lost-ACK
    /// hole.
    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        if let Some(payload) = self.buffered.pop_front() {
            return Ok(payload);
        }
        let mut timeout = self.config.base_timeout_ms;
        let mut peer_gone = false;
        for _ in 0..self.config.max_attempts {
            let mut frames = 0u32;
            while frames < FRAMES_PER_WAIT {
                frames += 1;
                // After the peer departs, drain whatever it left in
                // flight — a parting message must still be delivered.
                let wait = if peer_gone { 0 } else { timeout };
                let Some(raw) = self.inner.recv_deadline(wait)? else {
                    break;
                };
                match decode(&raw) {
                    Some(Frame::Data { seq, payload }) => {
                        absorb_closed(self.accept_data(seq, payload), &mut peer_gone)?;
                        if let Some(payload) = self.buffered.pop_front() {
                            return Ok(payload);
                        }
                    }
                    Some(Frame::Sync { reply, .. }) => {
                        absorb_closed(self.answer_sync(reply), &mut peer_gone)?;
                    }
                    Some(Frame::Ack { .. }) | None => {}
                }
            }
            if peer_gone {
                // Every in-flight frame has been drained; the receive
                // contract reports departure as `Closed`.
                return Err(NetError::Closed);
            }
            if self.recv_seq > 0 {
                minshare_trace::emit("net", "reack", false, Vec::new);
                absorb_closed(self.inner.send(&encode_ack(self.recv_seq - 1)), &mut peer_gone)?;
            }
            timeout = self.next_timeout(timeout);
        }
        Err(NetError::TimedOut {
            waited_ms: self.config.max_timeout_ms,
        })
    }
}

impl<T: DeadlineTransport> DeadlineTransport for RobustTransport<T> {
    /// One bounded poll of the reliability layer: services whatever the
    /// link delivers within roughly `timeout_ms` (ACKing and buffering
    /// DATA, answering SYNC probes) and returns the next in-order
    /// message if one became available. `Ok(None)` is a quiet window —
    /// unlike [`Transport::recv`] this never retries across multiple
    /// backoff windows, so an event loop multiplexing many sessions can
    /// interleave sends between polls. The poll itself keeps the ARQ
    /// live: a peer blocked in its own `send` is serviced by the ACKs
    /// this side emits while polling.
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError> {
        if let Some(payload) = self.buffered.pop_front() {
            return Ok(Some(payload));
        }
        let mut peer_gone = false;
        let mut frames = 0u32;
        while frames < FRAMES_PER_WAIT {
            frames += 1;
            let wait = if peer_gone { 0 } else { timeout_ms };
            let Some(raw) = self.inner.recv_deadline(wait)? else {
                break;
            };
            match decode(&raw) {
                Some(Frame::Data { seq, payload }) => {
                    absorb_closed(self.accept_data(seq, payload), &mut peer_gone)?;
                    if let Some(payload) = self.buffered.pop_front() {
                        return Ok(Some(payload));
                    }
                }
                Some(Frame::Sync { reply, .. }) => {
                    absorb_closed(self.answer_sync(reply), &mut peer_gone)?;
                }
                Some(Frame::Ack { .. }) | None => {}
            }
        }
        if peer_gone {
            return Err(NetError::Closed);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simnet::{sim_pair, FaultPlan, SimConfig};

    fn sim_cfg() -> SimConfig {
        SimConfig {
            real_backstop_ms: 5_000,
            ..SimConfig::default()
        }
    }

    fn harsh_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: 0.3,
            duplicate: 0.3,
            delay: 0.3,
            reorder: 0.3,
            truncate: 0.2,
            bitflip: 0.2,
            max_delay_ms: 20,
            partitions: Vec::new(),
            bytes_per_ms: 0,
        }
    }

    #[test]
    fn crc_detects_any_single_bitflip() {
        let frame = encode_data(7, b"payload under test");
        assert!(decode(&frame).is_some());
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                let still_ok = matches!(
                    decode(&bad),
                    Some(Frame::Data { seq: 7, ref payload }) if payload == b"payload under test"
                );
                assert!(!still_ok, "flip at byte {byte} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn truncated_frames_rejected() {
        let frame = encode_data(3, b"hello");
        for len in 0..frame.len() {
            assert!(
                decode(&frame[..len]).is_none(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn round_trip_over_perfect_link() {
        let (a, b, _trace) = sim_pair(sim_cfg(), &FaultPlan::perfect());
        let (mut a, mut b) = (RobustTransport::new(a), RobustTransport::new(b));
        let echo = std::thread::spawn(move || {
            for _ in 0..10 {
                let frame = b.recv().unwrap();
                b.send(&frame).unwrap();
            }
        });
        for i in 0..10u32 {
            let msg = i.to_be_bytes();
            a.send(&msg).unwrap();
            assert_eq!(a.recv().unwrap(), msg);
        }
        echo.join().unwrap();
        assert_eq!(a.counters(), (10, 10));
    }

    #[test]
    fn survives_harsh_faults() {
        for seed in 0..10u64 {
            let (a, b, _trace) = sim_pair(sim_cfg(), &harsh_plan(seed));
            let (mut a, mut b) = (RobustTransport::new(a), RobustTransport::new(b));
            let echo = std::thread::spawn(move || {
                for _ in 0..20 {
                    let frame = b.recv()?;
                    b.send(&frame)?;
                }
                Ok::<_, NetError>(())
            });
            let mut failed = false;
            for i in 0..20u32 {
                let msg = [i as u8; 32];
                if a.send(&msg).is_err() {
                    failed = true;
                    break;
                }
                match a.recv() {
                    Ok(got) => assert_eq!(got, msg, "seed {seed} corrupted message {i}"),
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            drop(a);
            // The echo side may legitimately end with a typed error
            // (e.g. `Closed` after this side gave up); what must never
            // happen is a wrong payload, asserted above, or a panic.
            let _ = echo.join().unwrap();
            let _ = failed;
        }
    }

    #[test]
    fn total_loss_exhausts_retries() {
        let plan = FaultPlan {
            drop: 1.0,
            ..FaultPlan::perfect()
        };
        let (a, mut b, _trace) = sim_pair(sim_cfg(), &plan);
        // Keep the peer blocked on long virtual deadlines so the retry
        // layer's (shorter) waits resolve virtually; it exits on close.
        let peer = std::thread::spawn(move || loop {
            match b.recv_deadline(10_000) {
                Ok(_) => {}
                Err(_) => break,
            }
        });
        let mut a = RobustTransport::with_config(
            a,
            RobustConfig {
                max_attempts: 4,
                base_timeout_ms: 10,
                max_timeout_ms: 40,
            },
        );
        assert_eq!(
            a.send(b"doomed").unwrap_err(),
            NetError::RetriesExhausted { attempts: 4 }
        );
        drop(a);
        peer.join().unwrap();
    }

    #[test]
    fn receiver_departure_mid_retransmit_is_retries_exhausted() {
        // Pins the pre-PR-8 `Closed` race: under total loss the receiver's
        // own deadline budget runs out first, it drops its endpoint, and
        // the sender — still mid-retransmit — used to surface whichever
        // error its next inner call happened to hit (`Closed` from the
        // wait, `Closed` from the send, or `RetriesExhausted` if the
        // budget ran out before the drop was observed). The simnet's
        // virtual-time rules make this schedule exact: the receiver
        // provably departs at virtual time 15 while the sender has four
        // attempts left, and the sender must still report the single
        // deterministic retry-exhaustion outcome.
        let plan = FaultPlan {
            drop: 1.0,
            ..FaultPlan::perfect()
        };
        let (a, mut b, _trace) = sim_pair(sim_cfg(), &plan);
        let receiver = std::thread::spawn(move || {
            let _ = b.recv_deadline(15);
            drop(b);
        });
        let mut a = RobustTransport::with_config(
            a,
            RobustConfig {
                max_attempts: 6,
                base_timeout_ms: 10,
                max_timeout_ms: 40,
            },
        );
        assert_eq!(
            a.send(b"doomed").unwrap_err(),
            NetError::RetriesExhausted { attempts: 6 }
        );
        receiver.join().unwrap();
    }

    #[test]
    fn departed_peer_turns_send_into_retries_exhausted_on_duplex() {
        // The in-memory duplex surfaces departure on the *send* side
        // (unlike the simnet, where sends to a dead peer succeed); the
        // outcome must be the same typed exhaustion either way.
        let (a, b) = crate::duplex::duplex_pair();
        drop(b);
        let mut a = RobustTransport::with_config(
            a,
            RobustConfig {
                max_attempts: 3,
                base_timeout_ms: 1,
                max_timeout_ms: 2,
            },
        );
        assert_eq!(
            a.send(b"x").unwrap_err(),
            NetError::RetriesExhausted { attempts: 3 }
        );
    }

    #[test]
    fn parting_message_still_delivered_after_departure() {
        // A peer that sends and immediately leaves: the DATA frame is in
        // flight when the endpoint closes. recv must deliver it (the ACK
        // goes nowhere, harmlessly) and only then report `Closed`.
        let (mut a, b) = crate::duplex::duplex_pair();
        let mut b = RobustTransport::new(b);
        a.send(&encode_data(0, b"parting gift")).unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap(), b"parting gift");
        assert_eq!(b.recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn deadline_poll_is_a_single_quiet_window() {
        // The DeadlineTransport impl polls one bounded window: quiet
        // links yield Ok(None) (never a retry loop), delivered frames
        // come back in order, and departure after the drain is Closed.
        let (mut a, b) = crate::duplex::duplex_pair();
        let mut b = RobustTransport::new(b);
        assert_eq!(b.recv_deadline(1).unwrap(), None);
        a.send(&encode_data(0, b"first")).unwrap();
        a.send(&encode_data(1, b"second")).unwrap();
        assert_eq!(b.recv_deadline(50).unwrap(), Some(b"first".to_vec()));
        assert_eq!(b.recv_deadline(50).unwrap(), Some(b"second".to_vec()));
        // Both frames were ACKed back to the raw endpoint.
        assert!(matches!(
            decode(&a.recv().unwrap()),
            Some(Frame::Ack { seq: 0 })
        ));
        assert!(matches!(
            decode(&a.recv().unwrap()),
            Some(Frame::Ack { seq: 1 })
        ));
        drop(a);
        assert_eq!(b.recv_deadline(1).unwrap_err(), NetError::Closed);
    }

    #[test]
    fn duplicates_are_delivered_once() {
        let plan = FaultPlan {
            duplicate: 1.0,
            max_delay_ms: 5,
            ..FaultPlan::perfect()
        };
        let (a, b, _trace) = sim_pair(sim_cfg(), &plan);
        let (mut a, mut b) = (RobustTransport::new(a), RobustTransport::new(b));
        let sender = std::thread::spawn(move || {
            for i in 0..10u8 {
                a.send(&[i; 4]).unwrap();
            }
            a
        });
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i; 4]);
        }
        let a = sender.join().unwrap();
        drop(a);
        // No eleventh message exists: the duplicates were deduplicated.
        assert_eq!(b.recv().unwrap_err(), NetError::Closed);
    }

    /// A party whose very last acknowledgement was lost can end with a
    /// typed error even though the peer completed — the two-generals
    /// tail. Tests (like the conformance harness) accept it.
    fn tail_tolerant(result: Result<(), NetError>) {
        match result {
            Ok(())
            | Err(NetError::Closed)
            | Err(NetError::RetriesExhausted { .. })
            | Err(NetError::TimedOut { .. }) => {}
            Err(other) => panic!("unexpected terminal error: {other}"),
        }
    }

    #[test]
    fn handshake_establishes_and_resyncs() {
        // Each closure consumes its transport, so a finished party's
        // endpoint closes immediately — the invariant that lets the
        // peer's virtual timeouts resolve. Under harsh faults the party
        // finishing last can lose its final SYNC_REPLY (two-generals
        // tail), so scan seeds: every run must end tail-clean, and at
        // least one must complete on both sides so the counter
        // agreement actually gets exercised.
        let mut verified = 0u32;
        for seed in 0..16u64 {
            let (a, b, _trace) = sim_pair(sim_cfg(), &harsh_plan(seed));
            let (a, b) = (RobustTransport::new(a), RobustTransport::new(b));
            let side_b = std::thread::spawn(move || {
                let mut b = b;
                b.establish()?;
                let got = b.recv()?;
                b.send(&got)?;
                b.resync()?;
                Ok::<_, NetError>(b.counters())
            });
            let side_a = std::thread::spawn(move || {
                let mut a = a;
                a.establish()?;
                a.send(b"across the handshake")?;
                let got = a.recv()?;
                assert_eq!(got, b"across the handshake");
                a.resync()?;
                Ok::<_, NetError>(a.counters())
            });
            let ra = side_a.join().unwrap();
            let rb = side_b.join().unwrap();
            match (ra, rb) {
                (Ok(a_counters), Ok(b_counters)) => {
                    // After resync both sides agree on both counters.
                    assert_eq!(a_counters.0, b_counters.1);
                    assert_eq!(a_counters.1, b_counters.0);
                    verified += 1;
                }
                (ra, rb) => {
                    tail_tolerant(ra.map(|_| ()));
                    tail_tolerant(rb.map(|_| ()));
                }
            }
        }
        assert!(verified > 0, "no seed completed cleanly on both sides");
    }

    #[test]
    fn full_duplex_simultaneous_sends() {
        // Both sides send before either receives: the ACK-wait loops
        // must buffer the crossing DATA frames instead of deadlocking.
        let (a, b, _trace) = sim_pair(sim_cfg(), &harsh_plan(5));
        let (a, mut b) = (RobustTransport::new(a), RobustTransport::new(b));
        let side_b = std::thread::spawn(move || {
            for i in 0..10u8 {
                b.send(&[0xB0 | (i % 2); 8])?;
                let got = b.recv()?;
                assert_eq!(got, [0xA0u8; 8]);
            }
            Ok::<_, NetError>(())
        });
        let side_a = std::thread::spawn(move || {
            let mut a = a;
            for _ in 0..10 {
                a.send(&[0xA0; 8])?;
                let got = a.recv()?;
                assert!(got == [0xB0; 8] || got == [0xB1; 8]);
            }
            Ok::<_, NetError>(())
        });
        tail_tolerant(side_a.join().unwrap());
        tail_tolerant(side_b.join().unwrap());
    }
}
