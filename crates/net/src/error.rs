//! Error type for the transport layer.

use std::fmt;

/// Errors produced by transports and the secure session layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer hung up (channel disconnected).
    Closed,
    /// A frame exceeded the configured size limit.
    FrameTooLarge {
        /// Size of the offending frame.
        size: usize,
        /// The limit in force.
        limit: usize,
    },
    /// A received frame failed structural validation.
    MalformedFrame {
        /// What went wrong.
        detail: String,
    },
    /// The secure-channel handshake failed.
    HandshakeFailed {
        /// What went wrong.
        detail: String,
    },
    /// Message authentication failed on a secured frame.
    AuthenticationFailed,
    /// The per-direction frame counter would wrap, which would reuse a
    /// nonce; the channel must be re-keyed instead.
    SequenceExhausted,
    /// An operating-system I/O failure (TCP transport).
    Io {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "peer closed the connection"),
            NetError::FrameTooLarge { size, limit } => {
                write!(f, "frame of {size} bytes exceeds limit {limit}")
            }
            NetError::MalformedFrame { detail } => write!(f, "malformed frame: {detail}"),
            NetError::HandshakeFailed { detail } => write!(f, "handshake failed: {detail}"),
            NetError::AuthenticationFailed => write!(f, "frame authentication failed"),
            NetError::SequenceExhausted => {
                write!(f, "frame counter exhausted; channel must be re-keyed")
            }
            NetError::Io { detail } => write!(f, "io error: {detail}"),
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => NetError::Closed,
            _ => NetError::Io {
                detail: e.to_string(),
            },
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::FrameTooLarge { size: 10, limit: 5 }
            .to_string()
            .contains("10"));
    }
}
