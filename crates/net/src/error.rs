//! Error type for the transport layer.

use std::fmt;

/// Errors produced by transports and the secure session layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer hung up (channel disconnected).
    Closed,
    /// A frame exceeded the configured size limit.
    FrameTooLarge {
        /// Size of the offending frame.
        size: usize,
        /// The limit in force.
        limit: usize,
    },
    /// A received frame failed structural validation.
    MalformedFrame {
        /// What went wrong.
        detail: String,
    },
    /// The secure-channel handshake failed.
    HandshakeFailed {
        /// What went wrong.
        detail: String,
    },
    /// Message authentication failed on a secured frame.
    AuthenticationFailed,
    /// The per-direction frame counter would wrap, which would reuse a
    /// nonce; the channel must be re-keyed instead.
    SequenceExhausted,
    /// An operating-system I/O failure (TCP transport).
    Io {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A receive deadline elapsed (virtual or wall-clock, depending on
    /// the transport) before a frame arrived.
    TimedOut {
        /// How long the caller was willing to wait, in milliseconds.
        waited_ms: u64,
    },
    /// Both parties were blocked waiting on an empty link with no
    /// deadline in force — nothing could ever arrive (simnet only; a
    /// real network cannot prove this).
    Deadlock,
    /// The retry layer gave up: every (re)transmission of a frame went
    /// unacknowledged within the configured attempt budget.
    RetriesExhausted {
        /// Number of transmission attempts made (1 + retries).
        attempts: u32,
    },
    /// The server declined a new session: admission control is at its
    /// in-flight capacity. A typed load-shedding outcome — clients see
    /// this instead of a hang and may retry later.
    Busy {
        /// The session capacity that was in force.
        limit: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "peer closed the connection"),
            NetError::FrameTooLarge { size, limit } => {
                write!(f, "frame of {size} bytes exceeds limit {limit}")
            }
            NetError::MalformedFrame { detail } => write!(f, "malformed frame: {detail}"),
            NetError::HandshakeFailed { detail } => write!(f, "handshake failed: {detail}"),
            NetError::AuthenticationFailed => write!(f, "frame authentication failed"),
            NetError::SequenceExhausted => {
                write!(f, "frame counter exhausted; channel must be re-keyed")
            }
            NetError::Io { detail } => write!(f, "io error: {detail}"),
            NetError::TimedOut { waited_ms } => {
                write!(f, "no frame arrived within {waited_ms} ms")
            }
            NetError::Deadlock => {
                write!(f, "both parties blocked on an empty link with no deadline")
            }
            NetError::RetriesExhausted { attempts } => {
                write!(f, "frame unacknowledged after {attempts} attempts")
            }
            NetError::Busy { limit } => {
                write!(f, "server at session capacity ({limit}); try again later")
            }
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => NetError::Closed,
            _ => NetError::Io {
                detail: e.to_string(),
            },
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::FrameTooLarge { size: 10, limit: 5 }
            .to_string()
            .contains("10"));
        assert!(NetError::Busy { limit: 8 }.to_string().contains("8"));
    }
}
