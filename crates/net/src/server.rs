//! Long-running multi-session protocol daemon.
//!
//! [`serve_mux_connection`] is the server side of the session-mux
//! envelope ([`crate::mux`]): a single-threaded event loop that owns one
//! framed connection, routes inbound mux frames to per-session bounded
//! queues, spawns one handler thread per admitted session, and drains
//! everything the handlers send back out. The loop never blocks
//! indefinitely on any one session:
//!
//! * **Admission control** — a shared [`SessionRegistry`] caps in-flight
//!   sessions across every connection of the daemon. An OPEN past the cap
//!   is answered with a typed BUSY frame ([`NetError::Busy`] client-side),
//!   never queued and never hung.
//! * **Backpressure / load-shedding** — each session's inbound queue is
//!   bounded ([`MuxConfig::session_queue_depth`]). A session whose
//!   handler stops draining is shed: its queue is dropped (the handler
//!   sees `Closed`), a CLOSE frame tells the peer, and every other
//!   session is untouched.
//! * **Graceful shutdown** — a [`ShutdownHandle`] stops admission
//!   (BUSY) while active sessions drain; once the last one finishes the
//!   loop flushes its outbound queue, says GOAWAY, and returns. A peer's
//!   GOAWAY triggers the same drain from the other end.
//!
//! [`MuxClient`] is the matching client: a background driver thread owns
//! the connection, demultiplexes ACCEPT/BUSY/DATA/CLOSE to per-session
//! channels, and [`MuxClient::open_session`] hands out
//! [`SessionTransport`]s — each one an ordinary [`Transport`] that the
//! unmodified protocol engines run over.
//!
//! Handler threads communicate with the loop only through channels, so
//! the loop holds no locks (LOCK01 has nothing to inspect) and a handler
//! panic is confined to its session: the scope join reaps the thread and
//! the session is simply gone, with a CLOSE on the wire.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use crate::error::NetError;
use crate::mux::{MuxFrame, MuxKind};
use crate::transport::{DeadlineTransport, Transport};

/// Knobs for the mux server loop and client driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxConfig {
    /// Bound on each session's inbound frame queue; a session that falls
    /// further behind than this is shed with a CLOSE.
    pub session_queue_depth: usize,
    /// Transport poll granularity of the event loop, in milliseconds
    /// (virtual on the simnet, wall-clock on TCP).
    pub poll_interval_ms: u64,
    /// Client-side wait for an ACCEPT/BUSY answer per OPEN attempt, in
    /// wall-clock milliseconds.
    pub open_timeout_ms: u64,
    /// Client-side OPEN (re)transmissions before giving up.
    pub open_attempts: u32,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            session_queue_depth: 4096,
            poll_interval_ms: 5,
            open_timeout_ms: 10_000,
            open_attempts: 3,
        }
    }
}

/// Daemon-wide session admission: a capacity shared by every connection
/// the server accepts. Lock-free — admission is one atomic update.
#[derive(Debug)]
pub struct SessionRegistry {
    active: AtomicUsize,
    limit: usize,
}

impl SessionRegistry {
    /// A registry admitting at most `limit` concurrent sessions.
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(SessionRegistry {
            active: AtomicUsize::new(0),
            limit,
        })
    }

    /// The capacity in force.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Number of sessions currently admitted.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    fn try_admit(&self) -> bool {
        self.active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.limit).then_some(n + 1)
            })
            .is_ok()
    }

    fn release(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Cooperative shutdown flag shared between the accept loop, every
/// connection loop, and whatever decides the daemon is done.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// A fresh, un-set handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins graceful shutdown: connection loops stop admitting new
    /// sessions and return once their active sessions drain.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// What one connection loop did, returned when it exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions admitted and spawned.
    pub opened: u64,
    /// Sessions whose handler ran to completion.
    pub completed: u64,
    /// OPENs refused because the registry was at capacity (or the
    /// connection was draining).
    pub rejected_busy: u64,
    /// Sessions shed because their bounded inbound queue overflowed.
    pub shed_overflow: u64,
    /// Inbound frames dropped as malformed (truncated/corrupt mux
    /// header or checksum).
    pub malformed: u64,
    /// Sessions the peer closed before the handler finished.
    pub closed_by_peer: u64,
    /// STATS snapshots served over this connection.
    pub stats_served: u64,
}

/// Produces the payload of a STATS reply: one versioned JSON snapshot of
/// the daemon's metrics registry. The provider is registered with the
/// static analyzer as a wire exporter (WIRE01): anything it returns goes
/// straight onto the connection, so secret-typed values must never flow
/// into it — only the registry's typed numeric aggregates.
pub type StatsProvider = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// The transport one session sees: an ordinary frame pipe whose frames
/// travel inside the mux envelope. `send` enqueues a DATA frame on the
/// connection's outbound queue (never blocks — the queue is unbounded
/// and drained by the event loop); `recv` blocks on the session's
/// bounded inbound queue. Dropping the transport enqueues a best-effort
/// CLOSE so the peer learns the session ended.
pub struct SessionTransport {
    session: u32,
    out: Sender<MuxFrame>,
    inbound: Receiver<Vec<u8>>,
    send_seq: u32,
}

impl SessionTransport {
    fn new(session: u32, out: Sender<MuxFrame>, inbound: Receiver<Vec<u8>>) -> Self {
        SessionTransport {
            session,
            out,
            inbound,
            send_seq: 0,
        }
    }

    /// The mux session id this transport belongs to.
    pub fn session_id(&self) -> u32 {
        self.session
    }
}

impl std::fmt::Debug for SessionTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTransport")
            .field("session", &self.session)
            .field("send_seq", &self.send_seq)
            .finish_non_exhaustive()
    }
}

impl Transport for SessionTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let seq = self.send_seq;
        self.send_seq = seq.checked_add(1).ok_or(NetError::SequenceExhausted)?;
        self.out
            .send(MuxFrame::data(self.session, seq, frame.to_vec()))
            .map_err(|_| NetError::Closed)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        self.inbound.recv().map_err(|_| NetError::Closed)
    }
}

impl DeadlineTransport for SessionTransport {
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError> {
        match self
            .inbound
            .recv_timeout(std::time::Duration::from_millis(timeout_ms))
        {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

impl Drop for SessionTransport {
    fn drop(&mut self) {
        // Best-effort: if the loop is already gone the peer will learn
        // from the connection closing instead.
        let _ = self
            .out
            .send(MuxFrame::control(MuxKind::Close, self.session));
    }
}

/// One admitted session as the connection loop tracks it. Dropping the
/// entry drops the inbound sender, which is how the handler (blocked in
/// `recv`) learns the session is over.
struct SessionEntry {
    tx: Sender<Vec<u8>>,
}

/// Runs the server side of one mux connection until the peer departs,
/// the peer says GOAWAY and every session drains, or shutdown is
/// requested and every session drains. See the module docs for the
/// admission / shedding / shutdown semantics.
///
/// `handler` runs once per admitted session on its own thread, with the
/// session id, the OPEN request payload, and the session's transport.
/// Its lifetime is bounded by this call: all handler threads are joined
/// before the function returns.
///
/// `stats` answers read-only STATS frames on session 0 with a metrics
/// snapshot; `None` replies with an empty JSON object so a scrape of a
/// daemon without a registry degrades, not hangs.
pub fn serve_mux_connection<T, F>(
    mut transport: T,
    config: &MuxConfig,
    registry: &SessionRegistry,
    shutdown: &ShutdownHandle,
    stats_provider: Option<StatsProvider>,
    handler: F,
) -> Result<ServerStats, NetError>
where
    T: DeadlineTransport,
    F: Fn(u32, Vec<u8>, SessionTransport) + Send + Sync,
{
    let (out_tx, out_rx) = unbounded::<MuxFrame>();
    let (done_tx, done_rx) = unbounded::<u32>();
    let mut sessions: HashMap<u32, SessionEntry> = HashMap::new();
    let mut finished: HashSet<u32> = HashSet::new();
    let mut stats = ServerStats::default();
    let mut peer_goaway = false;
    // Set once a send surfaces peer departure: stop sending, but keep
    // draining and routing what the peer already delivered (its CLOSE
    // and GOAWAY frames may still be buffered in the transport) so
    // every session is accounted for before the loop exits.
    let mut peer_send_dead = false;
    let handler = &handler;

    std::thread::scope(|scope| {
        // Releases every live session's registry slot and drops the
        // inbound senders, so blocked handlers wake with `Closed` and the
        // scope can join them. Every exit path funnels through this.
        let cleanup = |sessions: &mut HashMap<u32, SessionEntry>| {
            for (_, _entry) in sessions.drain() {
                registry.release();
            }
        };
        loop {
            // Reap completed handlers first: their CLOSE frames (from
            // the SessionTransport drop) are already in the outbound
            // queue, so the subsequent flush sends them.
            while let Ok(sid) = done_rx.try_recv() {
                if sessions.remove(&sid).is_some() {
                    finished.insert(sid);
                    registry.release();
                    stats.completed += 1;
                    minshare_trace::emit("server", "session_complete", false, || {
                        vec![minshare_trace::count("session", u64::from(sid))]
                    });
                }
            }
            // Flush the outbound queue. A peer that hung up mid-flush is
            // not an error: undelivered frames are moot once nobody is
            // listening. The reliability layer reports a departed peer on
            // the *send* side as deterministic retry exhaustion
            // (robust.rs pins this), so both shapes mean departure. The
            // loop does not exit yet, though — frames the peer delivered
            // before leaving (CLOSEs, its GOAWAY) may still be buffered
            // below and must be routed so sessions drain accountably.
            while let Ok(frame) = out_rx.try_recv() {
                if peer_send_dead {
                    continue;
                }
                match transport.send(&frame.encode()) {
                    Ok(()) => {}
                    Err(NetError::Closed) | Err(NetError::RetriesExhausted { .. }) => {
                        peer_send_dead = true;
                        peer_goaway = true;
                    }
                    Err(e) => {
                        cleanup(&mut sessions);
                        return Err(e);
                    }
                }
            }
            // The outbound queue was just drained exhaustively; with no
            // live sessions left nothing else can be enqueued (frames
            // from already-removed handlers are moot).
            let draining = peer_goaway || shutdown.is_shutdown();
            if draining && sessions.is_empty() {
                // Best-effort farewell: the peer may already be gone.
                if !peer_send_dead {
                    let _ = transport.send(&MuxFrame::control(MuxKind::Goaway, 0).encode());
                }
                minshare_trace::emit("server", "drained", false, || {
                    vec![minshare_trace::count("completed", stats.completed)]
                });
                return Ok(stats);
            }

            let raw = match transport.recv_deadline(config.poll_interval_ms) {
                Ok(Some(raw)) => raw,
                Ok(None) => continue,
                Err(NetError::Closed) => {
                    // Peer gone: handlers see `Closed` and the scope
                    // joins them.
                    cleanup(&mut sessions);
                    return Ok(stats);
                }
                Err(e) => {
                    cleanup(&mut sessions);
                    return Err(e);
                }
            };
            let frame = match MuxFrame::decode(&raw) {
                Ok(frame) => frame,
                Err(_) => {
                    // Corruption is loss, never misrouting; the session's
                    // own reliability layer retransmits.
                    stats.malformed += 1;
                    continue;
                }
            };
            match frame.kind {
                MuxKind::Open => {
                    let sid = frame.session;
                    if sessions.contains_key(&sid) {
                        // Retransmitted OPEN: the admission decision is
                        // idempotent.
                        let _ = out_tx.send(MuxFrame::control(MuxKind::Accept, sid));
                    } else if finished.contains(&sid) {
                        // The session already ran to completion; a late
                        // duplicate must not run it again.
                        let _ = out_tx.send(MuxFrame::control(MuxKind::Accept, sid));
                        let _ = out_tx.send(MuxFrame::control(MuxKind::Close, sid));
                    } else if draining || shutdown.is_shutdown() || !registry.try_admit() {
                        // `draining` was computed before the poll that
                        // delivered this OPEN; re-reading the shutdown
                        // flag here makes "shutdown, then OPEN" shed
                        // deterministically even within one poll window.
                        stats.rejected_busy += 1;
                        minshare_trace::emit("server", "busy", false, || {
                            vec![minshare_trace::count("session", u64::from(sid))]
                        });
                        let _ = out_tx.send(MuxFrame::busy(sid, registry.limit()));
                    } else {
                        stats.opened += 1;
                        minshare_trace::emit("server", "session_open", false, || {
                            vec![minshare_trace::count("session", u64::from(sid))]
                        });
                        let (in_tx, in_rx) = bounded(config.session_queue_depth);
                        sessions.insert(sid, SessionEntry { tx: in_tx });
                        // ACCEPT goes on the queue before the handler can
                        // enqueue any DATA.
                        let _ = out_tx.send(MuxFrame::control(MuxKind::Accept, sid));
                        let session_transport =
                            SessionTransport::new(sid, out_tx.clone(), in_rx);
                        let request = frame.payload;
                        let done = done_tx.clone();
                        scope.spawn(move || {
                            handler(sid, request, session_transport);
                            let _ = done.send(sid);
                        });
                    }
                }
                MuxKind::Data => {
                    let sid = frame.session;
                    let mut shed = false;
                    if let Some(entry) = sessions.get(&sid) {
                        match entry.tx.try_send(frame.payload) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) => shed = true,
                            // Handler already gone; the frame is moot.
                            Err(TrySendError::Disconnected(_)) => {}
                        }
                    }
                    if shed {
                        // The handler stopped draining its queue: shed
                        // this one session, leave the rest alone.
                        stats.shed_overflow += 1;
                        minshare_trace::emit("server", "session_shed", false, || {
                            vec![minshare_trace::count("session", u64::from(sid))]
                        });
                        if sessions.remove(&sid).is_some() {
                            finished.insert(sid);
                            registry.release();
                        }
                        let _ = out_tx.send(MuxFrame::control(MuxKind::Close, sid));
                    }
                }
                MuxKind::Close => {
                    let sid = frame.session;
                    if sessions.remove(&sid).is_some() {
                        finished.insert(sid);
                        registry.release();
                        stats.closed_by_peer += 1;
                        minshare_trace::emit("server", "closed_by_peer", false, || {
                            vec![minshare_trace::count("session", u64::from(sid))]
                        });
                    }
                }
                MuxKind::Goaway => {
                    peer_goaway = true;
                }
                MuxKind::Stats => {
                    // Read-only telemetry on session 0: answer with one
                    // registry snapshot. No provider degrades to an
                    // empty object, never a hang.
                    let payload = stats_provider
                        .as_ref()
                        .map_or_else(|| b"{}".to_vec(), |p| p());
                    stats.stats_served += 1;
                    minshare_trace::emit("server", "stats_served", false, || {
                        vec![minshare_trace::size("bytes", payload.len() as u64)]
                    });
                    let _ = out_tx.send(MuxFrame {
                        kind: MuxKind::Stats,
                        session: 0,
                        seq: 0,
                        payload,
                    });
                }
                // Server never expects these; a confused peer's frames
                // are dropped, not fatal.
                MuxKind::Accept | MuxKind::Busy => {}
            }
        }
    })
}

/// What the client driver tracks per pending OPEN.
struct PendingOpen {
    reply: Sender<Result<Receiver<Vec<u8>>, NetError>>,
}

enum ClientCtl {
    Open { session: u32, pending: PendingOpen },
    Stats { reply: Sender<Result<Vec<u8>, NetError>> },
    Close,
}

/// Client side of a mux connection: a background driver thread owns the
/// transport; sessions opened through [`MuxClient::open_session`] are
/// ordinary [`Transport`]s multiplexed over it.
pub struct MuxClient {
    out_tx: Sender<MuxFrame>,
    ctl_tx: Sender<ClientCtl>,
    driver: Option<std::thread::JoinHandle<Result<(), NetError>>>,
    next_session: u32,
    config: MuxConfig,
}

impl MuxClient {
    /// Starts the driver thread over `transport`.
    ///
    /// Driver errors (a transport failure mid-connection) surface from
    /// [`MuxClient::close`]; sessions observe them as `Closed`.
    pub fn new<T>(transport: T, config: MuxConfig) -> Self
    where
        T: DeadlineTransport + Send + 'static,
    {
        let (out_tx, out_rx) = unbounded::<MuxFrame>();
        let (ctl_tx, ctl_rx) = unbounded::<ClientCtl>();
        let driver = std::thread::Builder::new()
            .name("mux-client".to_string())
            .spawn(move || client_driver(transport, config, &out_rx, &ctl_rx))
            .ok();
        MuxClient {
            out_tx,
            ctl_tx,
            driver,
            next_session: 1,
            config,
        }
    }

    /// Opens a new session, sending `request` as the OPEN payload.
    ///
    /// Returns the session's transport on ACCEPT, [`NetError::Busy`] if
    /// the server shed the session at admission, [`NetError::Closed`] if
    /// the connection died, or [`NetError::TimedOut`] if every OPEN
    /// attempt went unanswered.
    pub fn open_session(&mut self, request: &[u8]) -> Result<SessionTransport, NetError> {
        let sid = self.next_session;
        self.next_session = sid.checked_add(1).ok_or(NetError::SequenceExhausted)?;
        let (reply_tx, reply_rx) = bounded(1);
        self.ctl_tx
            .send(ClientCtl::Open {
                session: sid,
                pending: PendingOpen { reply: reply_tx },
            })
            .map_err(|_| NetError::Closed)?;
        let timeout = std::time::Duration::from_millis(self.config.open_timeout_ms);
        for _ in 0..self.config.open_attempts.max(1) {
            self.out_tx
                .send(MuxFrame::open(sid, request.to_vec()))
                .map_err(|_| NetError::Closed)?;
            match reply_rx.recv_timeout(timeout) {
                Ok(Ok(inbound)) => {
                    return Ok(SessionTransport::new(sid, self.out_tx.clone(), inbound))
                }
                Ok(Err(e)) => return Err(e),
                // Quiet window: retransmit the OPEN (the server answers
                // duplicates idempotently).
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Closed),
            }
        }
        Err(NetError::TimedOut {
            waited_ms: self.config.open_timeout_ms * u64::from(self.config.open_attempts.max(1)),
        })
    }

    /// Fetches one metrics snapshot from the server: sends a STATS frame
    /// on session 0 and waits for the reply payload (a versioned JSON
    /// object; see `minshare-trace::metrics::STATS_VERSION`).
    ///
    /// Retransmits on quiet windows like `open_session` (duplicate
    /// replies are dropped as noise), and fails typed: `Closed` when the
    /// connection died, `TimedOut` when every attempt went unanswered.
    pub fn fetch_stats(&mut self) -> Result<Vec<u8>, NetError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.ctl_tx
            .send(ClientCtl::Stats { reply: reply_tx })
            .map_err(|_| NetError::Closed)?;
        let timeout = std::time::Duration::from_millis(self.config.open_timeout_ms);
        for _ in 0..self.config.open_attempts.max(1) {
            self.out_tx
                .send(MuxFrame::control(MuxKind::Stats, 0))
                .map_err(|_| NetError::Closed)?;
            match reply_rx.recv_timeout(timeout) {
                Ok(result) => return result,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Closed),
            }
        }
        Err(NetError::TimedOut {
            waited_ms: self.config.open_timeout_ms * u64::from(self.config.open_attempts.max(1)),
        })
    }

    /// Says GOAWAY, flushes the outbound queue, and joins the driver.
    /// Returns the driver's terminal result.
    pub fn close(mut self) -> Result<(), NetError> {
        let _ = self.ctl_tx.send(ClientCtl::Close);
        match self.driver.take().map(|d| d.join()) {
            Some(Ok(result)) => result,
            // A panicked driver was already confined to its thread.
            Some(Err(_)) => Err(NetError::Closed),
            None => Ok(()),
        }
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        let _ = self.ctl_tx.send(ClientCtl::Close);
        if let Some(driver) = self.driver.take() {
            let _ = driver.join();
        }
    }
}

/// The client's demultiplexing loop. Mirrors the server loop, with
/// pending OPENs in place of admission control.
fn client_driver<T: DeadlineTransport>(
    mut transport: T,
    config: MuxConfig,
    out_rx: &Receiver<MuxFrame>,
    ctl_rx: &Receiver<ClientCtl>,
) -> Result<(), NetError> {
    let mut pending: HashMap<u32, PendingOpen> = HashMap::new();
    let mut pending_stats: std::collections::VecDeque<Sender<Result<Vec<u8>, NetError>>> =
        std::collections::VecDeque::new();
    let mut sessions: HashMap<u32, Sender<Vec<u8>>> = HashMap::new();
    let mut remote_goaway = false;
    let mut closing = false;
    loop {
        while let Ok(ctl) = ctl_rx.try_recv() {
            match ctl {
                ClientCtl::Open { session, pending: p } => {
                    if remote_goaway {
                        let _ = p.reply.send(Err(NetError::Busy { limit: 0 }));
                    } else {
                        pending.insert(session, p);
                    }
                }
                // Stats stay answerable while draining: a scrape of a
                // shutting-down daemon still sees its final counters.
                ClientCtl::Stats { reply } => pending_stats.push_back(reply),
                ClientCtl::Close => closing = true,
            }
        }
        let mut peer_gone = false;
        while let Ok(frame) = out_rx.try_recv() {
            match transport.send(&frame.encode()) {
                Ok(()) => {}
                // The server hung up (surfaced as `Closed`, or as retry
                // exhaustion by a reliability layer underneath); whatever
                // is left unsent is moot.
                Err(NetError::Closed) | Err(NetError::RetriesExhausted { .. }) => {
                    peer_gone = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if peer_gone {
            for (_, p) in pending.drain() {
                let _ = p.reply.send(Err(NetError::Closed));
            }
            for reply in pending_stats.drain(..) {
                let _ = reply.send(Err(NetError::Closed));
            }
            return Ok(());
        }
        if closing {
            // Best-effort farewell: the server may already be gone.
            let _ = transport.send(&MuxFrame::control(MuxKind::Goaway, 0).encode());
            return Ok(());
        }

        let raw = match transport.recv_deadline(config.poll_interval_ms) {
            Ok(Some(raw)) => raw,
            Ok(None) => continue,
            Err(NetError::Closed) => {
                for (_, p) in pending.drain() {
                    let _ = p.reply.send(Err(NetError::Closed));
                }
                for reply in pending_stats.drain(..) {
                    let _ = reply.send(Err(NetError::Closed));
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let Ok(frame) = MuxFrame::decode(&raw) else {
            continue;
        };
        match frame.kind {
            MuxKind::Accept => {
                if let Some(p) = pending.remove(&frame.session) {
                    let (in_tx, in_rx) = bounded(config.session_queue_depth);
                    sessions.insert(frame.session, in_tx);
                    let _ = p.reply.send(Ok(in_rx));
                }
                // Duplicate ACCEPT for an already-active session: noise.
            }
            MuxKind::Busy => {
                if let Some(p) = pending.remove(&frame.session) {
                    let _ = p.reply.send(Err(NetError::Busy {
                        limit: frame.busy_limit(),
                    }));
                }
            }
            MuxKind::Data => {
                if let Some(tx) = sessions.get(&frame.session) {
                    // A client session that stops draining sheds itself;
                    // the server-directed paths already handle CLOSE.
                    let _ = tx.try_send(frame.payload);
                }
            }
            MuxKind::Close => {
                sessions.remove(&frame.session);
                if let Some(p) = pending.remove(&frame.session) {
                    // ACCEPT-then-CLOSE for an already-finished session.
                    let _ = p.reply.send(Err(NetError::Closed));
                }
            }
            MuxKind::Goaway => {
                remote_goaway = true;
                for (_, p) in pending.drain() {
                    let _ = p.reply.send(Err(NetError::Busy { limit: 0 }));
                }
            }
            MuxKind::Stats => {
                // A snapshot reply; a duplicate (from a retransmitted
                // request) finds no pending scrape and is dropped.
                if let Some(reply) = pending_stats.pop_front() {
                    let _ = reply.send(Ok(frame.payload));
                }
            }
            // Client never receives OPEN; drop it.
            MuxKind::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplex::duplex_pair;

    fn echo_handler(_sid: u32, _request: Vec<u8>, mut t: SessionTransport) {
        while let Ok(frame) = t.recv() {
            if t.send(&frame).is_err() {
                break;
            }
        }
    }

    fn fast_config() -> MuxConfig {
        MuxConfig {
            poll_interval_ms: 1,
            open_timeout_ms: 2_000,
            ..MuxConfig::default()
        }
    }

    /// Runs a server loop over one duplex end on a helper thread.
    fn spawn_echo_server(
        limit: usize,
    ) -> (
        MuxClient,
        ShutdownHandle,
        std::thread::JoinHandle<Result<ServerStats, NetError>>,
    ) {
        let (client_end, server_end) = duplex_pair();
        let shutdown = ShutdownHandle::new();
        let shutdown_server = shutdown.clone();
        let server = std::thread::spawn(move || {
            let registry = SessionRegistry::new(limit);
            let provider: StatsProvider =
                Arc::new(|| b"{\"stats_version\":1,\"epoch\":0}".to_vec());
            serve_mux_connection(
                server_end,
                &fast_config(),
                &registry,
                &shutdown_server,
                Some(provider),
                echo_handler,
            )
        });
        let client = MuxClient::new(client_end, fast_config());
        (client, shutdown, server)
    }

    #[test]
    fn sessions_echo_independently() {
        let (mut client, _shutdown, server) = spawn_echo_server(8);
        let mut a = client.open_session(b"a").unwrap();
        let mut b = client.open_session(b"b").unwrap();
        a.send(b"first-a").unwrap();
        b.send(b"first-b").unwrap();
        assert_eq!(a.recv().unwrap(), b"first-a");
        assert_eq!(b.recv().unwrap(), b"first-b");
        drop(a);
        drop(b);
        client.close().unwrap();
        let stats = server.join().unwrap().unwrap();
        assert_eq!(stats.opened, 2);
        assert_eq!(stats.rejected_busy, 0);
    }

    #[test]
    fn admission_cap_is_typed_busy() {
        let (mut client, _shutdown, server) = spawn_echo_server(1);
        let a = client.open_session(b"a").unwrap();
        let err = client.open_session(b"b").unwrap_err();
        assert_eq!(err, NetError::Busy { limit: 1 });
        drop(a);
        // The slot frees once the server reaps the CLOSE; a later open
        // succeeds again.
        let mut c = loop {
            match client.open_session(b"c") {
                Ok(t) => break t,
                Err(NetError::Busy { .. }) => std::thread::yield_now(),
                Err(other) => panic!("unexpected open error: {other}"),
            }
        };
        c.send(b"ping").unwrap();
        assert_eq!(c.recv().unwrap(), b"ping");
        drop(c);
        client.close().unwrap();
        let stats = server.join().unwrap().unwrap();
        assert!(stats.rejected_busy >= 1);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let (mut client, _shutdown, server) = spawn_echo_server(0);
        assert_eq!(
            client.open_session(b"x").unwrap_err(),
            NetError::Busy { limit: 0 }
        );
        client.close().unwrap();
        let stats = server.join().unwrap().unwrap();
        assert_eq!(stats.opened, 0);
        assert_eq!(stats.rejected_busy, 1);
    }

    #[test]
    fn graceful_shutdown_drains_active_sessions() {
        let (mut client, shutdown, server) = spawn_echo_server(8);
        let mut a = client.open_session(b"a").unwrap();
        a.send(b"in-flight").unwrap();
        shutdown.shutdown();
        // New sessions are refused while draining...
        let err = loop {
            match client.open_session(b"late") {
                Err(e) => break e,
                // The shutdown flag may not be visible to the loop yet.
                Ok(t) => drop(t),
            }
        };
        assert!(matches!(err, NetError::Busy { .. } | NetError::Closed));
        // ...but the active session still completes its round trip.
        assert_eq!(a.recv().unwrap(), b"in-flight");
        drop(a);
        let stats = server.join().unwrap().unwrap();
        // The drained session ended one of two ways depending on timing:
        // the handler noticed the client's CLOSE and finished, or the
        // loop reaped the CLOSE first. Either way it was admitted and
        // served to completion, not cut off. (`opened` may exceed 1 if a
        // "late" open slipped in before the flag became visible.)
        assert!(stats.opened >= 1);
        assert!(stats.completed + stats.closed_by_peer >= 1);
        client.close().unwrap();
    }

    #[test]
    fn queue_overflow_sheds_only_the_stalled_session() {
        let config = MuxConfig {
            session_queue_depth: 4,
            ..fast_config()
        };
        let (client_end, server_end) = duplex_pair();
        let shutdown = ShutdownHandle::new();
        let shutdown_server = shutdown.clone();
        // Handler that never drains: its queue must overflow and shed.
        let server = std::thread::spawn(move || {
            let registry = SessionRegistry::new(8);
            serve_mux_connection(
                server_end,
                &config,
                &registry,
                &shutdown_server,
                None,
                |_sid, request, mut t: SessionTransport| {
                    if request == b"stall" {
                        // Refuse to drain long enough for the flood to
                        // overflow the bounded queue, then drain until
                        // the shed surfaces as a typed close.
                        std::thread::sleep(std::time::Duration::from_millis(500));
                        loop {
                            match t.recv_deadline(10) {
                                Ok(Some(_)) | Ok(None) => continue,
                                Err(_) => break,
                            }
                        }
                    } else {
                        echo_handler(0, request, t);
                    }
                },
            )
        });
        let mut client = MuxClient::new(client_end, config);
        let mut stalled = client.open_session(b"stall").unwrap();
        let mut live = client.open_session(b"echo").unwrap();
        // Flood the stalled session far past its queue depth.
        for _ in 0..64 {
            if stalled.send(b"flood").is_err() {
                break;
            }
        }
        // The healthy session is untouched by its neighbor being shed.
        live.send(b"still alive").unwrap();
        assert_eq!(live.recv().unwrap(), b"still alive");
        // The stalled session ends in a typed close, not a hang.
        assert_eq!(stalled.recv().unwrap_err(), NetError::Closed);
        drop(stalled);
        drop(live);
        client.close().unwrap();
        let stats = server.join().unwrap().unwrap();
        assert!(stats.shed_overflow >= 1, "stats: {stats:?}");
    }

    #[test]
    fn stats_scrape_round_trips_and_counts() {
        let (mut client, _shutdown, server) = spawn_echo_server(8);
        let mut a = client.open_session(b"a").unwrap();
        a.send(b"ping").unwrap();
        assert_eq!(a.recv().unwrap(), b"ping");
        // A scrape mid-session answers from the provider without
        // disturbing the live session.
        let snap = client.fetch_stats().unwrap();
        assert_eq!(snap, b"{\"stats_version\":1,\"epoch\":0}");
        a.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
        drop(a);
        client.close().unwrap();
        let stats = server.join().unwrap().unwrap();
        assert_eq!(stats.stats_served, 1);
    }

    #[test]
    fn stats_scrape_without_provider_degrades_to_empty_object() {
        let (client_end, server_end) = duplex_pair();
        let shutdown = ShutdownHandle::new();
        let shutdown_server = shutdown.clone();
        let server = std::thread::spawn(move || {
            let registry = SessionRegistry::new(8);
            serve_mux_connection(
                server_end,
                &fast_config(),
                &registry,
                &shutdown_server,
                None,
                echo_handler,
            )
        });
        let mut client = MuxClient::new(client_end, fast_config());
        assert_eq!(client.fetch_stats().unwrap(), b"{}");
        client.close().unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn handler_panic_is_confined_to_its_session() {
        let (client_end, server_end) = duplex_pair();
        let shutdown = ShutdownHandle::new();
        let shutdown_server = shutdown.clone();
        let server = std::thread::spawn(move || {
            let registry = SessionRegistry::new(8);
            serve_mux_connection(
                server_end,
                &fast_config(),
                &registry,
                &shutdown_server,
                None,
                |_sid, request, mut t: SessionTransport| {
                    if request == b"bomb" {
                        panic!("session blew up");
                    }
                    while let Ok(frame) = t.recv() {
                        if t.send(&frame).is_err() {
                            break;
                        }
                    }
                },
            )
        });
        let mut client = MuxClient::new(client_end, fast_config());
        let bomb = client.open_session(b"bomb").unwrap();
        let mut ok = client.open_session(b"fine").unwrap();
        ok.send(b"unperturbed").unwrap();
        assert_eq!(ok.recv().unwrap(), b"unperturbed");
        drop(bomb);
        drop(ok);
        client.close().unwrap();
        // The scope propagates the handler panic when the loop exits —
        // visible here as the server thread panicking, but only after
        // every other session completed untouched.
        assert!(server.join().is_err());
    }
}
