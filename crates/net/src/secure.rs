//! An authenticated-encryption session layer.
//!
//! The paper assumes "the use of standard libraries or packages for secure
//! communication" (§2.1). This module builds that box from the substrates
//! in this workspace: an unauthenticated Diffie–Hellman key exchange over
//! the safe-prime group (adequate for the semi-honest model, where parties
//! follow the protocol), HKDF key separation per direction, ChaCha20
//! encryption with counter nonces, and HMAC-SHA-256 frame authentication.
//!
//! Wire format of a secured frame: `8-byte BE sequence ‖ ciphertext ‖
//! 32-byte tag`, MACed over the sequence and ciphertext so frames cannot
//! be reordered, replayed or truncated undetected.

use minshare_crypto::QrGroup;
use minshare_hash::{chacha20, hkdf, hmac::HmacSha256};
use rand::Rng;

use crate::error::NetError;
use crate::framebatch::FrameBatch;
use crate::transport::{DeadlineTransport, Transport};

/// Which side of the handshake this endpoint plays (determines key
/// directionality; both sides otherwise run identical code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The party that speaks first.
    Initiator,
    /// The party that responds.
    Responder,
}

/// Keys for one direction of the channel.
///
/// Deliberately does not derive `Debug` — the cipher and MAC keys are
/// session secrets. Dropping the keys scrubs them best-effort.
#[derive(Clone)]
struct DirectionKeys {
    cipher_key: [u8; 32],
    mac_key: [u8; 32],
    /// Per-direction frame counter (nonce + replay protection).
    seq: u64,
}

impl std::fmt::Debug for DirectionKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectionKeys")
            .field("cipher_key", &"<redacted>")
            .field("mac_key", &"<redacted>")
            .field("seq", &self.seq)
            .finish()
    }
}

impl Drop for DirectionKeys {
    fn drop(&mut self) {
        self.cipher_key.fill(0);
        self.mac_key.fill(0);
        // Keep the zeroing stores from being elided as dead writes.
        std::hint::black_box(&mut self.cipher_key);
        std::hint::black_box(&mut self.mac_key);
    }
}

const TAG_LEN: usize = 32;
const SEQ_LEN: usize = 8;

/// An encrypted, authenticated channel over any [`Transport`].
pub struct SecureChannel<T: Transport> {
    inner: T,
    send_keys: DirectionKeys,
    recv_keys: DirectionKeys,
}

impl<T: Transport> SecureChannel<T> {
    /// Runs the handshake over `transport` and returns the secured channel.
    ///
    /// Both parties must pass the same `group`; the roles must differ.
    pub fn establish<R: Rng + ?Sized>(
        mut transport: T,
        group: &QrGroup,
        role: Role,
        rng: &mut R,
    ) -> Result<Self, NetError> {
        // Ephemeral DH over QR_p.
        let x = group.gen_key(rng).exponent().clone();
        let my_public = group.pow(&group.generator(), &x);
        let my_bytes = group
            .encode_element(&my_public)
            .map_err(|e| NetError::HandshakeFailed {
                detail: e.to_string(),
            })?;

        // Exchange publics; initiator sends first to fix the ordering.
        let peer_bytes = match role {
            Role::Initiator => {
                transport.send(&my_bytes)?;
                transport.recv()?
            }
            Role::Responder => {
                let peer = transport.recv()?;
                transport.send(&my_bytes)?;
                peer
            }
        };
        let peer_public =
            group
                .decode_element(&peer_bytes)
                .map_err(|e| NetError::HandshakeFailed {
                    detail: format!("peer public key invalid: {e}"),
                })?;
        let shared = group.pow(&peer_public, &x);
        let shared_bytes =
            group
                .encode_element(&shared)
                .map_err(|e| NetError::HandshakeFailed {
                    detail: e.to_string(),
                })?;

        // Directional keys: the transcript binds both publics in
        // initiator-first order so the two sides derive identical material.
        let mut transcript = Vec::new();
        match role {
            Role::Initiator => {
                transcript.extend_from_slice(&my_bytes);
                transcript.extend_from_slice(&peer_bytes);
            }
            Role::Responder => {
                transcript.extend_from_slice(&peer_bytes);
                transcript.extend_from_slice(&my_bytes);
            }
        }
        let okm = hkdf::derive(
            b"minshare/secure-channel/v1",
            &shared_bytes,
            &transcript,
            (32 + 32) * 2,
        );
        let key = |range: std::ops::Range<usize>| {
            let mut k = [0u8; 32];
            k.copy_from_slice(&okm[range]);
            k
        };
        let i2r = DirectionKeys {
            cipher_key: key(0..32),
            mac_key: key(32..64),
            seq: 0,
        };
        let r2i = DirectionKeys {
            cipher_key: key(64..96),
            mac_key: key(96..128),
            seq: 0,
        };
        let (send_keys, recv_keys) = match role {
            Role::Initiator => (i2r, r2i),
            Role::Responder => (r2i, i2r),
        };
        Ok(SecureChannel {
            inner: transport,
            send_keys,
            recv_keys,
        })
    }

    /// Nonce for sequence number `seq`: 4 zero bytes + BE counter.
    fn nonce(seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[4..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Encrypts and authenticates one frame, advancing the send counter.
    /// The streaming MAC runs over `seq ‖ ciphertext` without needing the
    /// record assembled first, so callers can scatter the three parts
    /// straight into a shared buffer.
    fn seal(&mut self, frame: &[u8]) -> Result<([u8; SEQ_LEN], Vec<u8>, [u8; TAG_LEN]), NetError> {
        let seq = self.send_keys.seq;
        // A wrapped counter would reuse a ChaCha20 nonce; refuse instead
        // of panicking so callers can re-key and continue.
        self.send_keys.seq = seq.checked_add(1).ok_or(NetError::SequenceExhausted)?;
        let mut body = frame.to_vec();
        chacha20::apply_keystream(&self.send_keys.cipher_key, &Self::nonce(seq), 1, &mut body);
        let seq_bytes = seq.to_be_bytes();
        let mut mac = HmacSha256::new(&self.send_keys.mac_key);
        mac.update(&seq_bytes);
        mac.update(&body);
        Ok((seq_bytes, body, mac.finalize()))
    }

    /// Verifies, sequence-checks, and decrypts one wire record, advancing
    /// the receive counter. Shared by the blocking and deadline receive
    /// paths.
    fn open(&mut self, wire: Vec<u8>) -> Result<Vec<u8>, NetError> {
        if wire.len() < SEQ_LEN + TAG_LEN {
            return Err(NetError::MalformedFrame {
                detail: "secured frame too short".to_string(),
            });
        }
        let (signed, tag) = wire.split_at(wire.len() - TAG_LEN);
        if !HmacSha256::verify(&self.recv_keys.mac_key, signed, tag) {
            return Err(NetError::AuthenticationFailed);
        }
        let mut seq_bytes = [0u8; SEQ_LEN];
        seq_bytes.copy_from_slice(&signed[..SEQ_LEN]);
        let seq = u64::from_be_bytes(seq_bytes);
        if seq != self.recv_keys.seq {
            // Replay or reorder.
            return Err(NetError::MalformedFrame {
                detail: format!("expected seq {}, got {seq}", self.recv_keys.seq),
            });
        }
        self.recv_keys.seq += 1;
        let mut body = signed[SEQ_LEN..].to_vec();
        chacha20::apply_keystream(&self.recv_keys.cipher_key, &Self::nonce(seq), 1, &mut body);
        minshare_trace::emit("net", "opened", true, || {
            vec![
                minshare_trace::size("plain_bytes", body.len() as u64),
                minshare_trace::size("wire_bytes", wire.len() as u64),
            ]
        });
        Ok(body)
    }
}

impl<T: Transport> Transport for SecureChannel<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let (seq_bytes, body, tag) = self.seal(frame)?;
        let mut wire = Vec::with_capacity(SEQ_LEN + body.len() + TAG_LEN);
        wire.extend_from_slice(&seq_bytes);
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&tag);
        minshare_trace::emit("net", "sealed", true, || {
            vec![
                minshare_trace::size("plain_bytes", frame.len() as u64),
                minshare_trace::size("wire_bytes", wire.len() as u64),
            ]
        });
        self.inner.send(&wire)
    }

    /// Seals every frame into one rebuilt batch (records are scattered
    /// into a single shared buffer) and forwards it on the inner
    /// transport's bulk path. Wire bytes are identical to sealing and
    /// sending each frame individually.
    fn send_batch(&mut self, batch: FrameBatch) -> Result<(), NetError> {
        let mut sealed =
            FrameBatch::with_capacity(batch.total_bytes() + batch.len() * (SEQ_LEN + TAG_LEN));
        for frame in batch.frames() {
            let (seq_bytes, body, tag) = self.seal(frame)?;
            sealed.push(&[&seq_bytes, &body, &tag])?;
        }
        self.inner.send_batch(sealed)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let wire = self.inner.recv()?;
        self.open(wire)
    }
}

impl<T: DeadlineTransport> DeadlineTransport for SecureChannel<T> {
    /// Deadline semantics are the inner transport's; a record that does
    /// arrive is verified and decrypted exactly as in [`Self::recv`].
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError> {
        match self.inner.recv_deadline(timeout_ms)? {
            Some(wire) => Ok(Some(self.open(wire)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplex::duplex_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(11);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn establish_pair() -> (
        SecureChannel<crate::duplex::DuplexEndpoint>,
        SecureChannel<crate::duplex::DuplexEndpoint>,
    ) {
        let g = group();
        let (a, b) = duplex_pair();
        let g2 = g.clone();
        let handle = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(2);
            SecureChannel::establish(b, &g2, Role::Responder, &mut rng).unwrap()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let chan_a = SecureChannel::establish(a, &g, Role::Initiator, &mut rng).unwrap();
        let chan_b = handle.join().unwrap();
        (chan_a, chan_b)
    }

    #[test]
    fn round_trip_both_directions() {
        let (mut a, mut b) = establish_pair();
        a.send(b"over the river").unwrap();
        assert_eq!(b.recv().unwrap(), b"over the river");
        b.send(b"and through the woods").unwrap();
        assert_eq!(a.recv().unwrap(), b"and through the woods");
    }

    #[test]
    fn many_frames_sequence() {
        let (mut a, mut b) = establish_pair();
        for i in 0..50u32 {
            a.send(&i.to_be_bytes()).unwrap();
        }
        for i in 0..50u32 {
            assert_eq!(b.recv().unwrap(), i.to_be_bytes());
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let g = group();
        let (a, b) = duplex_pair();
        let g2 = g.clone();
        let handle = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(2);
            SecureChannel::establish(b, &g2, Role::Responder, &mut rng).unwrap()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut chan_a = SecureChannel::establish(a, &g, Role::Initiator, &mut rng).unwrap();
        let chan_b = handle.join().unwrap();
        // Peek at the raw wire by receiving on the *inner* transport.
        chan_a.send(b"secret-payload").unwrap();
        let mut raw = chan_b.inner;
        let wire = raw.recv().unwrap();
        assert!(!wire
            .windows(b"secret-payload".len())
            .any(|w| w == b"secret-payload"));
    }

    #[test]
    fn tampering_detected() {
        let (mut a, b) = establish_pair();
        a.send(b"payload").unwrap();
        // Intercept and flip a bit.
        let mut inner = b.inner;
        let mut wire = inner.recv().unwrap();
        wire[SEQ_LEN] ^= 0x01;
        // Re-inject through a fresh pair glued to b's keys.
        let (mut tx, rx) = duplex_pair();
        tx.send(&wire).unwrap();
        let mut b2 = SecureChannel {
            inner: rx,
            send_keys: b.send_keys.clone(),
            recv_keys: b.recv_keys.clone(),
        };
        assert_eq!(b2.recv().unwrap_err(), NetError::AuthenticationFailed);
    }

    #[test]
    fn replay_detected() {
        let (mut a, b) = establish_pair();
        a.send(b"frame-0").unwrap();
        let mut inner = b.inner;
        let wire = inner.recv().unwrap();
        // Deliver the same wire frame twice.
        let (mut tx, rx) = duplex_pair();
        tx.send(&wire).unwrap();
        tx.send(&wire).unwrap();
        let mut b2 = SecureChannel {
            inner: rx,
            send_keys: b.send_keys.clone(),
            recv_keys: b.recv_keys.clone(),
        };
        assert_eq!(b2.recv().unwrap(), b"frame-0");
        assert!(matches!(
            b2.recv().unwrap_err(),
            NetError::MalformedFrame { .. }
        ));
    }

    #[test]
    fn short_frame_rejected() {
        let (_a, b) = establish_pair();
        let (mut tx, rx) = duplex_pair();
        tx.send(&[0u8; 10]).unwrap();
        let mut b2 = SecureChannel {
            inner: rx,
            send_keys: b.send_keys.clone(),
            recv_keys: b.recv_keys.clone(),
        };
        assert!(matches!(
            b2.recv().unwrap_err(),
            NetError::MalformedFrame { .. }
        ));
    }

    #[test]
    fn exhausted_counter_is_an_error_not_a_panic() {
        let (mut a, _b) = establish_pair();
        a.send_keys.seq = u64::MAX;
        assert_eq!(a.send(b"x").unwrap_err(), NetError::SequenceExhausted);
    }

    #[test]
    fn direction_keys_debug_redacted() {
        let (a, _b) = establish_pair();
        let rendered = format!("{:?}", a.send_keys);
        assert!(rendered.contains("<redacted>"), "keys leaked: {rendered}");
        assert!(rendered.contains("seq"));
    }

    #[test]
    fn empty_frames_allowed() {
        let (mut a, mut b) = establish_pair();
        a.send(b"").unwrap();
        assert_eq!(b.recv().unwrap(), b"");
    }
}
