//! Byte-exact traffic accounting.
//!
//! The paper's §6.1 counts communication in `k`-bit codewords (e.g.
//! intersection: `(|V_S| + 2|V_R|)·k` bits). Wrapping a transport in
//! [`CountingTransport`] records exactly what crosses the wire so the
//! bench harness can put the formula and the measurement side by side
//! (experiment E5 in DESIGN.md).
//!
//! When a tracer is installed on the calling thread, every successful
//! send/receive also emits a `net` trace event carrying the same frame
//! and byte counts, so a metrics sink reproduces these counters without
//! holding the stats handle. Frame sequences and sizes are pure
//! functions of the protocol inputs, so the events are deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::NetError;
use crate::framebatch::FrameBatch;
use crate::transport::{DeadlineTransport, Transport};

/// Shared counters readable while the transport is owned by a protocol
/// engine (possibly on another thread).
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    bytes_sent: Arc<AtomicU64>,
    bytes_received: Arc<AtomicU64>,
    frames_sent: Arc<AtomicU64>,
    frames_received: Arc<AtomicU64>,
}

impl TrafficStats {
    /// Total payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total payload bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Frames sent.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Frames received.
    pub fn frames_received(&self) -> u64 {
        self.frames_received.load(Ordering::Relaxed)
    }

    /// Total traffic in both directions, in bits (the paper's unit).
    pub fn total_bits(&self) -> u64 {
        (self.bytes_sent() + self.bytes_received()) * 8
    }
}

/// A transport wrapper that counts every frame and byte.
pub struct CountingTransport<T: Transport> {
    inner: T,
    stats: TrafficStats,
}

impl<T: Transport> CountingTransport<T> {
    /// Wraps `inner`, returning the wrapper and a handle to its counters.
    pub fn new(inner: T) -> (Self, TrafficStats) {
        let stats = TrafficStats::default();
        (
            CountingTransport {
                inner,
                stats: stats.clone(),
            },
            stats,
        )
    }

    /// Consumes the wrapper, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for CountingTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.inner.send(frame)?;
        self.stats
            .bytes_sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        minshare_trace::emit("net", "frame_sent", true, || {
            vec![
                minshare_trace::count("frames", 1),
                minshare_trace::size("bytes", frame.len() as u64),
            ]
        });
        Ok(())
    }

    /// Forwards the whole batch on the inner bulk path, then accounts
    /// each frame exactly as the per-frame `send` would have.
    fn send_batch(&mut self, batch: FrameBatch) -> Result<(), NetError> {
        let frames = batch.len() as u64;
        let payload: u64 = batch.frames().map(|f| f.len() as u64).sum();
        self.inner.send_batch(batch)?;
        self.stats.bytes_sent.fetch_add(payload, Ordering::Relaxed);
        self.stats.frames_sent.fetch_add(frames, Ordering::Relaxed);
        minshare_trace::emit("net", "frame_sent", true, || {
            vec![
                minshare_trace::count("frames", frames),
                minshare_trace::size("bytes", payload),
            ]
        });
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let frame = self.inner.recv()?;
        self.stats
            .bytes_received
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.stats.frames_received.fetch_add(1, Ordering::Relaxed);
        minshare_trace::emit("net", "frame_recv", true, || {
            vec![
                minshare_trace::count("frames", 1),
                minshare_trace::size("bytes", frame.len() as u64),
            ]
        });
        Ok(frame)
    }
}

impl<T: DeadlineTransport> DeadlineTransport for CountingTransport<T> {
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError> {
        let frame = self.inner.recv_deadline(timeout_ms)?;
        if let Some(frame) = frame.as_ref() {
            self.stats
                .bytes_received
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            self.stats.frames_received.fetch_add(1, Ordering::Relaxed);
            minshare_trace::emit("net", "frame_recv", true, || {
                vec![
                    minshare_trace::count("frames", 1),
                    minshare_trace::size("bytes", frame.len() as u64),
                ]
            });
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplex::duplex_pair;

    #[test]
    fn counts_both_directions() {
        let (a, b) = duplex_pair();
        let (mut a, a_stats) = CountingTransport::new(a);
        let (mut b, b_stats) = CountingTransport::new(b);
        a.send(&[0u8; 100]).unwrap();
        a.send(&[0u8; 28]).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        b.send(&[0u8; 7]).unwrap();
        a.recv().unwrap();

        assert_eq!(a_stats.bytes_sent(), 128);
        assert_eq!(a_stats.frames_sent(), 2);
        assert_eq!(a_stats.bytes_received(), 7);
        assert_eq!(b_stats.bytes_received(), 128);
        assert_eq!(b_stats.frames_received(), 2);
        assert_eq!(b_stats.bytes_sent(), 7);
        assert_eq!(a_stats.total_bits(), (128 + 7) * 8);
    }

    #[test]
    fn stats_handle_survives_move() {
        let (a, mut b) = duplex_pair();
        let (a, stats) = CountingTransport::new(a);
        let handle = std::thread::spawn(move || {
            let mut a = a;
            a.send(&[1u8; 10]).unwrap();
        });
        let frame = b.recv().unwrap();
        handle.join().unwrap();
        assert_eq!(frame.len(), 10);
        assert_eq!(stats.bytes_sent(), 10);
    }

    #[test]
    fn failed_send_not_counted() {
        let (a, b) = duplex_pair();
        drop(b);
        let (mut a, stats) = CountingTransport::new(a);
        assert!(a.send(b"x").is_err());
        assert_eq!(stats.bytes_sent(), 0);
        assert_eq!(stats.frames_sent(), 0);
    }
}
