//! # minshare-net
//!
//! The **secure communication** box of the paper's Figure 1: transports
//! carrying length-framed messages between the two parties, with
//!
//! * [`transport::Transport`] — the byte-frame interface the protocol
//!   engines speak,
//! * [`duplex`] — an in-memory duplex pair (crossbeam channels) for running
//!   both parties in one process, carrying frames as shared buffers,
//! * [`framebatch::FrameBatch`] — scatter/gather frame batching: many
//!   frames packed into one buffer in a single length-prefix pass, sent
//!   zero-copy where the transport supports it,
//! * [`counting::CountingTransport`] — exact wire accounting, used to
//!   verify the paper's §6.1 communication-cost formulas against actual
//!   bytes on the wire,
//! * [`secure::SecureChannel`] — an authenticated-encryption session
//!   (Diffie–Hellman over the safe-prime group → HKDF → ChaCha20 + HMAC),
//!   standing in for the "standard libraries or packages for secure
//!   communication" the paper assumes (§2.1),
//! * [`simnet`] — a deterministic fault-injecting simulated network
//!   (seeded drop/delay/duplicate/reorder/corrupt schedules on a virtual
//!   clock) for conformance testing the protocols under adversity,
//! * [`robust::RobustTransport`] — bounded-retry ARQ with checksummed
//!   frames and a resumable handshake, restoring reliable-channel
//!   semantics on top of a faulty link,
//! * [`mux`] — the session-multiplexing envelope: many independent
//!   protocol sessions interleaved over one framed connection, each
//!   frame tagged with a checksummed session id + sequence header,
//! * [`server`] — the long-running protocol daemon built on the mux: a
//!   session registry with admission control, bounded per-session
//!   queues with typed `Busy` load-shedding, and graceful shutdown that
//!   drains active sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counting;
pub mod duplex;
pub mod error;
pub mod framebatch;
pub mod mux;
pub mod robust;
pub mod secure;
pub mod server;
pub mod simnet;
pub mod tcp;
pub mod transport;

pub use counting::{CountingTransport, TrafficStats};
pub use duplex::duplex_pair;
pub use error::NetError;
pub use framebatch::FrameBatch;
pub use mux::{MuxFrame, MuxKind, MUX_HEADER_LEN};
pub use robust::{RobustConfig, RobustTransport};
pub use server::{
    serve_mux_connection, MuxClient, MuxConfig, ServerStats, SessionRegistry, SessionTransport,
    ShutdownHandle, StatsProvider,
};
pub use simnet::{sim_pair, FaultPlan, SimConfig, SimEndpoint, SimTrace, TraceHandle};
pub use transport::{DeadlineTransport, Transport};
