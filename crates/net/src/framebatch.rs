//! Zero-copy frame batching.
//!
//! The chunk-pipelined engines in `minshare-core` emit long runs of
//! small frames (one codeword chunk per frame). Sending them one at a
//! time costs a `Vec` allocation and a channel hand-off per frame.
//! [`FrameBatch`] assembles a run of frames into **one** contiguous
//! buffer in a single length-prefix pass — each frame is laid out as
//! `u32 BE length ‖ payload` — and [`crate::transport::Transport::send_batch`]
//! hands the whole batch to the transport at once. Transports that can
//! exploit the layout (the in-memory [`crate::duplex`] link) freeze the
//! buffer into a shared [`Bytes`] and deliver per-frame *views* of it,
//! so the batch crosses the channel without any per-frame copy; other
//! transports fall back to the per-frame loop with identical wire
//! semantics.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::NetError;

/// Frames larger than this cannot be length-prefixed with a `u32`.
const MAX_FRAME: usize = u32::MAX as usize;
const PREFIX_LEN: usize = 4;

/// A run of frames packed into one contiguous buffer.
///
/// Build with [`FrameBatch::push`] (scatter/gather over borrowed parts)
/// or [`FrameBatch::frame_writer`] (streaming), then hand to
/// [`crate::transport::Transport::send_batch`].
#[derive(Debug, Default)]
pub struct FrameBatch {
    buf: Vec<u8>,
    frames: usize,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> Self {
        FrameBatch::default()
    }

    /// An empty batch with `bytes` of reserved payload+header capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        FrameBatch {
            buf: Vec::with_capacity(bytes),
            frames: 0,
        }
    }

    /// Appends one frame whose payload is the concatenation of `parts`,
    /// writing the length prefix once and each part directly into the
    /// shared buffer (no intermediate per-frame `Vec`).
    pub fn push(&mut self, parts: &[&[u8]]) -> Result<(), NetError> {
        let len: usize = parts.iter().map(|p| p.len()).sum();
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge {
                size: len,
                limit: MAX_FRAME,
            });
        }
        self.buf.reserve(PREFIX_LEN + len);
        self.buf.extend_from_slice(&(len as u32).to_be_bytes());
        for part in parts {
            self.buf.extend_from_slice(part);
        }
        self.frames += 1;
        Ok(())
    }

    /// Starts a streaming frame: the returned writer implements
    /// [`BufMut`], appends straight into the batch buffer, and patches
    /// the frame's length prefix when dropped.
    pub fn frame_writer(&mut self) -> FrameWriter<'_> {
        let prefix_at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; PREFIX_LEN]);
        self.frames += 1;
        FrameWriter { batch: self, prefix_at }
    }

    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.frames
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Total buffer size: payload plus the per-frame length prefixes.
    pub fn total_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Iterates the frame payloads in insertion order.
    pub fn frames(&self) -> FrameIter<'_> {
        FrameIter { rest: &self.buf }
    }

    /// Freezes the batch and returns one shared [`Bytes`] view per
    /// frame — all views alias the same allocation, so this is O(frames)
    /// with zero payload copies.
    pub fn into_shared_frames(self) -> Vec<Bytes> {
        let frames = self.frames;
        let shared = Bytes::from_vec(self.buf);
        let mut out = Vec::with_capacity(frames);
        let mut at = 0usize;
        while let Some((start, end)) = frame_bounds(&shared, at) {
            out.push(shared.slice(start..end));
            at = end;
        }
        out
    }
}

/// `(payload_start, payload_end)` of the frame whose prefix begins at
/// `at`, or `None` at (or past) the end of a well-formed buffer.
fn frame_bounds(buf: &[u8], at: usize) -> Option<(usize, usize)> {
    let prefix: [u8; PREFIX_LEN] = buf.get(at..at + PREFIX_LEN)?.try_into().ok()?;
    let len = u32::from_be_bytes(prefix) as usize;
    let start = at + PREFIX_LEN;
    let end = start.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    Some((start, end))
}

/// Iterator over the frame payloads of a [`FrameBatch`].
pub struct FrameIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let (start, end) = frame_bounds(self.rest, 0)?;
        let frame = self.rest.get(start..end)?;
        self.rest = self.rest.get(end..).unwrap_or(&[]);
        Some(frame)
    }
}

/// Streaming writer for one frame of a [`FrameBatch`]; see
/// [`FrameBatch::frame_writer`].
pub struct FrameWriter<'a> {
    batch: &'a mut FrameBatch,
    prefix_at: usize,
}

impl FrameWriter<'_> {
    /// Payload bytes written so far.
    pub fn written(&self) -> usize {
        self.batch.buf.len() - self.prefix_at - PREFIX_LEN
    }
}

impl BufMut for FrameWriter<'_> {
    fn put_slice(&mut self, src: &[u8]) {
        self.batch.buf.extend_from_slice(src);
    }
}

impl Drop for FrameWriter<'_> {
    fn drop(&mut self) {
        // Oversized frames are truncated at the u32 prefix ceiling; the
        // receiver's framing stays consistent and the mismatch surfaces
        // as a payload-length error one layer up. In practice frames are
        // bounded far below 4 GiB by the transports' frame limits.
        let len = self.written().min(MAX_FRAME) as u32;
        let prefix = len.to_be_bytes();
        if let Some(slot) = self
            .batch
            .buf
            .get_mut(self.prefix_at..self.prefix_at + PREFIX_LEN)
        {
            slot.copy_from_slice(&prefix);
        }
    }
}

// `BytesMut` is the upstream builder type; keep a conversion so callers
// holding one can batch it as a single frame without copying twice.
impl From<BytesMut> for FrameBatch {
    fn from(buf: BytesMut) -> FrameBatch {
        let mut batch = FrameBatch::with_capacity(buf.len() + PREFIX_LEN);
        // A single frame can exceed u32::MAX only via a >4 GiB message;
        // the push error is unreachable for realistic inputs, and an
        // empty batch is the safe degenerate result.
        let _ = batch.push(&[&buf]);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate_round_trip() {
        let mut batch = FrameBatch::new();
        batch.push(&[b"hello"]).unwrap();
        batch.push(&[b"wo", b"rld"]).unwrap();
        batch.push(&[]).unwrap();
        assert_eq!(batch.len(), 3);
        let frames: Vec<&[u8]> = batch.frames().collect();
        assert_eq!(frames, vec![b"hello".as_slice(), b"world", b""]);
        assert_eq!(batch.total_bytes(), 3 * 4 + 5 + 5);
    }

    #[test]
    fn shared_frames_match_iteration() {
        let mut batch = FrameBatch::new();
        for i in 0..10u32 {
            batch.push(&[&i.to_be_bytes(), &[0xAA; 3]]).unwrap();
        }
        let expected: Vec<Vec<u8>> = batch.frames().map(|f| f.to_vec()).collect();
        let shared = batch.into_shared_frames();
        assert_eq!(shared.len(), 10);
        for (s, e) in shared.iter().zip(&expected) {
            assert_eq!(&s[..], &e[..]);
        }
    }

    #[test]
    fn streaming_writer_patches_prefix() {
        let mut batch = FrameBatch::new();
        {
            let mut w = batch.frame_writer();
            w.put_u8(7);
            w.put_u32(0xdead_beef);
            w.put_slice(b"tail");
            assert_eq!(w.written(), 9);
        }
        batch.push(&[b"after"]).unwrap();
        let frames: Vec<&[u8]> = batch.frames().collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], [7, 0xde, 0xad, 0xbe, 0xef, b't', b'a', b'i', b'l']);
        assert_eq!(frames[1], b"after");
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = FrameBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.frames().count(), 0);
        assert!(batch.into_shared_frames().is_empty());
    }

    #[test]
    fn bytesmut_converts_to_single_frame() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"payload");
        let batch = FrameBatch::from(buf);
        let frames: Vec<&[u8]> = batch.frames().collect();
        assert_eq!(frames, vec![b"payload".as_slice()]);
    }
}
