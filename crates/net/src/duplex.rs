//! In-memory duplex transport built on crossbeam channels.
//!
//! Frames cross the channel as shared [`Bytes`] views: a single `send`
//! copies the borrowed frame once into a fresh buffer, while
//! [`Transport::send_batch`] hands over per-frame *slices* of the
//! batch's one contiguous buffer — zero copies on the send side, one
//! `Arc` clone per frame.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::error::NetError;
use crate::framebatch::FrameBatch;
use crate::transport::{DeadlineTransport, Transport};

/// One endpoint of an in-memory duplex link.
pub struct DuplexEndpoint {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    /// Reject frames larger than this (bug guard; default 256 MiB).
    frame_limit: usize,
}

const DEFAULT_FRAME_LIMIT: usize = 256 * 1024 * 1024;

/// Creates a connected pair of endpoints. Frames sent on one side arrive
/// on the other, in order.
pub fn duplex_pair() -> (DuplexEndpoint, DuplexEndpoint) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (
        DuplexEndpoint {
            tx: a_tx,
            rx: a_rx,
            frame_limit: DEFAULT_FRAME_LIMIT,
        },
        DuplexEndpoint {
            tx: b_tx,
            rx: b_rx,
            frame_limit: DEFAULT_FRAME_LIMIT,
        },
    )
}

impl DuplexEndpoint {
    /// Overrides the frame-size guard (mainly for tests).
    pub fn with_frame_limit(mut self, limit: usize) -> Self {
        self.frame_limit = limit;
        self
    }

    /// Non-blocking receive, for drivers that poll.
    pub fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f.into_vec())),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn send_shared(&mut self, frame: Bytes) -> Result<(), NetError> {
        if frame.len() > self.frame_limit {
            return Err(NetError::FrameTooLarge {
                size: frame.len(),
                limit: self.frame_limit,
            });
        }
        self.tx.send(frame).map_err(|_| NetError::Closed)
    }
}

impl Transport for DuplexEndpoint {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.send_shared(Bytes::copy_from_slice(frame))
    }

    /// Zero-copy bulk path: the batch's single buffer is frozen once and
    /// each frame crosses the channel as a shared slice of it.
    fn send_batch(&mut self, batch: FrameBatch) -> Result<(), NetError> {
        for frame in batch.into_shared_frames() {
            self.send_shared(frame)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        self.rx.recv().map(Bytes::into_vec).map_err(|_| NetError::Closed)
    }
}

impl DeadlineTransport for DuplexEndpoint {
    /// Wall-clock deadline. A peer that hangs up mid-wait wakes the
    /// blocked reader with [`NetError::Closed`] rather than letting it
    /// sit out the timeout.
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError> {
        match self
            .rx
            .recv_timeout(std::time::Duration::from_millis(timeout_ms))
        {
            Ok(frame) => Ok(Some(frame.into_vec())),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_cross_in_both_directions() {
        let (mut a, mut b) = duplex_pair();
        a.send(b"hello").unwrap();
        b.send(b"world").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(a.recv().unwrap(), b"world");
    }

    #[test]
    fn ordering_preserved() {
        let (mut a, mut b) = duplex_pair();
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn closed_peer_detected() {
        let (mut a, b) = duplex_pair();
        drop(b);
        assert_eq!(a.send(b"x").unwrap_err(), NetError::Closed);
        assert_eq!(a.recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn try_recv_nonblocking() {
        let (mut a, mut b) = duplex_pair();
        assert_eq!(b.try_recv().unwrap(), None);
        a.send(b"x").unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(b"x".to_vec()));
        drop(a);
        assert_eq!(b.try_recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn frame_limit_enforced() {
        let (a, _b) = duplex_pair();
        let mut a = a.with_frame_limit(4);
        assert!(a.send(b"1234").is_ok());
        assert!(matches!(
            a.send(b"12345").unwrap_err(),
            NetError::FrameTooLarge { size: 5, limit: 4 }
        ));
    }

    /// Regression: a reader blocked inside `recv` (mid-frame, from its
    /// point of view) must be woken with `Closed` the moment the peer
    /// endpoint is dropped — never left hanging.
    #[test]
    fn drop_while_peer_blocked_returns_closed() {
        let (mut a, b) = duplex_pair();
        let (started_tx, started_rx) = unbounded();
        let reader = std::thread::spawn(move || {
            started_tx.send(()).unwrap();
            a.recv()
        });
        // Wait until the reader thread is up and (almost certainly)
        // parked inside recv, then hang up without sending anything.
        started_rx.recv().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(b);
        let result = reader.join().unwrap();
        assert_eq!(result.unwrap_err(), NetError::Closed);
    }

    /// Same scenario through the deadline path: the disconnect must win
    /// over the timeout.
    #[test]
    fn drop_while_peer_blocked_with_deadline_returns_closed() {
        let (mut a, b) = duplex_pair();
        let reader = std::thread::spawn(move || a.recv_deadline(60_000));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(b);
        let result = reader.join().unwrap();
        assert_eq!(result.unwrap_err(), NetError::Closed);
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let (mut a, mut b) = duplex_pair();
        assert_eq!(b.recv_deadline(1).unwrap(), None);
        a.send(b"late").unwrap();
        assert_eq!(b.recv_deadline(1_000).unwrap(), Some(b"late".to_vec()));
    }

    #[test]
    fn works_across_threads() {
        let (mut a, mut b) = duplex_pair();
        let handle = std::thread::spawn(move || {
            let got = b.recv().unwrap();
            b.send(&got).unwrap();
        });
        a.send(b"ping").unwrap();
        assert_eq!(a.recv().unwrap(), b"ping");
        handle.join().unwrap();
    }
}
