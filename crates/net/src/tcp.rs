//! TCP transport: length-prefixed frames over a socket, so the two
//! parties can run in separate processes (or separate machines).
//!
//! Wire format: 4-byte big-endian frame length, then the frame bytes.
//! The [`crate::secure::SecureChannel`] layer composes on top for
//! confidentiality and integrity.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

use crate::error::NetError;
use crate::transport::Transport;

/// Default maximum accepted frame size (a corruption/abuse guard).
const DEFAULT_FRAME_LIMIT: usize = 256 * 1024 * 1024;

/// A framed transport over a TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
    frame_limit: usize,
}

impl TcpTransport {
    /// Connects to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            frame_limit: DEFAULT_FRAME_LIMIT,
        })
    }

    /// Binds `addr`, accepts exactly one connection, and returns the
    /// transport plus the peer's address. Also returns the locally bound
    /// address via [`TcpAcceptor`] when a port of 0 was requested — use
    /// [`TcpAcceptor::bind`] for that flow.
    pub fn accept_one<A: ToSocketAddrs>(addr: A) -> Result<(Self, SocketAddr), NetError> {
        let acceptor = TcpAcceptor::bind(addr)?;
        acceptor.accept()
    }

    /// Wraps an already-established stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            frame_limit: DEFAULT_FRAME_LIMIT,
        })
    }

    /// Overrides the frame-size guard.
    pub fn with_frame_limit(mut self, limit: usize) -> Self {
        self.frame_limit = limit;
        self
    }
}

/// A bound listener whose local address is known before accepting —
/// needed by tests (port 0) and by callers that print "listening on …".
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds the address (may be port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        Ok(TcpAcceptor {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The locally bound address.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts one connection.
    pub fn accept(&self) -> Result<(TcpTransport, SocketAddr), NetError> {
        let (stream, peer) = self.listener.accept()?;
        Ok((TcpTransport::from_stream(stream)?, peer))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if frame.len() > self.frame_limit {
            return Err(NetError::FrameTooLarge {
                size: frame.len(),
                limit: self.frame_limit,
            });
        }
        self.stream.write_all(&(frame.len() as u32).to_be_bytes())?;
        self.stream.write_all(frame)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let mut len_bytes = [0u8; 4];
        self.stream.read_exact(&mut len_bytes)?;
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > self.frame_limit {
            return Err(NetError::FrameTooLarge {
                size: len,
                limit: self.frame_limit,
            });
        }
        let mut frame = vec![0u8; len];
        self.stream.read_exact(&mut frame)?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn localhost_pair() -> (TcpTransport, TcpTransport) {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let (server, _) = acceptor.accept().unwrap();
        (server, client.join().unwrap())
    }

    #[test]
    fn frames_cross_both_directions() {
        let (mut a, mut b) = localhost_pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong-with-more-bytes").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong-with-more-bytes");
    }

    #[test]
    fn empty_and_large_frames() {
        let (mut a, mut b) = localhost_pair();
        a.send(b"").unwrap();
        assert_eq!(b.recv().unwrap(), b"");
        let big = vec![0x5au8; 1 << 20];
        a.send(&big).unwrap();
        assert_eq!(b.recv().unwrap(), big);
    }

    #[test]
    fn ordering_preserved() {
        let (mut a, mut b) = localhost_pair();
        for i in 0..20u8 {
            a.send(&[i; 3]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(b.recv().unwrap(), vec![i; 3]);
        }
    }

    #[test]
    fn peer_close_is_detected() {
        let (a, mut b) = localhost_pair();
        drop(a);
        assert_eq!(b.recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn frame_limit_rejects_oversize_send() {
        let (a, _b) = localhost_pair();
        let mut a = a.with_frame_limit(8);
        assert!(matches!(
            a.send(&[0u8; 9]).unwrap_err(),
            NetError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn frame_limit_rejects_oversize_recv() {
        let (mut a, b) = localhost_pair();
        let mut b = b.with_frame_limit(4);
        a.send(&[0u8; 100]).unwrap();
        assert!(matches!(
            b.recv().unwrap_err(),
            NetError::FrameTooLarge { .. }
        ));
    }
}
