//! TCP transport: length-prefixed frames over a socket, so the two
//! parties can run in separate processes (or separate machines).
//!
//! Wire format: 4-byte big-endian frame length, then the frame bytes.
//! The [`crate::secure::SecureChannel`] layer composes on top for
//! confidentiality and integrity.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::transport::{DeadlineTransport, Transport};

/// Default maximum accepted frame size (a corruption/abuse guard).
const DEFAULT_FRAME_LIMIT: usize = 256 * 1024 * 1024;

/// A framed transport over a TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
    frame_limit: usize,
    /// Bytes of the frame currently being assembled (header included).
    /// Lets the deadline receive path give up mid-frame and resume on
    /// the next call without losing stream position.
    rdbuf: Vec<u8>,
}

impl TcpTransport {
    /// Connects to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            frame_limit: DEFAULT_FRAME_LIMIT,
            rdbuf: Vec::new(),
        })
    }

    /// Binds `addr`, accepts exactly one connection, and returns the
    /// transport plus the peer's address. Also returns the locally bound
    /// address via [`TcpAcceptor`] when a port of 0 was requested — use
    /// [`TcpAcceptor::bind`] for that flow.
    pub fn accept_one<A: ToSocketAddrs>(addr: A) -> Result<(Self, SocketAddr), NetError> {
        let acceptor = TcpAcceptor::bind(addr)?;
        acceptor.accept()
    }

    /// Wraps an already-established stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            frame_limit: DEFAULT_FRAME_LIMIT,
            rdbuf: Vec::new(),
        })
    }

    /// Overrides the frame-size guard.
    pub fn with_frame_limit(mut self, limit: usize) -> Self {
        self.frame_limit = limit;
        self
    }

    /// Pops one complete frame off `rdbuf` if the header and body have
    /// fully arrived.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let Some(header) = self.rdbuf.get(0..4) else {
            return Ok(None);
        };
        let header: [u8; 4] = header.try_into().unwrap_or_default();
        let len = u32::from_be_bytes(header) as usize;
        if len > self.frame_limit {
            return Err(NetError::FrameTooLarge {
                size: len,
                limit: self.frame_limit,
            });
        }
        let Some(body) = self.rdbuf.get(4..4 + len) else {
            return Ok(None);
        };
        let frame = body.to_vec();
        self.rdbuf.drain(..4 + len);
        Ok(Some(frame))
    }

    /// One `read` into `rdbuf`. `Ok(true)` when bytes arrived, `Ok(false)`
    /// when the read timed out (non-blocking window elapsed), `Closed`
    /// on end-of-stream.
    fn read_some(&mut self) -> Result<bool, NetError> {
        let mut chunk = [0u8; 64 * 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(NetError::Closed),
            Ok(n) => {
                self.rdbuf
                    .extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                Ok(true)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(false)
            }
            Err(e) => Err(NetError::from(e)),
        }
    }
}

/// A bound listener whose local address is known before accepting —
/// needed by tests (port 0) and by callers that print "listening on …".
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds the address (may be port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        Ok(TcpAcceptor {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The locally bound address.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts one connection.
    pub fn accept(&self) -> Result<(TcpTransport, SocketAddr), NetError> {
        let (stream, peer) = self.listener.accept()?;
        Ok((TcpTransport::from_stream(stream)?, peer))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if frame.len() > self.frame_limit {
            return Err(NetError::FrameTooLarge {
                size: frame.len(),
                limit: self.frame_limit,
            });
        }
        self.stream.write_all(&(frame.len() as u32).to_be_bytes())?;
        self.stream.write_all(frame)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        // Resume any frame a deadline poll left half-assembled.
        self.stream.set_read_timeout(None)?;
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(frame);
            }
            if !self.read_some()? {
                // Blocking read cannot time out; treat it as a spurious
                // wakeup and retry.
                continue;
            }
        }
    }
}

impl DeadlineTransport for TcpTransport {
    /// Wall-clock deadline via the socket's read timeout. A frame split
    /// across polls is assembled incrementally in `rdbuf`; giving up
    /// mid-frame never loses stream position.
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError> {
        if let Some(frame) = self.take_frame()? {
            return Ok(Some(frame));
        }
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            // `set_read_timeout` rejects zero; a 1 ms floor turns
            // `recv_deadline(0)` into a short poll.
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            if self.read_some()? {
                if let Some(frame) = self.take_frame()? {
                    return Ok(Some(frame));
                }
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn localhost_pair() -> (TcpTransport, TcpTransport) {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let (server, _) = acceptor.accept().unwrap();
        (server, client.join().unwrap())
    }

    #[test]
    fn frames_cross_both_directions() {
        let (mut a, mut b) = localhost_pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong-with-more-bytes").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong-with-more-bytes");
    }

    #[test]
    fn empty_and_large_frames() {
        let (mut a, mut b) = localhost_pair();
        a.send(b"").unwrap();
        assert_eq!(b.recv().unwrap(), b"");
        let big = vec![0x5au8; 1 << 20];
        a.send(&big).unwrap();
        assert_eq!(b.recv().unwrap(), big);
    }

    #[test]
    fn ordering_preserved() {
        let (mut a, mut b) = localhost_pair();
        for i in 0..20u8 {
            a.send(&[i; 3]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(b.recv().unwrap(), vec![i; 3]);
        }
    }

    #[test]
    fn peer_close_is_detected() {
        let (a, mut b) = localhost_pair();
        drop(a);
        assert_eq!(b.recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn frame_limit_rejects_oversize_send() {
        let (a, _b) = localhost_pair();
        let mut a = a.with_frame_limit(8);
        assert!(matches!(
            a.send(&[0u8; 9]).unwrap_err(),
            NetError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let (mut a, mut b) = localhost_pair();
        assert_eq!(b.recv_deadline(10).unwrap(), None);
        a.send(b"late frame").unwrap();
        assert_eq!(
            b.recv_deadline(5_000).unwrap(),
            Some(b"late frame".to_vec())
        );
    }

    /// A frame split across the wire must survive a deadline poll giving
    /// up mid-frame: the next receive resumes from buffered bytes.
    #[test]
    fn recv_deadline_resumes_partial_frames() {
        use std::io::Write;
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            raw.set_nodelay(true).unwrap();
            // Header promises 8 bytes; send half, stall, send the rest.
            raw.write_all(&8u32.to_be_bytes()).unwrap();
            raw.write_all(b"firs").unwrap();
            raw.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(150));
            raw.write_all(b"tsec").unwrap();
            raw.flush().unwrap();
            // Hold the socket open until the reader is done.
            std::thread::sleep(std::time::Duration::from_millis(300));
        });
        let (mut server, _) = acceptor.accept().unwrap();
        // First poll expires mid-frame...
        assert_eq!(server.recv_deadline(20).unwrap(), None);
        // ...the blocking path then completes the same frame.
        assert_eq!(server.recv().unwrap(), b"firstsec");
        client.join().unwrap();
    }

    #[test]
    fn deadline_then_burst_preserves_framing() {
        let (mut a, mut b) = localhost_pair();
        assert_eq!(b.recv_deadline(5).unwrap(), None);
        for i in 0..10u8 {
            a.send(&[i; 5]).unwrap();
        }
        for i in 0..10u8 {
            let got = b
                .recv_deadline(5_000)
                .unwrap()
                .expect("frame should arrive within deadline");
            assert_eq!(got, vec![i; 5]);
        }
    }

    #[test]
    fn frame_limit_rejects_oversize_recv() {
        let (mut a, b) = localhost_pair();
        let mut b = b.with_frame_limit(4);
        a.send(&[0u8; 100]).unwrap();
        assert!(matches!(
            b.recv().unwrap_err(),
            NetError::FrameTooLarge { .. }
        ));
    }
}
