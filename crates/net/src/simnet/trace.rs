//! Event traces for simulated-network runs.
//!
//! Every send through a [`crate::simnet::SimEndpoint`] appends one
//! [`TraceEvent`] per delivery attempt (a duplicated frame produces two
//! events with the same message index). Because fault decisions are
//! drawn from a per-direction RNG stream in per-direction send order,
//! and all timestamps are virtual, re-running the same seed produces a
//! byte-identical trace regardless of OS thread scheduling — which is
//! exactly what the conformance harness asserts.

use std::sync::Arc;

use crate::simnet::fault::Faults;
use crate::simnet::link::LinkShared;

/// One delivery attempt of one frame, as observed by the link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-direction message index (0-based, in send order).
    pub index: u64,
    /// Payload length as handed to `send`.
    pub sent_len: u32,
    /// Payload length actually scheduled for delivery (differs from
    /// `sent_len` after truncation; equal to it otherwise). Zero-length
    /// deliveries are possible under truncation.
    pub delivered_len: u32,
    /// Virtual time at which the frame entered the link.
    pub send_vtime: u64,
    /// Virtual time at which the frame reaches the receiver's queue, or
    /// `None` if this attempt was dropped (loss or partition).
    pub delivery_vtime: Option<u64>,
    /// Which faults the injector applied to this attempt.
    pub faults: Faults,
}

/// A full per-direction trace of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimTrace {
    /// Events for frames sent by side A (delivered toward B).
    pub a_to_b: Vec<TraceEvent>,
    /// Events for frames sent by side B (delivered toward A).
    pub b_to_a: Vec<TraceEvent>,
}

impl SimTrace {
    /// Total number of delivery attempts recorded (both directions).
    pub fn len(&self) -> usize {
        self.a_to_b.len() + self.b_to_a.len()
    }

    /// True when no sends were observed.
    pub fn is_empty(&self) -> bool {
        self.a_to_b.is_empty() && self.b_to_a.is_empty()
    }

    /// Number of attempts that were dropped (loss or partition).
    pub fn dropped(&self) -> usize {
        self.a_to_b
            .iter()
            .chain(self.b_to_a.iter())
            .filter(|e| e.delivery_vtime.is_none())
            .count()
    }

    /// Number of attempts whose payload was corrupted (truncated or
    /// bit-flipped) but still delivered.
    pub fn corrupted(&self) -> usize {
        self.a_to_b
            .iter()
            .chain(self.b_to_a.iter())
            .filter(|e| e.delivery_vtime.is_some() && (e.faults.truncated || e.faults.bit_flipped))
            .count()
    }

    /// An order-sensitive FNV-1a digest of the whole trace, for cheap
    /// "same seed → same run" comparisons in the sweep harness.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_be_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (dir, events) in [(0u64, &self.a_to_b), (1u64, &self.b_to_a)] {
            mix(dir);
            mix(events.len() as u64);
            for e in events {
                mix(e.index);
                mix(u64::from(e.sent_len));
                mix(u64::from(e.delivered_len));
                mix(e.send_vtime);
                mix(e.delivery_vtime.map_or(u64::MAX, |t| t));
                mix(u64::from(e.faults.as_bits()));
                mix(e.faults.extra_delay_ms);
            }
        }
        h
    }
}

/// A handle onto the link's trace, alive even while both endpoints are
/// owned by protocol threads.
#[derive(Clone)]
pub struct TraceHandle {
    pub(crate) shared: Arc<LinkShared>,
}

impl TraceHandle {
    /// Copies the trace accumulated so far. Call after the run finishes
    /// for the complete picture.
    pub fn snapshot(&self) -> SimTrace {
        let st = self.shared.lock();
        SimTrace {
            a_to_b: st.trace.a.clone(),
            b_to_a: st.trace.b.clone(),
        }
    }
}
