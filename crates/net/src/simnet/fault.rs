//! Seeded fault schedules.
//!
//! A [`FaultPlan`] is a *distribution* over per-message faults; the
//! per-direction [`FaultInjector`] turns it into a concrete schedule by
//! drawing from a `StdRng` seeded with `plan.seed ^ direction`. Each
//! direction consumes its stream strictly in send order, so the schedule
//! a message sees depends only on `(seed, direction, message index)` —
//! never on how the OS interleaved the two party threads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A virtual-time window during which the link delivers nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First virtual millisecond of the outage (inclusive).
    pub from_ms: u64,
    /// End of the outage (exclusive).
    pub until_ms: u64,
}

impl PartitionWindow {
    fn covers(&self, vtime: u64) -> bool {
        self.from_ms <= vtime && vtime < self.until_ms
    }
}

/// A reproducible schedule of network faults, fully determined by `seed`.
///
/// Probabilities are per delivery attempt and independent; several faults
/// can hit the same frame (e.g. truncated *and* delayed). Corruption
/// probabilities model an adversarial or broken middlebox — the secure
/// channel and the retry layer's checksum must both reject the result.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-direction fault RNG streams.
    pub seed: u64,
    /// Probability a frame is silently lost.
    pub drop: f64,
    /// Probability a frame is delivered twice (the copy arrives later).
    pub duplicate: f64,
    /// Probability a frame is held back by an extra random delay.
    pub delay: f64,
    /// Probability a frame is held long enough to land behind its
    /// successors (reordering).
    pub reorder: f64,
    /// Probability a frame's payload is cut short.
    pub truncate: f64,
    /// Probability a single bit of the payload is flipped.
    pub bitflip: f64,
    /// Upper bound on injected extra delay, in virtual milliseconds.
    pub max_delay_ms: u64,
    /// Scheduled total outages of the link (both directions).
    pub partitions: Vec<PartitionWindow>,
    /// Virtual bandwidth cap in bytes per virtual millisecond per
    /// direction; `0` means unlimited.
    pub bytes_per_ms: u64,
}

impl FaultPlan {
    /// A fault-free plan: every frame delivered once, intact, in order.
    pub fn perfect() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            reorder: 0.0,
            truncate: 0.0,
            bitflip: 0.0,
            max_delay_ms: 0,
            partitions: Vec::new(),
            bytes_per_ms: 0,
        }
    }

    /// Derives a randomized-but-reproducible plan from a single seed: the
    /// sweep harness walks seeds `0..N` to cover a spectrum from nearly
    /// clean links to hostile ones. Intensities are kept below the point
    /// where the retry budget is statistically certain to be exhausted,
    /// so most runs complete and exercise the recovery path rather than
    /// just the give-up path.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        // Overall harshness in [0, 1]; scales every probability.
        let harshness = f64::from(rng.random_range(0u32..=1000)) / 1000.0;
        let p = |rng: &mut StdRng, ceil: f64| {
            f64::from(rng.random_range(0u32..=1000)) / 1000.0 * ceil * harshness
        };
        let drop = p(&mut rng, 0.12);
        let duplicate = p(&mut rng, 0.15);
        let delay = p(&mut rng, 0.30);
        let reorder = p(&mut rng, 0.20);
        let truncate = p(&mut rng, 0.10);
        let bitflip = p(&mut rng, 0.10);
        let max_delay_ms = rng.random_range(1u64..=40);
        // Roughly a third of plans include one hard partition window.
        let partitions = if rng.random_bool(0.35) {
            let from_ms = rng.random_range(5u64..=400);
            let width = rng.random_range(5u64..=120);
            vec![PartitionWindow {
                from_ms,
                until_ms: from_ms + width,
            }]
        } else {
            Vec::new()
        };
        // Occasionally cap bandwidth so transmission time matters.
        let bytes_per_ms = if rng.random_bool(0.25) {
            rng.random_range(64u64..=4096)
        } else {
            0
        };
        FaultPlan {
            seed,
            drop,
            duplicate,
            delay,
            reorder,
            truncate,
            bitflip,
            max_delay_ms,
            partitions,
            bytes_per_ms,
        }
    }

    /// True when `vtime` falls inside a scheduled partition.
    pub(crate) fn partitioned_at(&self, vtime: u64) -> bool {
        self.partitions.iter().any(|w| w.covers(vtime))
    }
}

/// Which faults hit one delivery attempt (recorded in the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Faults {
    /// Lost to random drop.
    pub dropped: bool,
    /// Lost to a partition window.
    pub partitioned: bool,
    /// Payload cut short.
    pub truncated: bool,
    /// One payload bit inverted.
    pub bit_flipped: bool,
    /// This attempt is the extra copy of a duplicated frame.
    pub duplicated: bool,
    /// Extra queueing delay applied (delay or reorder fault), in virtual
    /// milliseconds; `0` when neither fired.
    pub extra_delay_ms: u64,
}

impl Faults {
    /// Compact bitmask for digests and summaries.
    pub fn as_bits(&self) -> u8 {
        u8::from(self.dropped)
            | u8::from(self.partitioned) << 1
            | u8::from(self.truncated) << 2
            | u8::from(self.bit_flipped) << 3
            | u8::from(self.duplicated) << 4
    }

    /// True when no fault touched the attempt.
    pub fn is_clean(&self) -> bool {
        self.as_bits() == 0 && self.extra_delay_ms == 0
    }
}

/// One scheduled delivery attempt produced by the injector.
#[derive(Debug)]
pub(crate) struct Attempt {
    /// Possibly mutated payload; `None` when the attempt is lost.
    pub payload: Option<Vec<u8>>,
    /// Extra virtual delay beyond base latency + transmission time.
    pub extra_delay_ms: u64,
    /// What happened, for the trace.
    pub faults: Faults,
}

/// Per-direction deterministic fault source. Owned by the *sending*
/// endpoint of its direction, so draws happen in send order.
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    next_index: u64,
}

impl FaultInjector {
    pub fn new(plan: &FaultPlan, direction: u64) -> Self {
        FaultInjector {
            plan: plan.clone(),
            // Distinct stream per direction; the xor keeps direction 0's
            // stream different from the plan-derivation stream too.
            rng: StdRng::seed_from_u64(
                plan.seed
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
                    .wrapping_add(direction + 1),
            ),
            next_index: 0,
        }
    }

    /// Decides the fate of one frame entering the link at `send_vtime`.
    /// Returns the message index and one or two delivery attempts.
    pub fn on_send(&mut self, frame: &[u8], send_vtime: u64) -> (u64, Vec<Attempt>) {
        let index = self.next_index;
        self.next_index += 1;
        let plan = self.plan.clone();

        // Draw order is fixed: partition, drop, truncate, bitflip,
        // delay, reorder, duplicate. Probability draws happen even when
        // an earlier fault already doomed the frame, so the stream
        // position after message k never depends on what faults fired —
        // only the payload-shaping draws (lengths, bit positions) are
        // conditional, and those depend solely on earlier draws.
        let partitioned = plan.partitioned_at(send_vtime);
        let dropped = self.rng.random_bool(plan.drop);
        let truncate = self.rng.random_bool(plan.truncate);
        let bitflip = self.rng.random_bool(plan.bitflip);
        let delayed = self.rng.random_bool(plan.delay);
        let reordered = self.rng.random_bool(plan.reorder);
        let duplicated = self.rng.random_bool(plan.duplicate);

        if partitioned || dropped {
            let faults = Faults {
                dropped,
                partitioned,
                ..Faults::default()
            };
            return (
                index,
                vec![Attempt {
                    payload: None,
                    extra_delay_ms: 0,
                    faults,
                }],
            );
        }

        let mut payload = frame.to_vec();
        if truncate && !payload.is_empty() {
            let new_len = self.rng.random_range(0..payload.len());
            payload.truncate(new_len);
        }
        if bitflip && !payload.is_empty() {
            let pos = self.rng.random_range(0..payload.len());
            let bit = self.rng.random_range(0u32..8);
            if let Some(byte) = payload.get_mut(pos) {
                *byte ^= 1u8 << bit;
            }
        }
        let mut extra_delay_ms = 0u64;
        if delayed {
            extra_delay_ms += self.rng.random_range(1..=plan.max_delay_ms.max(1));
        }
        if reordered {
            // Enough to land behind at least one back-to-back successor.
            extra_delay_ms += 1 + self.rng.random_range(0..=plan.max_delay_ms.max(1));
        }
        let faults = Faults {
            truncated: truncate && frame.len() != payload.len(),
            bit_flipped: bitflip && !payload.is_empty(),
            extra_delay_ms,
            ..Faults::default()
        };
        let mut attempts = vec![Attempt {
            payload: Some(payload.clone()),
            extra_delay_ms,
            faults,
        }];
        if duplicated {
            let copy_delay = extra_delay_ms + 1 + self.rng.random_range(0..=plan.max_delay_ms.max(1));
            attempts.push(Attempt {
                payload: Some(payload),
                extra_delay_ms: copy_delay,
                faults: Faults {
                    duplicated: true,
                    extra_delay_ms: copy_delay,
                    ..faults
                },
            });
        }
        (index, attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_plan_never_mutates() {
        let plan = FaultPlan::perfect();
        let mut inj = FaultInjector::new(&plan, 0);
        for i in 0..100u64 {
            let (index, attempts) = inj.on_send(b"hello world", i);
            assert_eq!(index, i);
            assert_eq!(attempts.len(), 1);
            let a = &attempts[0];
            assert_eq!(a.payload.as_deref(), Some(&b"hello world"[..]));
            assert_eq!(a.extra_delay_ms, 0);
            assert!(a.faults.is_clean());
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::from_seed(42);
        let frames: Vec<Vec<u8>> = (0..200u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let run = |mut inj: FaultInjector| {
            frames
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let (_, attempts) = inj.on_send(f, i as u64 * 3);
                    attempts
                        .into_iter()
                        .map(|a| (a.payload, a.extra_delay_ms, a.faults))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        let a = run(FaultInjector::new(&plan, 0));
        let b = run(FaultInjector::new(&plan, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn directions_get_distinct_streams() {
        let plan = FaultPlan::from_seed(7);
        let mut d0 = FaultInjector::new(&plan, 0);
        let mut d1 = FaultInjector::new(&plan, 1);
        let outcomes: (Vec<_>, Vec<_>) = (0..64u64)
            .map(|i| {
                let (_, a) = d0.on_send(&[0u8; 64], i);
                let (_, b) = d1.on_send(&[0u8; 64], i);
                (
                    a.iter().map(|x| x.faults).collect::<Vec<_>>(),
                    b.iter().map(|x| x.faults).collect::<Vec<_>>(),
                )
            })
            .unzip();
        assert_ne!(outcomes.0, outcomes.1);
    }

    #[test]
    fn from_seed_is_deterministic_and_varied() {
        assert_eq!(FaultPlan::from_seed(5), FaultPlan::from_seed(5));
        let plans: Vec<FaultPlan> = (0..32).map(FaultPlan::from_seed).collect();
        assert!(plans.windows(2).any(|w| w[0] != w[1]));
        assert!(plans.iter().any(|p| !p.partitions.is_empty()));
        assert!(plans.iter().any(|p| p.bytes_per_ms != 0));
    }

    #[test]
    fn partition_window_covers_half_open() {
        let w = PartitionWindow {
            from_ms: 10,
            until_ms: 20,
        };
        assert!(!w.covers(9));
        assert!(w.covers(10));
        assert!(w.covers(19));
        assert!(!w.covers(20));
    }

    #[test]
    fn total_drop_loses_everything() {
        let plan = FaultPlan {
            drop: 1.0,
            ..FaultPlan::perfect()
        };
        let mut inj = FaultInjector::new(&plan, 0);
        for i in 0..20u64 {
            let (_, attempts) = inj.on_send(b"gone", i);
            assert!(attempts.iter().all(|a| a.payload.is_none()));
        }
    }
}
