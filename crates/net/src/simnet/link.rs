//! Shared state of one simulated link.
//!
//! Both endpoints and the trace handle hold an `Arc<LinkShared>`: a
//! mutex over [`LinkState`] plus one condvar. All ordering decisions —
//! delivery order, which blocked party's timeout fires first, deadlock
//! declaration — are made on *virtual* quantities under the lock, so the
//! observable behaviour of a run is a pure function of the seed even
//! though the two parties run on real OS threads.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::simnet::trace::TraceEvent;

/// One of the two endpoints of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The endpoint returned first by `sim_pair`.
    A,
    /// The endpoint returned second by `sim_pair`.
    B,
}

impl Side {
    /// The other endpoint.
    pub fn peer(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }

    /// Direction tag for seeding the per-direction fault stream.
    pub(crate) fn direction(self) -> u64 {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }
}

/// A `{A, B}`-indexed pair. Used instead of `[T; 2]` so lookups are
/// `match`es rather than slice indexing (which the workspace bans in
/// non-test library code — an out-of-range index would be a panic path).
#[derive(Debug, Default)]
pub(crate) struct PerSide<T> {
    pub a: T,
    pub b: T,
}

impl<T> PerSide<T> {
    pub fn get(&self, side: Side) -> &T {
        match side {
            Side::A => &self.a,
            Side::B => &self.b,
        }
    }

    pub fn get_mut(&mut self, side: Side) -> &mut T {
        match side {
            Side::A => &mut self.a,
            Side::B => &mut self.b,
        }
    }
}

/// A frame sitting in the link, due at `vtime`.
#[derive(Debug)]
pub(crate) struct Scheduled {
    pub vtime: u64,
    /// Global insertion counter; breaks ties so two frames due at the
    /// same virtual instant deliver in schedule order.
    pub seq: u64,
    pub bytes: Vec<u8>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.vtime == other.vtime && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.vtime, self.seq).cmp(&(other.vtime, other.seq))
    }
}

/// Registration of a receiver blocked on its queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaitState {
    /// Absolute virtual deadline, `None` for an unbounded `recv`.
    pub deadline: Option<u64>,
    /// Set by the peer when it proves mutual starvation (both sides
    /// blocked forever with nothing in flight).
    pub deadlocked: bool,
}

/// Everything behind the link's mutex.
#[derive(Debug, Default)]
pub(crate) struct LinkState {
    /// In-flight frames, keyed by *receiving* side (min-heap on vtime).
    pub queues: PerSide<BinaryHeap<Reverse<Scheduled>>>,
    /// Virtual time at which each direction's pipe frees up, keyed by
    /// *sending* side. Models the bandwidth cap.
    pub link_free_at: PerSide<u64>,
    /// Whether each endpoint has been dropped.
    pub closed: PerSide<bool>,
    /// Each endpoint's virtual clock, published on every clock change
    /// made under the lock. Clocks only move forward, so
    /// `clocks[peer] + latency` is a sound lower bound on the delivery
    /// time of anything the peer has not sent yet — the conservative
    /// lookahead that makes delivery order independent of OS scheduling.
    pub clocks: PerSide<u64>,
    /// Blocked-receiver registrations, keyed by the blocked side.
    pub waiting: PerSide<Option<WaitState>>,
    /// Trace events, keyed by *sending* side.
    pub trace: PerSide<Vec<TraceEvent>>,
    /// Tie-breaking insertion counter for [`Scheduled`].
    pub next_seq: u64,
}

/// The mutex + condvar pair both endpoints share.
#[derive(Debug, Default)]
pub(crate) struct LinkShared {
    state: Mutex<LinkState>,
    pub wakeup: Condvar,
}

impl LinkShared {
    /// Locks the state, recovering from poison: a party thread that
    /// panicked while holding the lock must not take the simulation down
    /// with a second panic — the harness converts the first one into
    /// `ProtocolError::PartyPanicked` and the state is still coherent
    /// enough to let the surviving side observe `closed`.
    pub fn lock(&self) -> MutexGuard<'_, LinkState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_orders_by_vtime_then_seq() {
        let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
        for (vtime, seq) in [(5u64, 2u64), (3, 1), (5, 0), (1, 3)] {
            heap.push(Reverse(Scheduled {
                vtime,
                seq,
                bytes: vec![],
            }));
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(s)| (s.vtime, s.seq))
            .collect();
        assert_eq!(order, vec![(1, 3), (3, 1), (5, 0), (5, 2)]);
    }

    #[test]
    fn per_side_round_trips() {
        let mut p = PerSide { a: 1, b: 2 };
        assert_eq!(*p.get(Side::A), 1);
        assert_eq!(*p.get(Side::B), 2);
        *p.get_mut(Side::A.peer()) = 9;
        assert_eq!(p.b, 9);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let shared = std::sync::Arc::new(LinkShared::default());
        let s2 = shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s2.lock();
            panic!("poison it");
        })
        .join();
        let mut st = shared.lock();
        *st.closed.get_mut(Side::A) = true;
        assert!(*st.closed.get(Side::A));
    }
}
