//! Deterministic in-process simulated network.
//!
//! [`sim_pair`] returns two [`SimEndpoint`]s joined by a fault-injecting
//! link. Faults (drop, delay, duplicate, reorder, truncate, bit-flip,
//! partitions, bandwidth caps) come from a [`FaultPlan`] — a schedule
//! fully determined by one `u64` seed. Time is *virtual*: each endpoint
//! carries a clock in virtual milliseconds that advances on sends
//! (transmission time under a bandwidth cap) and on receives (to the
//! frame's delivery time), so a "500 ms outage" costs microseconds of
//! wall time and replays identically.
//!
//! # Determinism
//!
//! Two sources of nondeterminism exist in a two-thread simulation: the
//! fault schedule and timeout ordering. Both are pinned:
//!
//! * Fault draws come from **per-direction** RNG streams seeded from
//!   `(plan.seed, direction)` and consumed in per-direction send order.
//!   Thread interleaving cannot reorder draws within a direction, and
//!   directions do not share a stream, so the fate of message `i` on a
//!   direction is a pure function of the seed.
//! * A blocked receiver's timeout is declared only on virtual evidence:
//!   either a queued frame is due *after* the deadline, or **both**
//!   parties are provably blocked on empty queues — then the earliest
//!   virtual deadline fires (ties break toward side A). Wall-clock never
//!   decides; a configurable real-time backstop exists only to surface
//!   harness bugs as errors instead of hung test runs.

pub mod fault;
pub(crate) mod link;
pub mod trace;

pub use fault::{FaultPlan, Faults, PartitionWindow};
pub use link::Side;
pub use trace::{SimTrace, TraceEvent, TraceHandle};

use std::cmp::Reverse;
use std::sync::Arc;

use crate::error::NetError;
use crate::simnet::fault::FaultInjector;
use crate::simnet::link::{LinkShared, Scheduled, WaitState};
use crate::simnet::trace::TraceEvent as Event;
use crate::transport::{DeadlineTransport, Transport};

/// Fixed (non-seeded) parameters of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Base one-way latency in virtual milliseconds.
    pub latency_ms: u64,
    /// Virtual deadline for a whole run; once an endpoint's clock passes
    /// it, sends and deliveries fail with [`NetError::TimedOut`]. This is
    /// the harness's hang detector: any schedule that cannot finish
    /// within the budget terminates with a typed error.
    pub run_deadline_ms: u64,
    /// Wall-clock backstop for condvar waits. Virtual logic never
    /// depends on it; it only turns a harness bug (a wait nothing will
    /// ever signal) into an error instead of a hung test.
    pub real_backstop_ms: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency_ms: 5,
            run_deadline_ms: 600_000,
            real_backstop_ms: 30_000,
        }
    }
}

/// One endpoint of a simulated link. Implements [`Transport`] and
/// [`DeadlineTransport`]; deadlines are measured on the virtual clock.
pub struct SimEndpoint {
    shared: Arc<LinkShared>,
    side: Side,
    config: SimConfig,
    injector: FaultInjector,
    bytes_per_ms: u64,
    clock: u64,
}

/// Creates a connected pair of simulated endpoints plus a handle to the
/// link's event trace.
pub fn sim_pair(config: SimConfig, plan: &FaultPlan) -> (SimEndpoint, SimEndpoint, TraceHandle) {
    // The conservative delivery rule needs a strictly positive lookahead
    // (a send can never arrive at the sender's own instant), so a zero
    // latency is bumped to one virtual millisecond.
    let config = SimConfig {
        latency_ms: config.latency_ms.max(1),
        ..config
    };
    let shared = Arc::new(LinkShared::default());
    let endpoint = |side: Side| SimEndpoint {
        shared: shared.clone(),
        side,
        config,
        injector: FaultInjector::new(plan, side.direction()),
        bytes_per_ms: plan.bytes_per_ms,
        clock: 0,
    };
    let (a, b) = (endpoint(Side::A), endpoint(Side::B));
    (a, b, TraceHandle { shared })
}

impl SimEndpoint {
    /// This endpoint's current virtual time, in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.clock
    }

    /// Which side of the link this endpoint is.
    pub fn side(&self) -> Side {
        self.side
    }

    fn over_deadline(&self) -> Result<(), NetError> {
        if self.clock > self.config.run_deadline_ms {
            Err(NetError::TimedOut {
                waited_ms: self.config.run_deadline_ms,
            })
        } else {
            Ok(())
        }
    }

    /// Blocking receive with an optional virtual deadline. `Ok(None)`
    /// only when a deadline was given and elapsed.
    ///
    /// Delivery and timeout decisions follow the conservative rule: an
    /// event at virtual time `t` commits only once `t` is provably no
    /// later than anything the peer could still send. The proof is a
    /// lower bound on the peer's next delivery — its published clock
    /// plus link latency while it runs; `min(its queue head, its
    /// deadline) + latency` while it is blocked; `∞` once it is closed.
    /// Everything else waits on the condvar for the peer to advance the
    /// shared virtual state.
    fn recv_inner(&mut self, timeout_ms: Option<u64>) -> Result<Option<Vec<u8>>, NetError> {
        self.over_deadline()?;
        let deadline = timeout_ms.map(|t| self.clock.saturating_add(t));
        let latency = self.config.latency_ms.max(1);
        let peer = self.side.peer();
        let shared = self.shared.clone();
        let mut st = shared.lock();
        let mut backstopped = false;
        let mut registered = false;
        loop {
            // A deadlock verdict proven by the peer.
            if st
                .waiting
                .get(self.side)
                .as_ref()
                .is_some_and(|w| w.deadlocked)
            {
                *st.waiting.get_mut(self.side) = None;
                shared.wakeup.notify_all();
                return Err(NetError::Deadlock);
            }
            let top = st.queues.get(self.side).peek().map(|r| r.0.vtime);
            // Lower bound on the delivery time of any frame the peer has
            // not sent yet.
            let lb = if *st.closed.get(peer) {
                u64::MAX
            } else if let Some(pw) = st.waiting.get(peer) {
                let head = st.queues.get(peer).peek().map_or(u64::MAX, |r| r.0.vtime);
                head.min(pw.deadline.unwrap_or(u64::MAX))
                    .saturating_add(latency)
            } else {
                st.clocks.get(peer).saturating_add(latency)
            };
            // Deliver the queue head once nothing can precede it. A tie
            // with `lb` is safe: a later send at the same instant gets a
            // larger insertion sequence and sorts after the head.
            if let Some(t) = top {
                if deadline.is_none_or(|d| t <= d) && t <= lb {
                    if let Some(Reverse(frame)) = st.queues.get_mut(self.side).pop() {
                        *st.waiting.get_mut(self.side) = None;
                        self.clock = self.clock.max(frame.vtime);
                        *st.clocks.get_mut(self.side) = self.clock;
                        shared.wakeup.notify_all();
                        self.over_deadline()?;
                        return Ok(Some(frame.bytes));
                    }
                }
            }
            // Empty queue + peer gone: nothing can ever arrive.
            if top.is_none() && *st.closed.get(peer) {
                *st.waiting.get_mut(self.side) = None;
                return Err(NetError::Closed);
            }
            // Time out once nothing can arrive by the deadline.
            if let Some(d) = deadline {
                if top.is_none_or(|t| t > d) && d < lb {
                    *st.waiting.get_mut(self.side) = None;
                    self.clock = self.clock.max(d);
                    *st.clocks.get_mut(self.side) = self.clock;
                    shared.wakeup.notify_all();
                    return Ok(None);
                }
            }
            // Undecidable for now: register as blocked (the registration
            // itself is virtual state — it sharpens the peer's bound, so
            // announce it).
            if !registered {
                *st.waiting.get_mut(self.side) = Some(WaitState {
                    deadline,
                    deadlocked: false,
                });
                registered = true;
                shared.wakeup.notify_all();
            }
            // Provable mutual starvation: both sides blocked with no
            // deadline and nothing in flight either way.
            let peer_stuck = st
                .waiting
                .get(peer)
                .as_ref()
                .is_some_and(|w| w.deadline.is_none() && !w.deadlocked)
                && st.queues.get(peer).is_empty();
            if deadline.is_none() && top.is_none() && peer_stuck {
                if let Some(w) = st.waiting.get_mut(peer).as_mut() {
                    w.deadlocked = true;
                }
                *st.waiting.get_mut(self.side) = None;
                shared.wakeup.notify_all();
                return Err(NetError::Deadlock);
            }
            // Wait for the peer to advance the virtual state. The
            // wall-clock backstop converts a harness bug into an error;
            // one full re-check runs before giving up, in case the
            // wake-up raced the timeout.
            if backstopped {
                *st.waiting.get_mut(self.side) = None;
                return Err(NetError::TimedOut {
                    waited_ms: self.config.real_backstop_ms,
                });
            }
            let wait = std::time::Duration::from_millis(self.config.real_backstop_ms);
            let (guard, result) = shared
                .wakeup
                .wait_timeout(st, wait)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            backstopped = result.timed_out();
        }
    }
}

impl Transport for SimEndpoint {
    /// Sends one frame. Unlike the in-memory duplex pair, sending to a
    /// closed peer is *not* an error: the frame (and its fault draws, and
    /// its trace event) happen exactly as if the peer were alive, so a
    /// run's trace cannot depend on the wall-clock race between one
    /// party's exit and the other's last sends. Peer departure surfaces
    /// on the receive side, after the in-flight queue drains.
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.over_deadline()?;
        let shared = self.shared.clone();
        let mut st = shared.lock();
        let transmission = if self.bytes_per_ms == 0 {
            0
        } else {
            (frame.len() as u64).div_ceil(self.bytes_per_ms)
        };
        let start = self.clock.max(*st.link_free_at.get(self.side));
        *st.link_free_at.get_mut(self.side) = start + transmission;
        self.clock = start + transmission;
        *st.clocks.get_mut(self.side) = self.clock;
        let (index, attempts) = self.injector.on_send(frame, start);
        for attempt in attempts {
            let delivered_len = attempt.payload.as_ref().map_or(0, |p| p.len() as u32);
            let delivery_vtime = attempt.payload.as_ref().map(|_| {
                start + transmission + self.config.latency_ms + attempt.extra_delay_ms
            });
            // Fault draws come from a per-direction seeded RNG in
            // per-direction send order, on the sending party's own
            // thread: deterministic under a fixed FaultPlan seed.
            if attempt.faults.as_bits() != 0 || attempt.faults.extra_delay_ms != 0 {
                let faults = attempt.faults;
                minshare_trace::emit("simnet", "fault", true, || {
                    vec![
                        minshare_trace::count("index", index),
                        minshare_trace::count("faults_bits", u64::from(faults.as_bits())),
                        minshare_trace::count("extra_delay_ms", faults.extra_delay_ms),
                    ]
                });
            }
            st.trace.get_mut(self.side).push(Event {
                index,
                sent_len: frame.len() as u32,
                delivered_len,
                send_vtime: start,
                delivery_vtime,
                faults: attempt.faults,
            });
            if let (Some(bytes), Some(vtime)) = (attempt.payload, delivery_vtime) {
                let seq = st.next_seq;
                st.next_seq += 1;
                st.queues.get_mut(self.side.peer()).push(Reverse(Scheduled {
                    vtime,
                    seq,
                    bytes,
                }));
            }
        }
        shared.wakeup.notify_all();
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        match self.recv_inner(None)? {
            Some(frame) => Ok(frame),
            // Unreachable: without a deadline, recv_inner never returns
            // a timeout. Mapped defensively rather than unwrapped.
            None => Err(NetError::Deadlock),
        }
    }
}

impl DeadlineTransport for SimEndpoint {
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError> {
        self.recv_inner(Some(timeout_ms))
    }
}

impl Drop for SimEndpoint {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        *st.closed.get_mut(self.side) = true;
        self.shared.wakeup.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            real_backstop_ms: 2_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn perfect_link_delivers_in_order() {
        let (mut a, mut b, _trace) = sim_pair(cfg(), &FaultPlan::perfect());
        for i in 0..20u8 {
            a.send(&[i]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
        assert_eq!(b.clock_ms(), cfg().latency_ms);
    }

    #[test]
    fn both_directions_work() {
        let (mut a, mut b, _trace) = sim_pair(cfg(), &FaultPlan::perfect());
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn closed_peer_detected_on_recv() {
        let (mut a, b, _trace) = sim_pair(cfg(), &FaultPlan::perfect());
        drop(b);
        // Sends to a dead peer vanish into the link (deterministically —
        // see `send`); the receive side reports the closure.
        assert!(a.send(b"x").is_ok());
        assert_eq!(a.recv().unwrap_err(), NetError::Closed);
        assert_eq!(a.recv_deadline(10).unwrap_err(), NetError::Closed);
    }

    #[test]
    fn queued_frames_drain_before_closed() {
        let (mut a, mut b, _trace) = sim_pair(cfg(), &FaultPlan::perfect());
        a.send(b"parting gift").unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap(), b"parting gift");
        assert_eq!(b.recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn virtual_deadline_fires_against_future_frame() {
        let plan = FaultPlan {
            delay: 1.0,
            max_delay_ms: 100,
            ..FaultPlan::perfect()
        };
        let (mut a, mut b, _trace) = sim_pair(cfg(), &plan);
        a.send(b"late").unwrap();
        // The frame is due at latency + delay > 1 virtual ms: a 1 ms
        // deadline must time out without wall-clock sleeping (sound even
        // with `a` alive: its published clock bounds any further send).
        assert_eq!(b.recv_deadline(1).unwrap(), None);
        assert_eq!(b.clock_ms(), 1);
        // Close the idle sender so the future frame becomes provably
        // minimal, then a generous deadline sees it.
        drop(a);
        assert_eq!(b.recv_deadline(100_000).unwrap(), Some(b"late".to_vec()));
    }

    #[test]
    fn dropped_frames_never_arrive() {
        let plan = FaultPlan {
            drop: 1.0,
            ..FaultPlan::perfect()
        };
        let (mut a, mut b, trace) = sim_pair(cfg(), &plan);
        a.send(b"gone").unwrap();
        // Nothing queued and the sender thread (us) isn't blocked, so a
        // peer-side deadline fires via the both-blocked rule only in
        // threaded runs; single-threaded, the future-frame rule cannot
        // apply. Use try-style: deadline with both parties blocked needs
        // threads, so just assert the trace recorded a drop.
        let snap = trace.snapshot();
        assert_eq!(snap.a_to_b.len(), 1);
        assert!(snap.a_to_b[0].faults.dropped);
        assert_eq!(snap.a_to_b[0].delivery_vtime, None);
        drop(a);
        assert_eq!(b.recv().unwrap_err(), NetError::Closed);
    }

    #[test]
    fn both_blocked_earliest_deadline_fires() {
        let (mut a, mut b, _trace) = sim_pair(cfg(), &FaultPlan::perfect());
        let handle = std::thread::spawn(move || {
            // B blocks with the later deadline; A must fire first, send,
            // and this side then receives the frame.
            let first = b.recv_deadline(50).unwrap();
            (first, b)
        });
        // A blocks with the earlier deadline: times out, then sends.
        assert_eq!(a.recv_deadline(10).unwrap(), None);
        assert_eq!(a.clock_ms(), 10);
        a.send(b"after-timeout").unwrap();
        let (first, _b) = handle.join().unwrap();
        assert_eq!(first, Some(b"after-timeout".to_vec()));
    }

    #[test]
    fn both_blocked_without_deadlines_is_deadlock() {
        let (mut a, mut b, _trace) = sim_pair(cfg(), &FaultPlan::perfect());
        let handle = std::thread::spawn(move || b.recv());
        let got_a = a.recv();
        let got_b = handle.join().unwrap();
        assert_eq!(got_a.unwrap_err(), NetError::Deadlock);
        assert_eq!(got_b.unwrap_err(), NetError::Deadlock);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let plan = FaultPlan {
            duplicate: 1.0,
            max_delay_ms: 3,
            ..FaultPlan::perfect()
        };
        let (mut a, mut b, trace) = sim_pair(cfg(), &plan);
        a.send(b"twice").unwrap();
        drop(a); // quiesce the sender so the delayed copy is deliverable
        assert_eq!(b.recv().unwrap(), b"twice");
        assert_eq!(b.recv().unwrap(), b"twice");
        let snap = trace.snapshot();
        assert_eq!(snap.a_to_b.len(), 2);
        assert!(snap.a_to_b[1].faults.duplicated);
    }

    #[test]
    fn truncation_shortens_payload() {
        let plan = FaultPlan {
            truncate: 1.0,
            ..FaultPlan::perfect()
        };
        let (mut a, mut b, trace) = sim_pair(cfg(), &plan);
        a.send(&[7u8; 100]).unwrap();
        let got = b.recv().unwrap();
        assert!(got.len() < 100);
        assert!(got.iter().all(|&x| x == 7));
        assert!(trace.snapshot().a_to_b[0].faults.truncated);
    }

    #[test]
    fn bitflip_changes_exactly_one_bit() {
        let plan = FaultPlan {
            bitflip: 1.0,
            ..FaultPlan::perfect()
        };
        let (mut a, mut b, _trace) = sim_pair(cfg(), &plan);
        let original = [0u8; 64];
        a.send(&original).unwrap();
        let got = b.recv().unwrap();
        let flipped: u32 = got
            .iter()
            .zip(original.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn partition_window_drops_by_virtual_time() {
        let plan = FaultPlan {
            partitions: vec![PartitionWindow {
                from_ms: 0,
                until_ms: 50,
            }],
            ..FaultPlan::perfect()
        };
        let (mut a, mut b, trace) = sim_pair(cfg(), &plan);
        a.send(b"lost").unwrap(); // clock 0: inside the window
        // A blocks without a deadline so B's 60 ms deadline can fire via
        // the both-blocked rule; B then replies from outside the window.
        let handle = std::thread::spawn(move || a.recv());
        assert_eq!(b.recv_deadline(60).unwrap(), None); // advances b to 60
        b.send(b"reply-after-window").unwrap(); // clock 60: outside
        assert_eq!(handle.join().unwrap().unwrap(), b"reply-after-window");
        let snap = trace.snapshot();
        assert!(snap.a_to_b[0].faults.partitioned);
        assert_eq!(snap.b_to_a[0].faults.as_bits(), 0);
    }

    #[test]
    fn bandwidth_cap_advances_clock() {
        let plan = FaultPlan {
            bytes_per_ms: 10,
            ..FaultPlan::perfect()
        };
        let (mut a, mut b, _trace) = sim_pair(cfg(), &plan);
        a.send(&[0u8; 100]).unwrap(); // 10 ms of transmission
        assert_eq!(a.clock_ms(), 10);
        b.recv().unwrap();
        assert_eq!(b.clock_ms(), 10 + cfg().latency_ms);
    }

    #[test]
    fn run_deadline_turns_starvation_into_typed_error() {
        let plan = FaultPlan {
            drop: 1.0,
            ..FaultPlan::perfect()
        };
        let config = SimConfig {
            run_deadline_ms: 100,
            ..cfg()
        };
        let (mut a, _b, _trace) = sim_pair(config, &plan);
        // Simulate a retry loop: every send is dropped, every wait times
        // out and advances the virtual clock; the run deadline must cut
        // it off with a typed error, never a hang.
        let mut outcome = None;
        for _ in 0..1_000 {
            if let Err(e) = a.send(b"retry") {
                outcome = Some(e);
                break;
            }
            // Future-frame rule can't fire (nothing queued), so emulate
            // the robust layer's virtual wait by advancing via deadline
            // against... nothing: both-blocked needs the peer, so just
            // bump the clock through sends under a bandwidth-less link
            // by pretending a timeout elapsed.
            a.clock = a.clock.saturating_add(50);
        }
        assert!(matches!(outcome, Some(NetError::TimedOut { .. })));
    }

    #[test]
    fn identical_seeds_produce_identical_traces_across_threads() {
        let run = |seed: u64| {
            let plan = FaultPlan::from_seed(seed);
            let (mut a, mut b, trace) = sim_pair(cfg(), &plan);
            let handle = std::thread::spawn(move || {
                // Party B: echo whatever arrives until the link closes.
                // Never exits early, so A's waits always resolve on
                // virtual evidence (both-blocked), never the backstop.
                loop {
                    match b.recv_deadline(200) {
                        Ok(Some(frame)) => {
                            let _ = b.send(&frame);
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                }
                b
            });
            let mut received = 0u32;
            let mut sent = 0u32;
            while received < 30 && sent < 400 {
                if a.send(&[sent as u8; 16]).is_err() {
                    break;
                }
                sent += 1;
                match a.recv_deadline(40) {
                    Ok(Some(_)) => received += 1,
                    Ok(None) => {}
                    Err(_) => break,
                }
            }
            // Close A first so B's loop terminates on `Closed`, never on
            // the wall-clock backstop (which would be nondeterministic).
            drop(a);
            let b_end = handle.join().unwrap();
            drop(b_end);
            trace.snapshot()
        };
        for seed in [1u64, 9, 23] {
            let t1 = run(seed);
            let t2 = run(seed);
            assert_eq!(t1, t2, "trace diverged for seed {seed}");
            assert_eq!(t1.digest(), t2.digest());
        }
    }
}
