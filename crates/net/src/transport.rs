//! The byte-frame transport interface.

use crate::error::NetError;

/// A reliable, ordered, message-oriented duplex link between the two
/// parties. Frames are opaque byte strings; serialization of protocol
//  messages happens one layer up (in the `minshare` protocol crate).
pub trait Transport {
    /// Sends one frame.
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError>;

    /// Receives the next frame, blocking until one arrives.
    fn recv(&mut self) -> Result<Vec<u8>, NetError>;
}

/// Blanket impl so `&mut T` works where `T: Transport` is expected.
impl<T: Transport + ?Sized> Transport for &mut T {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        (**self).send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        (**self).recv()
    }
}
