//! The byte-frame transport interface.

use crate::error::NetError;
use crate::framebatch::FrameBatch;

/// A reliable, ordered, message-oriented duplex link between the two
/// parties. Frames are opaque byte strings; serialization of protocol
//  messages happens one layer up (in the `minshare` protocol crate).
///
/// `send`/`send_batch` are registered as wire sinks in the analyzer's
/// taint registry (`WIRE_SINK_FNS`): WIRE01 statically proves that no
/// raw set value, hash-only value, or key material flows into them —
/// nothing but hash-then-encrypt output reaches the wire. New
/// transmitting methods on this trait must be added to that registry.
pub trait Transport {
    /// Sends one frame.
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError>;

    /// Sends every frame of `batch`, in order. Wire-equivalent to
    /// calling [`Transport::send`] once per frame (the default does
    /// exactly that); transports with a cheaper bulk path — shared-buffer
    /// hand-off, reused encode scratch — override it.
    fn send_batch(&mut self, batch: FrameBatch) -> Result<(), NetError> {
        for frame in batch.frames() {
            self.send(frame)?;
        }
        Ok(())
    }

    /// Receives the next frame, blocking until one arrives.
    fn recv(&mut self) -> Result<Vec<u8>, NetError>;
}

/// Blanket impl so `&mut T` works where `T: Transport` is expected.
impl<T: Transport + ?Sized> Transport for &mut T {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        (**self).send(frame)
    }

    fn send_batch(&mut self, batch: FrameBatch) -> Result<(), NetError> {
        (**self).send_batch(batch)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        (**self).recv()
    }
}

/// A transport whose receive side can give up after a deadline.
///
/// The retry layer ([`crate::robust`]) needs bounded waits to decide when
/// to retransmit. Over the simulated network the deadline is measured on
/// the *virtual* clock (so runs are deterministic and instant); over real
/// transports it is wall-clock time.
pub trait DeadlineTransport: Transport {
    /// Waits up to `timeout_ms` for the next frame. Returns `Ok(None)` if
    /// the deadline elapsed with no frame; transport failures (peer gone,
    /// link closed) are errors as in [`Transport::recv`].
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError>;
}

impl<T: DeadlineTransport + ?Sized> DeadlineTransport for &mut T {
    fn recv_deadline(&mut self, timeout_ms: u64) -> Result<Option<Vec<u8>>, NetError> {
        (**self).recv_deadline(timeout_ms)
    }
}
