//! Regenerates every table and figure of *"Information Sharing Across
//! Private Databases"* (SIGMOD 2003) — experiments E2–E17 of DESIGN.md.
//!
//! Usage:
//!
//! ```text
//! paper_tables            # run everything
//! paper_tables e4 e8 e11  # run selected experiments
//! ```
//!
//! Analytic experiments print the paper's reported value next to the
//! model's output; live experiments run the actual protocols (at
//! laptop-feasible sizes) and compare against formulas and clear-text
//! oracles.

use minshare::apps::medical;
use minshare::prelude::*;
use minshare::{leakage, naive};
use minshare_bench::{bench_group, describe_rate, measure_ce, measure_cr, overlapping_sets};
use minshare_circuits::garble;
use minshare_circuits::intersection_circuit;
use minshare_circuits::partition;
use minshare_costmodel::report::{duration, sci, TextTable};
use minshare_costmodel::{appendix_a, apps as costapps, section6, CostConstants};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
        "e16", "e17",
    ];
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        all.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in &selected {
        match *id {
            "e2" => e2_medical(),
            "e3" => e3_naive_attack(),
            "e4" => e4_computation_formulas(),
            "e5" => e5_communication_formulas(),
            "e6" => e6_document_sharing(),
            "e7" => e7_medical_estimate(),
            "e8" => e8_partition_table(),
            "e9" => e9_computation_comparison(),
            "e10" => e10_communication_comparison(),
            "e11" => e11_ce_calibration(),
            "e12" => e12_protocol_scaling(),
            "e13" => e13_join_size_leakage(),
            "e14" => e14_garbled_baseline(),
            "e15" => e15_tradeoff(),
            "e16" => e16_intersection_sum(),
            "e17" => e17_multiparty(),
            other => eprintln!("unknown experiment id: {other}"),
        }
    }
}

fn banner(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

/// E2 — Figure 2: the medical-research algorithm, run end to end on
/// synthetic data and checked against the clear-text SQL oracle.
fn e2_medical() {
    banner(
        "E2",
        "Figure 2 — medical research via four intersection sizes",
    );
    let mut rng = StdRng::seed_from_u64(0xe2);
    let group = bench_group(64);
    let (tr, ts) = medical::synthetic_study(&mut rng, 120, 0.35, 0.6, 0.75, 0.15).expect("synthetic study");
    let (private, cost) = medical::run_medical_study(&group, &tr, &ts, 7).expect("study");
    let clear = medical::medical_counts_in_clear(&tr, &ts).expect("oracle");

    let mut t = TextTable::new(&["pattern", "reaction", "private count", "clear count"]);
    for p in [true, false] {
        for r in [true, false] {
            t.row(&[
                p.to_string(),
                r.to_string(),
                private.counts[p as usize][r as usize].to_string(),
                clear.counts[p as usize][r as usize].to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "agreement: {}; total Ce ops: {}; wire: {} bits",
        if private == clear {
            "EXACT"
        } else {
            "MISMATCH"
        },
        cost.ops.total_ce(),
        cost.total_bits
    );
}

/// E3 — §3.1: the broken hash protocol and the dictionary attack.
fn e3_naive_attack() {
    banner(
        "E3",
        "§3.1 — naive hash protocol broken by dictionary attack",
    );
    // V_S drawn from a small domain (two-digit codes).
    let vs: Vec<Vec<u8>> = [13u8, 42, 77, 91].iter().map(|b| vec![*b]).collect();
    let vr: Vec<Vec<u8>> = vec![vec![42u8]];
    let (intersection, transcript) = naive::naive_intersection(&vs, &vr);
    let domain: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
    let recovered = naive::dictionary_attack(&transcript, domain.iter().map(|d| d.as_slice()));
    println!(
        "intersection computed by protocol : {} values",
        intersection.len()
    );
    println!("sender set size                   : {} values", vs.len());
    println!(
        "values recovered by curious R     : {} values ({}% of V_S)",
        recovered.len(),
        100 * recovered.len() / vs.len()
    );
    println!("→ the naive protocol leaks the entire sender set over a small domain;");
    println!("  the fixed protocol of §3.3 provably reveals only the intersection.");
}

/// E4 — §6.1 computation formulas vs. operations counted in real runs.
fn e4_computation_formulas() {
    banner(
        "E4",
        "§6.1 computation formulas vs counted operations (live runs)",
    );
    let group = bench_group(64);
    let mut t = TextTable::new(&[
        "protocol",
        "|VS|",
        "|VR|",
        "formula Ce",
        "counted Ce",
        "formula Ch",
        "counted Ch",
    ]);
    for (vs_n, vr_n) in [(40usize, 25usize), (10, 60)] {
        let (vs, vr) = overlapping_sets(vs_n, vr_n, vs_n.min(vr_n) / 2);

        let run = run_two_party(
            |tr| {
                let mut rng = StdRng::seed_from_u64(1);
                intersection::run_sender(tr, &group, &vs, &mut rng)
            },
            |tr| {
                let mut rng = StdRng::seed_from_u64(2);
                intersection::run_receiver(tr, &group, &vr, &mut rng)
            },
        )
        .expect("intersection");
        let counted = run.sender.ops + run.receiver.ops;
        let proto = section6::Protocol::Intersection;
        t.row(&[
            proto.name().to_string(),
            vs_n.to_string(),
            vr_n.to_string(),
            proto.ce_ops(vs_n as u64, vr_n as u64).to_string(),
            counted.total_ce().to_string(),
            proto.hash_ops(vs_n as u64, vr_n as u64).to_string(),
            counted.hashes.to_string(),
        ]);

        let cipher = HybridCipher::new(group.clone(), 32);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = vs
            .iter()
            .map(|v| (v.clone(), b"payload".to_vec()))
            .collect();
        let run = run_two_party(
            |tr| {
                let mut rng = StdRng::seed_from_u64(3);
                equijoin::run_sender(tr, &group, &cipher, &entries, &mut rng)
            },
            |tr| {
                let cipher = HybridCipher::new(group.clone(), 32);
                let mut rng = StdRng::seed_from_u64(4);
                equijoin::run_receiver(tr, &group, &cipher, &vr, &mut rng)
            },
        )
        .expect("equijoin");
        let counted = run.sender.ops + run.receiver.ops;
        let proto = section6::Protocol::Equijoin;
        t.row(&[
            proto.name().to_string(),
            vs_n.to_string(),
            vr_n.to_string(),
            proto.ce_ops(vs_n as u64, vr_n as u64).to_string(),
            counted.total_ce().to_string(),
            proto.hash_ops(vs_n as u64, vr_n as u64).to_string(),
            counted.hashes.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(formula: intersection 2Ce(|VS|+|VR|); join 2Ce|VS|+5Ce|VR|)");
}

/// E5 — §6.1 communication formulas vs bytes counted on the wire.
fn e5_communication_formulas() {
    banner(
        "E5",
        "§6.1 communication formulas vs bytes on the wire (live runs)",
    );
    let group = bench_group(64);
    let consts = CostConstants {
        k_bits: group.codeword_bits(),
        ..CostConstants::paper()
    };
    let mut t = TextTable::new(&[
        "protocol",
        "|VS|",
        "|VR|",
        "formula bits",
        "measured bits",
        "overhead",
    ]);
    let (vs_n, vr_n) = (50usize, 30usize);
    let (vs, vr) = overlapping_sets(vs_n, vr_n, 10);

    let run = run_two_party(
        |tr| {
            let mut rng = StdRng::seed_from_u64(1);
            intersection::run_sender(tr, &group, &vs, &mut rng)
        },
        |tr| {
            let mut rng = StdRng::seed_from_u64(2);
            intersection::run_receiver(tr, &group, &vr, &mut rng)
        },
    )
    .expect("intersection");
    let formula =
        section6::Protocol::Intersection.communication_bits(vs_n as u64, vr_n as u64, &consts);
    let measured = run.total_bits();
    t.row(&[
        "intersection".to_string(),
        vs_n.to_string(),
        vr_n.to_string(),
        formula.to_string(),
        measured.to_string(),
        format!("{:+.2}%", (measured as f64 / formula as f64 - 1.0) * 100.0),
    ]);

    // Join with k' = hybrid ciphertext bits.
    let cipher = HybridCipher::new(group.clone(), 32);
    let k_prime = (cipher.ciphertext_len() * 8) as u64;
    let entries: Vec<(Vec<u8>, Vec<u8>)> =
        vs.iter().map(|v| (v.clone(), b"pay".to_vec())).collect();
    let run = run_two_party(
        |tr| {
            let mut rng = StdRng::seed_from_u64(3);
            equijoin::run_sender(tr, &group, &cipher, &entries, &mut rng)
        },
        |tr| {
            let cipher = HybridCipher::new(group.clone(), 32);
            let mut rng = StdRng::seed_from_u64(4);
            equijoin::run_receiver(tr, &group, &cipher, &vr, &mut rng)
        },
    )
    .expect("equijoin");
    let join_consts = CostConstants {
        k_prime_bits: k_prime,
        ..consts
    };
    let formula =
        section6::Protocol::Equijoin.communication_bits(vs_n as u64, vr_n as u64, &join_consts);
    let measured = run.total_bits();
    t.row(&[
        "equijoin".to_string(),
        vs_n.to_string(),
        vr_n.to_string(),
        formula.to_string(),
        measured.to_string(),
        format!("{:+.2}%", (measured as f64 / formula as f64 - 1.0) * 100.0),
    ]);
    print!("{}", t.render());
    println!("(overhead = framing headers: 5 bytes per message, 4 per payload)");
}

/// E6 — §6.2.1 document-sharing estimate with the paper's parameters.
fn e6_document_sharing() {
    banner("E6", "§6.2.1 selective document sharing — cost estimate");
    let paper = CostConstants::paper();
    let e = costapps::document_sharing(10, 100, 1000, 1000, &paper);
    println!("paper parameters: |DR|=10, |DS|=100, 1000 words/doc, k=1024, P=10, T1");
    let mut t = TextTable::new(&["quantity", "paper", "model"]);
    t.row(&[
        "computation".into(),
        "4e6 Ce ≈ 2 hours".into(),
        format!("{} Ce ≈ {}", sci(e.ce_ops), duration(e.compute_seconds)),
    ]);
    t.row(&[
        "communication".into(),
        "3 Gbits ≈ 35 minutes".into(),
        format!("{} bits ≈ {}", sci(e.bits), duration(e.transfer_seconds)),
    ]);
    print!("{}", t.render());

    // The same model with Ce measured on this machine.
    let ce = measure_ce(1024, 10);
    let modern = CostConstants::with_measured_ce(ce);
    let m = costapps::document_sharing(10, 100, 1000, 1000, &modern);
    println!(
        "re-based on this machine (Ce = {:.3} ms): computation ≈ {}",
        ce * 1e3,
        duration(m.compute_seconds)
    );
}

/// E7 — §6.2.2 medical-research estimate with the paper's parameters.
fn e7_medical_estimate() {
    banner("E7", "§6.2.2 medical research — cost estimate");
    let paper = CostConstants::paper();
    let e = costapps::medical_research(1_000_000, 1_000_000, &paper);
    println!("paper parameters: |VR| = |VS| = 1e6, k=1024, P=10, T1");
    let mut t = TextTable::new(&["quantity", "paper", "model"]);
    t.row(&[
        "computation".into(),
        "8e6 Ce ≈ 4 hours".into(),
        format!("{} Ce ≈ {}", sci(e.ce_ops), duration(e.compute_seconds)),
    ]);
    t.row(&[
        "communication".into(),
        "8 Gbits ≈ 1.5 hours".into(),
        format!("{} bits ≈ {}", sci(e.bits), duration(e.transfer_seconds)),
    ]);
    print!("{}", t.render());

    let ce = measure_ce(1024, 10);
    let modern = CostConstants::with_measured_ce(ce);
    let m = costapps::medical_research(1_000_000, 1_000_000, &modern);
    println!(
        "re-based on this machine (Ce = {:.3} ms): computation ≈ {}",
        ce * 1e3,
        duration(m.compute_seconds)
    );
}

/// E8 — Appendix A.1.2: partitioning-circuit gate counts.
fn e8_partition_table() {
    banner("E8", "A.1.2 — partitioning-circuit gate counts (w = 32)");
    let paper_rows = [
        (1e4, 11u32, 2.3e8, 6.3e9),
        (1e6, 19, 7.3e10, 6.3e13),
        (1e8, 32, 1.9e13, 6.3e17),
    ];
    let rows = partition::appendix_table(&[1e4, 1e6, 1e8]);
    let mut t = TextTable::new(&[
        "n",
        "paper m",
        "model m",
        "paper f(n)",
        "model f(n)",
        "paper brute",
        "model brute",
    ]);
    for (row, (n, pm, pf, pb)) in rows.iter().zip(paper_rows) {
        t.row(&[
            sci(n),
            pm.to_string(),
            row.m.to_string(),
            sci(pf),
            sci(row.gates),
            sci(pb),
            sci(row.brute_force_gates),
        ]);
    }
    print!("{}", t.render());
}

/// E9 — Appendix A.2: computation comparison.
fn e9_computation_comparison() {
    banner(
        "E9",
        "A.2 — computation comparison (circuit vs our protocol)",
    );
    let consts = CostConstants::paper();
    let ot = appendix_a::optimal_ot(&consts);
    println!(
        "OT constants: optimal l = {} → Cot = {:.3} Ce (paper: l = 8, 0.157 Ce)",
        ot.l, ot.compute_ce_units
    );
    let paper_rows = [
        (1e4, 5e4, 4.7e8, 4e4),
        (1e6, 5e6, 1.5e11, 4e6),
        (1e8, 5e8, 3.8e13, 4e8),
    ];
    let rows = appendix_a::comparison_table(&[1e4, 1e6, 1e8], &consts);
    let mut t = TextTable::new(&[
        "n",
        "paper input(Ce)",
        "model input(Ce)",
        "paper eval(Cr)",
        "model eval(Cr)",
        "paper ours(Ce)",
        "model ours(Ce)",
    ]);
    for (row, (n, p_in, p_ev, p_ours)) in rows.iter().zip(paper_rows) {
        t.row(&[
            sci(n),
            sci(p_in),
            sci(row.circuit_input_ce),
            sci(p_ev),
            sci(row.circuit_eval_cr),
            sci(p_ours),
            sci(row.ours_ce),
        ]);
    }
    print!("{}", t.render());
}

/// E10 — Appendix A.2: communication comparison.
fn e10_communication_comparison() {
    banner("E10", "A.2 — communication comparison (bits)");
    let consts = CostConstants::paper();
    let paper_rows = [
        (1e4, 1e9, 6.0e10, 3e7),
        (1e6, 1e11, 1.8e13, 3e9),
        (1e8, 1e13, 4.9e15, 3e11),
    ];
    let rows = appendix_a::comparison_table(&[1e4, 1e6, 1e8], &consts);
    let mut t = TextTable::new(&[
        "n",
        "paper OT bits",
        "model OT bits",
        "paper tables",
        "model tables",
        "paper ours",
        "model ours",
    ]);
    for (row, (n, p_ot, p_tab, p_ours)) in rows.iter().zip(paper_rows) {
        t.row(&[
            sci(n),
            sci(p_ot),
            sci(row.circuit_input_bits),
            sci(p_tab),
            sci(row.circuit_table_bits),
            sci(p_ours),
            sci(row.ours_bits),
        ]);
    }
    print!("{}", t.render());
    let h = appendix_a::headline(1e6, &consts);
    println!(
        "headline at n = 1e6 (paper: 144 days vs 0.5 hours on T1): model {:.0} days vs {:.2} hours",
        h.circuit_days, h.ours_hours
    );
}

/// E11 — `Ce` calibration: measured modexp cost across group sizes.
fn e11_ce_calibration() {
    banner(
        "E11",
        "Ce calibration — k-bit modular exponentiation on this machine",
    );
    println!("paper reference: 0.02 s at 1024 bits on a 2001 Pentium III (2e5/hour)");
    let mut t = TextTable::new(&["k (bits)", "measured Ce", "rate"]);
    for bits in [768u64, 1024, 1536, 2048] {
        let iters = if bits <= 1024 { 20 } else { 8 };
        let ce = measure_ce(bits, iters);
        t.row(&[
            bits.to_string(),
            format!("{:.3} ms", ce * 1e3),
            describe_rate(ce),
        ]);
    }
    print!("{}", t.render());
}

/// E12 — live protocol scaling: measured time & bytes vs model.
fn e12_protocol_scaling() {
    banner(
        "E12",
        "protocol scaling — measured vs model (1024-bit group)",
    );
    let group = bench_group(1024);
    let ce = measure_ce(1024, 10);
    let consts = CostConstants {
        parallelism: 1.0,
        ..CostConstants::with_measured_ce(ce)
    };
    let mut t = TextTable::new(&[
        "n per side",
        "protocol",
        "measured time",
        "model time",
        "measured bits",
        "model bits",
    ]);
    for n in [25usize, 50, 100] {
        let (vs, vr) = overlapping_sets(n, n, n / 2);
        let start = std::time::Instant::now();
        let run = run_two_party(
            |tr| {
                let mut rng = StdRng::seed_from_u64(1);
                intersection::run_sender(tr, &group, &vs, &mut rng)
            },
            |tr| {
                let mut rng = StdRng::seed_from_u64(2);
                intersection::run_receiver(tr, &group, &vr, &mut rng)
            },
        )
        .expect("run");
        let elapsed = start.elapsed().as_secs_f64();
        let est = section6::estimate(
            section6::Protocol::Intersection,
            n as u64,
            n as u64,
            &consts,
        );
        // Both parties run concurrently; the model's serialized op count
        // halves in wall-clock with two threads.
        t.row(&[
            n.to_string(),
            "intersection".to_string(),
            duration(elapsed),
            duration(est.compute_seconds / 2.0),
            run.total_bits().to_string(),
            est.bits.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(model time = formula Ce ops × measured Ce / 2 threads; excludes hashing/sorting)");
}

/// E13 — §5.2: the equijoin-size duplicate-class leak, protocol vs
/// clear-text characterization.
fn e13_join_size_leakage() {
    banner("E13", "§5.2 — equijoin-size leakage characterization");
    let group = bench_group(64);
    let vs: Vec<Vec<u8>> = ["a", "a", "b", "c", "c", "c", "d"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
    let vr: Vec<Vec<u8>> = ["a", "b", "b", "c", "e", "e"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            equijoin_size::run_sender(t, &group, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(2);
            equijoin_size::run_receiver(t, &group, &vr, &mut rng)
        },
    )
    .expect("join size");
    let expected = leakage::expected_class_intersections(&vr, &vs);
    println!("join size: {}", run.receiver.join_size);
    let mut t = TextTable::new(&[
        "(dup_R, dup_S)",
        "protocol-observed",
        "clear-text predicted",
    ]);
    for (key, predicted) in &expected {
        let observed = run
            .receiver
            .class_intersections
            .get(key)
            .copied()
            .unwrap_or(0);
        t.row(&[
            format!("({}, {})", key.0, key.1),
            observed.to_string(),
            predicted.to_string(),
        ]);
    }
    print!("{}", t.render());
    let exact = run.receiver.class_intersections == expected;
    println!(
        "leak matches §5.2 characterization exactly: {}",
        if exact { "YES" } else { "NO" }
    );
    println!(
        "identifiable fraction of matches: {:.2}",
        leakage::identifiable_match_fraction(&vr, &vs)
    );
}

/// E14 — Appendix A executable baseline: garbled brute-force
/// intersection at small n, with measured `Cr`.
fn e14_garbled_baseline() {
    banner(
        "E14",
        "Appendix A — executable garbled-circuit baseline (small n)",
    );
    let group = bench_group(64);
    let w = 16usize;
    let vs = [3u64, 77, 200, 1999];
    let vr = [77u64, 5, 1999];
    let circuit = intersection_circuit::brute_force_intersection_circuit(w, vs.len(), vr.len());
    println!(
        "circuit: w={w}, |VS|={}, |VR|={} → {} gates",
        vs.len(),
        vr.len(),
        circuit.gate_count()
    );
    let garbler_bits: Vec<bool> = vs
        .iter()
        .flat_map(|&x| (0..w).map(move |i| (x >> i) & 1 == 1))
        .collect();
    let eval_bits: Vec<bool> = vr
        .iter()
        .flat_map(|&x| (0..w).map(move |i| (x >> i) & 1 == 1))
        .collect();
    let mut rng = StdRng::seed_from_u64(14);
    let start = std::time::Instant::now();
    let (outputs, ots) =
        garble::two_party_evaluate(&group, &circuit, &garbler_bits, &eval_bits, &mut rng)
            .expect("garbled evaluation");
    let elapsed = start.elapsed().as_secs_f64();
    println!("membership vector: {outputs:?} (expected [true, false, true])");
    println!("oblivious transfers: {} (= w·|VR| = {})", ots, w * vr.len());
    println!("total time: {}", duration(elapsed));
    let cr = measure_cr(20);
    println!(
        "measured Cr (per-gate garbled evaluation): {:.2} µs",
        cr * 1e6
    );
    let specialized_ce = 2 * (vs.len() + vr.len());
    println!(
        "specialized protocol would need just {specialized_ce} Ce for the same sets — \
         the gap the paper's Appendix A quantifies"
    );
}

/// E15 — the §7 efficiency/disclosure tradeoff, measured: exact
/// intersection vs. Bloom-prefiltered variants.
fn e15_tradeoff() {
    use minshare::tradeoff;
    banner("E15", "§7 tradeoff — disclosure vs efficiency (live runs)");
    let group = bench_group(64);
    let (vs, vr) = overlapping_sets(200, 20, 10);

    // Exact protocol baseline.
    let exact = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            intersection::run_sender(t, &group, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(2);
            intersection::run_receiver(t, &group, &vr, &mut rng)
        },
    )
    .expect("exact run");
    let exact_ce = exact.sender.ops.total_ce() + exact.receiver.ops.total_ce();

    let mut t = TextTable::new(&[
        "variant",
        "answer",
        "Ce ops",
        "wire bits",
        "extra disclosure",
    ]);
    t.row(&[
        "exact §3.3".into(),
        format!("{} values", exact.receiver.intersection.len()),
        exact_ce.to_string(),
        exact.total_bits().to_string(),
        "none".into(),
    ]);

    for fp in [0.1f64, 0.01, 0.001] {
        let hybrid = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                tradeoff::hybrid_intersection::run_sender(t, &group, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                tradeoff::hybrid_intersection::run_receiver(t, &group, &vr, fp, &mut rng)
            },
        )
        .expect("hybrid run");
        let ce = hybrid.sender.inner.ops.total_ce() + hybrid.receiver.ops.total_ce();
        t.row(&[
            format!("bloom hybrid fp={fp}"),
            format!("{} values (exact)", hybrid.receiver.intersection.len()),
            ce.to_string(),
            hybrid.total_bits().to_string(),
            format!("BF(V_R) probes; |C|={}", hybrid.sender.candidate_size),
        ]);
    }

    let approx = run_two_party(
        |t| tradeoff::approximate_size::run_sender(t, &vs),
        |t| tradeoff::approximate_size::run_receiver(t, &vr, 0.01),
    )
    .expect("approx run");
    t.row(&[
        "bloom approx size".into(),
        format!("≈{} (true 10)", approx.receiver.approximate_size),
        "0".into(),
        approx.total_bits().to_string(),
        format!(
            "BF(V_R), probe confidence {:.3}",
            approx.sender.disclosure.probe_confidence
        ),
    ]);
    print!("{}", t.render());
    println!("(answers the paper's §7 question: yes — the hybrid keeps the exact answer");
    println!(" at a fraction of the Ce cost, priced in a bounded, quantified leak)");
}

/// E16 — the §7 aggregation extension: private intersection-sum.
fn e16_intersection_sum() {
    use minshare_aggregate::intersection_sum;
    use minshare_aggregate::paillier::PrivateKey;
    banner(
        "E16",
        "§7 aggregation — private intersection-sum (live run)",
    );
    let group = bench_group(64);
    let mut keyrng = StdRng::seed_from_u64(0xe16);
    let key = PrivateKey::generate(&mut keyrng, 128).expect("paillier keygen");
    let entries: Vec<(Vec<u8>, u64)> = (0..50u32)
        .map(|i| (format!("user{i}").into_bytes(), (i as u64) * 10))
        .collect();
    let vr: Vec<Vec<u8>> = (25..60u32)
        .map(|i| format!("user{i}").into_bytes())
        .collect();
    let expect_count = 25u64; // users 25..50
    let expect_sum: u64 = (25..50u64).map(|i| i * 10).sum();

    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            intersection_sum::run_sender(t, &group, &key, &entries, &mut rng).map_err(|e| {
                minshare::ProtocolError::MalformedMessage {
                    detail: e.to_string(),
                }
            })
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(2);
            intersection_sum::run_receiver(t, &group, &vr, &mut rng).map_err(|e| {
                minshare::ProtocolError::MalformedMessage {
                    detail: e.to_string(),
                }
            })
        },
    )
    .expect("intersection-sum run");

    let mut t = TextTable::new(&["quantity", "expected", "protocol"]);
    t.row(&[
        "count".into(),
        expect_count.to_string(),
        run.receiver.intersection_count.to_string(),
    ]);
    t.row(&[
        "sum".into(),
        expect_sum.to_string(),
        run.receiver.sum.to_string(),
    ]);
    print!("{}", t.render());
    println!(
        "Ce ops: {} (same 2(|VS|+|VR|) shape as §5.1); Paillier ops: sender {}, receiver {}",
        run.sender.ops.total_ce() + run.receiver.ops.total_ce(),
        run.sender.paillier_ops,
        run.receiver.paillier_ops
    );
    println!("neither party learned which users matched or any individual weight");
}

/// E17 — N-party intersection size (extension): the two-party machinery
/// generalized to a ring of N parties.
fn e17_multiparty() {
    use minshare::multiparty::multiparty_intersection_size;
    banner(
        "E17",
        "N-party intersection size — ring generalization (live runs)",
    );
    let group = bench_group(64);
    let mut t = TextTable::new(&["parties", "|V| each", "intersection", "Ce ops", "wire bits"]);
    for n in [2usize, 3, 5, 8] {
        let mut sets = Vec::new();
        for i in 0..n {
            let mut values: Vec<Vec<u8>> = (0..10u32)
                .map(|j| format!("common-{j}").into_bytes())
                .collect();
            values.extend((0..5u32).map(|j| format!("own-{i}-{j}").into_bytes()));
            sets.push(values);
        }
        let run = multiparty_intersection_size(&group, &sets, n as u64).expect("multiparty run");
        t.row(&[
            n.to_string(),
            "15".to_string(),
            run.intersection_size.to_string(),
            run.ops.total_ce().to_string(),
            run.total_bits.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(cost grows as N·Σ|V_i| encryptions — each list takes one layer per party;");
    println!(" the common 10 values survive every ring, private values never match)");
}
