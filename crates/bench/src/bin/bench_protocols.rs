//! Emits `BENCH_protocols.json`: the committed throughput numbers for the
//! perf acceptance criteria — 512-bit fixed-exponent exponentiation
//! (fixed-4-bit reference vs. scalar sliding windows vs. the multi-lane
//! interleaved kernel), §6.2 `EncryptPool` scaling, and serial vs.
//! chunk-pipelined end-to-end wall time for all four protocols.
//!
//! All numbers are wall-clock medians on the current host; the host's
//! logical core count is recorded alongside so a single-core CI box's
//! flat pool-scaling curve reads as hardware, not regression.
//!
//! Usage:
//!   bench_protocols            # print a fresh JSON snapshot to stdout
//!   bench_protocols --check    # re-measure the e2e rows and fail (exit 1)
//!                              # if any optimized/serial ratio regressed
//!                              # >10% vs. the committed BENCH_protocols.json
//!   bench_protocols --profile  # run every protocol under the trace
//!                              # metrics sink and reconcile the measured
//!                              # Ce ops and wire bytes against §6.1;
//!                              # exit 1 unless all four reconcile.
//!                              # `--profile smoke` shrinks the group and
//!                              # set sizes for CI.

use std::sync::Arc;
use std::time::Instant;

use minshare::pipeline::{self, PipelineConfig};
use minshare::prelude::*;
use minshare_bench::{bench_group, overlapping_sets};
use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::random::random_below;
use minshare_bignum::UBig;
use minshare_costmodel::reconcile::{self, MeasuredRun, Reconciliation};
use minshare_costmodel::section6::Protocol;
use minshare_crypto::pool::EncryptPool;
use minshare_trace::metrics::{MetricsRegistry, RegistrySink};
use minshare_trace::sink::MetricsSink;
use minshare_trace::{TraceSink, Tracer};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Minimum pool speedup at 4 threads a multicore snapshot must commit;
/// `--check` fails if a committed multicore BENCH_protocols.json falls
/// below it (single-core snapshots are exempt — there is nothing to scale).
const POOL_SCALING_FLOOR: f64 = 1.5;

/// Minimum SIMD-vs-scalar-`pow_multi` speedup at 512-bit when the IFMA
/// backend is active on both the committed snapshot and the current host.
const SIMD_SPEEDUP_FLOOR: f64 = 1.2;

/// On a multicore host the sharded intersection engine (buckets streamed
/// through the spill sorter, encryption on the pool) must stay within
/// this factor of the serial engine's wall clock at bench scale — the
/// bounded-memory machinery buys O(bucket) memory, not unbounded
/// slowdown. Single-core hosts run the pool inline with spill I/O on
/// top and are exempt (the ratio ratchet still applies there).
const SHARDED_OVERHEAD_CEILING: f64 = 1.5;

/// Live telemetry must be close to free: a serial intersection run with
/// the daemon's metrics registry attached (every protocol/leakage/pool
/// event bucketed into counters and histograms) may cost at most 5% of
/// wall clock over the identical untraced run. `--check` re-measures
/// this ratio and fails above the ceiling, so a chatty emit site or a
/// histogram hot-path regression shows up as a perf failure, not just a
/// vague slowdown.
const TELEMETRY_OVERHEAD_CEILING: f64 = 1.05;

/// Peak resident set of this process in KiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux. Monotone over the process
/// lifetime, so per-row readings record the high-water mark *after*
/// that row ran.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Median wall time of `samples` runs of `f`, in seconds.
fn median_secs<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn odd_modulus(bits: usize, seed: u64) -> UBig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bytes = vec![0u8; bits / 8];
    rng.fill_bytes(&mut bytes);
    bytes[0] |= 0x80;
    let last = bytes.len() - 1;
    bytes[last] |= 1;
    UBig::from_be_bytes(&bytes)
}

/// Extracts the number following `"key":` from hand-rolled JSON. Good
/// enough for the flat keys this binary itself emits; no serde in the
/// workspace.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"speedup_vs_1"` from the pool-scaling row with the given
/// thread count in the hand-rolled snapshot JSON.
fn pool_speedup_at(text: &str, threads: usize) -> Option<f64> {
    let needle = format!("\"threads\": {threads}");
    let at = text.find(&needle)?;
    json_number(&text[at..], "speedup_vs_1")
}

/// The four end-to-end rows: wall-clock medians for every protocol, with
/// pipelined variants where the engines have them.
struct E2e {
    inter_serial_s: f64,
    inter_pipelined_s: f64,
    inter_sharded_s: f64,
    join_serial_s: f64,
    join_pipelined_s: f64,
    inter_size_serial_s: f64,
    join_size_serial_s: f64,
    /// `VmHWM` after each row, in measurement order (monotone).
    peak_rss_kb: Vec<(&'static str, u64)>,
}

fn measure_e2e(samples: usize) -> E2e {
    let g = bench_group(256);
    let set_n = 48usize;
    let (vs, vr) = overlapping_sets(set_n, set_n, set_n / 2);
    let pool = EncryptPool::new(4);
    // The adaptive config the protocol apps would pick on this host: on a
    // worker-less (single-core) pool it degenerates to the serial path.
    let cfg = PipelineConfig::calibrated(&g, &pool);
    let mut peak_rss_kb: Vec<(&'static str, u64)> = Vec::new();
    let rss_row = |rows: &mut Vec<(&'static str, u64)>, label: &'static str| {
        if let Some(kb) = vm_hwm_kb() {
            rows.push((label, kb));
        }
    };

    let inter_serial_s = median_secs(samples, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                intersection::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                intersection::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .expect("serial intersection");
    });
    rss_row(&mut peak_rss_kb, "intersection_serial");
    let inter_pipelined_s = median_secs(samples, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                pipeline::run_intersection_sender(t, &g, &vs, &mut rng, &pool, cfg)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                pipeline::run_intersection_receiver(t, &g, &vr, &mut rng, &pool, cfg)
            },
        )
        .expect("pipelined intersection");
    });
    rss_row(&mut peak_rss_kb, "intersection_pipelined");

    // The sharded bounded-memory engine: 4 buckets and a deliberately
    // tiny spill budget, so the external sorter genuinely hits disk and
    // the row prices the full spill-merge-stream path, not a cached
    // in-memory sort.
    let shard_cfg = ShardConfig {
        shards: 4,
        mem_budget: 1 << 10,
        ..ShardConfig::default()
    };
    let inter_sharded_s = median_secs(samples, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                shard::run_intersection_sender(t, &g, &vs, &mut rng, &pool, cfg, &shard_cfg)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                shard::run_intersection_receiver(t, &g, &vr, &mut rng, &pool, cfg, &shard_cfg)
            },
        )
        .expect("sharded intersection");
    });
    rss_row(&mut peak_rss_kb, "intersection_sharded4");

    let entries: Vec<(Vec<u8>, Vec<u8>)> = vs
        .iter()
        .map(|v| (v.clone(), b"record-payload".to_vec()))
        .collect();
    let cipher = HybridCipher::new(g.clone(), 32);
    let join_serial_s = median_secs(samples, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                equijoin::run_sender(t, &g, &cipher, &entries, &mut rng)
            },
            |t| {
                let cipher = HybridCipher::new(g.clone(), 32);
                let mut rng = StdRng::seed_from_u64(2);
                equijoin::run_receiver(t, &g, &cipher, &vr, &mut rng)
            },
        )
        .expect("serial equijoin");
    });
    rss_row(&mut peak_rss_kb, "equijoin_serial");
    let join_pipelined_s = median_secs(samples, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                pipeline::run_equijoin_sender(t, &g, &cipher, &entries, &mut rng, &pool, cfg)
            },
            |t| {
                let cipher = HybridCipher::new(g.clone(), 32);
                let mut rng = StdRng::seed_from_u64(2);
                pipeline::run_equijoin_receiver(t, &g, &cipher, &vr, &mut rng, &pool, cfg)
            },
        )
        .expect("pipelined equijoin");
    });
    rss_row(&mut peak_rss_kb, "equijoin_pipelined");

    let inter_size_serial_s = median_secs(samples, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                intersection_size::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                intersection_size::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .expect("intersection_size");
    });
    rss_row(&mut peak_rss_kb, "intersection_size_serial");
    let join_size_serial_s = median_secs(samples, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                equijoin_size::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                equijoin_size::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .expect("equijoin_size");
    });
    rss_row(&mut peak_rss_kb, "equijoin_size_serial");

    E2e {
        inter_serial_s,
        inter_pipelined_s,
        inter_sharded_s,
        join_serial_s,
        join_pipelined_s,
        inter_size_serial_s,
        join_size_serial_s,
        peak_rss_kb,
    }
}

/// Wall-clock medians for the same serial intersection run untraced
/// (`plain_s`) and with the daemon's metrics registry installed on both
/// parties (`traced_s`) — the exact sink `minshare serve` attaches, with
/// the protocol throughput histogram registered so bucketing is priced
/// in. Their ratio is the telemetry overhead the `--check` ceiling
/// guards.
struct TelemetryOverhead {
    plain_s: f64,
    traced_s: f64,
}

fn measure_telemetry_overhead(samples: usize) -> TelemetryOverhead {
    let g = bench_group(256);
    let set_n = 48usize;
    let (vs, vr) = overlapping_sets(set_n, set_n, set_n / 2);
    let run = |registry: Option<&Arc<MetricsRegistry>>| {
        median_secs(samples, || {
            run_two_party(
                |t| {
                    let _trace = registry.map(|m| {
                        minshare_trace::install(Tracer::to_sink(Arc::new(RegistrySink::new(
                            Arc::clone(m),
                        ))))
                    });
                    let mut rng = StdRng::seed_from_u64(1);
                    intersection::run_sender(t, &g, &vs, &mut rng).map(|_| ())
                },
                |t| {
                    let _trace = registry.map(|m| {
                        minshare_trace::install(Tracer::to_sink(Arc::new(RegistrySink::new(
                            Arc::clone(m),
                        ))))
                    });
                    let mut rng = StdRng::seed_from_u64(2);
                    intersection::run_receiver(t, &g, &vr, &mut rng).map(|_| ())
                },
            )
            .expect("telemetry overhead run");
        })
    };
    let plain_s = run(None);
    let registry = Arc::new(MetricsRegistry::new());
    registry.register_histogram("protocol", "intersection", "ce_per_sec");
    let traced_s = run(Some(&registry));
    TelemetryOverhead { plain_s, traced_s }
}

/// `--check`: re-measure the e2e rows and compare each optimized/serial
/// ratio against the committed snapshot with 10% tolerance. Ratios (not
/// absolute wall times) are compared so the check is stable across hosts
/// and background load.
fn run_check(snapshot_path: &str) -> i32 {
    let committed = match std::fs::read_to_string(snapshot_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("bench --check: cannot read {snapshot_path}: {err}");
            return 1;
        }
    };
    let e2e = measure_e2e(5);
    let rows = [
        (
            "intersection_pipelined_vs_serial",
            e2e.inter_pipelined_s / e2e.inter_serial_s,
        ),
        (
            "equijoin_pipelined_vs_serial",
            e2e.join_pipelined_s / e2e.join_serial_s,
        ),
        (
            "intersection_sharded_vs_serial",
            e2e.inter_sharded_s / e2e.inter_serial_s,
        ),
    ];
    let mut failed = false;
    for (key, fresh) in rows {
        let Some(baseline) = json_number(&committed, key) else {
            eprintln!("bench --check: {snapshot_path} has no \"{key}\" row");
            failed = true;
            continue;
        };
        let limit = baseline * 1.10;
        // A ratio at or below 1.0 means the optimized engine still beats
        // (or matches) serial outright — never a regression, whatever the
        // committed number was.
        if fresh > limit && fresh > 1.0 {
            eprintln!(
                "bench --check: {key} regressed: fresh {fresh:.3} > committed {baseline:.3} +10%"
            );
            failed = true;
        } else {
            eprintln!("bench --check: {key} ok: fresh {fresh:.3} vs committed {baseline:.3}");
        }
    }

    // On a multicore host the pipelined engines must genuinely beat
    // serial (speedup = serial/pipelined > 1); a single-core host runs
    // the serial-fallback path, where only the ratio ratchet above
    // applies.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if host_cores > 1 {
        for (key, serial_s, pipelined_s) in [
            ("intersection", e2e.inter_serial_s, e2e.inter_pipelined_s),
            ("equijoin", e2e.join_serial_s, e2e.join_pipelined_s),
        ] {
            let speedup = serial_s / pipelined_s;
            // 3% tolerance absorbs wall-clock noise at the break-even point.
            if speedup < 0.97 {
                eprintln!(
                    "bench --check: {key} pipelined speedup {speedup:.3} < 1.0 on a \
                     {host_cores}-core host"
                );
                failed = true;
            } else {
                eprintln!(
                    "bench --check: {key} pipelined speedup {speedup:.3} on {host_cores} cores ok"
                );
            }
        }

        // Sharded engines re-run the whole protocol per bucket, so some
        // overhead over the single-instance serial engine is expected —
        // but on a multicore host the per-bucket parallelism must keep
        // it bounded. A 4-shard run slower than 1.5× serial means the
        // sharding layer is burning the win it exists to provide.
        let sharded_ratio = e2e.inter_sharded_s / e2e.inter_serial_s;
        if sharded_ratio > SHARDED_OVERHEAD_CEILING {
            eprintln!(
                "bench --check: sharded intersection ratio {sharded_ratio:.3} > ceiling \
                 {SHARDED_OVERHEAD_CEILING:.2} on a {host_cores}-core host"
            );
            failed = true;
        } else {
            eprintln!(
                "bench --check: sharded intersection ratio {sharded_ratio:.3} on \
                 {host_cores} cores ok"
            );
        }
    }

    // Pool-scaling floor: a committed snapshot taken on a multicore host
    // must show the pool actually scaling; a single-core snapshot has
    // nothing to scale and is exempt (the documented fallback).
    let committed_cores = json_number(&committed, "host_cores").unwrap_or(1.0);
    if committed_cores > 1.0 {
        match pool_speedup_at(&committed, 4) {
            Some(speedup) if speedup >= POOL_SCALING_FLOOR => {
                eprintln!(
                    "bench --check: committed pool scaling at 4 threads {speedup:.3} >= \
                     floor {POOL_SCALING_FLOOR}"
                );
            }
            Some(speedup) => {
                eprintln!(
                    "bench --check: committed pool scaling at 4 threads {speedup:.3} is \
                     below the {POOL_SCALING_FLOOR} floor (snapshot host_cores={committed_cores})"
                );
                failed = true;
            }
            None => {
                eprintln!("bench --check: {snapshot_path} has no 4-thread pool-scaling row");
                failed = true;
            }
        }
    } else {
        eprintln!(
            "bench --check: committed snapshot is single-core (host_cores={committed_cores}); \
             pool-scaling floor not applicable"
        );
    }

    // SIMD kernel ratchet: when the committed snapshot was produced with
    // the IFMA backend active and this build/host can run it too, the
    // kernel must still clear its speedup floor over the forced-scalar
    // path. A build without the feature (or a host without AVX-512 IFMA)
    // runs the scalar fallback and is exempt.
    if committed.contains("\"simd_active\": true") {
        let n = odd_modulus(512, 0x5d);
        let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
        if ctx.simd_active() {
            let mut rng = StdRng::seed_from_u64(3);
            let exp = random_below(&mut rng, &n);
            let bases: Vec<UBig> = (0..32).map(|_| random_below(&mut rng, &n)).collect();
            let scalar_s = median_secs(9, || {
                std::hint::black_box(ctx.pow_batch_scalar(&bases, &exp));
            });
            let simd_s = median_secs(9, || {
                std::hint::black_box(ctx.pow_multi_ctx(&bases, &exp));
            });
            let speedup = scalar_s / simd_s;
            if speedup < SIMD_SPEEDUP_FLOOR {
                eprintln!(
                    "bench --check: SIMD kernel speedup {speedup:.3} fell below the \
                     {SIMD_SPEEDUP_FLOOR} floor vs scalar pow_multi"
                );
                failed = true;
            } else {
                eprintln!(
                    "bench --check: SIMD kernel speedup {speedup:.3} >= floor {SIMD_SPEEDUP_FLOOR}"
                );
            }
        } else {
            eprintln!(
                "bench --check: committed snapshot used SIMD but this build/host runs the \
                 scalar fallback; kernel floor not applicable"
            );
        }
    }

    // Telemetry ceiling: the daemon's metrics registry rides along on
    // every protocol run, so its cost is re-measured live (not read from
    // the snapshot) and held to the hard ceiling. A ratio at or below
    // 1.0 is measurement noise in the registry's favor and always passes.
    let overhead = measure_telemetry_overhead(9);
    let ratio = overhead.traced_s / overhead.plain_s;
    if ratio > TELEMETRY_OVERHEAD_CEILING {
        eprintln!(
            "bench --check: telemetry overhead {ratio:.3} > ceiling \
             {TELEMETRY_OVERHEAD_CEILING:.2} (plain {:.1}us, traced {:.1}us)",
            overhead.plain_s * 1e6,
            overhead.traced_s * 1e6
        );
        failed = true;
    } else {
        eprintln!(
            "bench --check: telemetry overhead {ratio:.3} within ceiling \
             {TELEMETRY_OVERHEAD_CEILING:.2}"
        );
    }

    if failed {
        1
    } else {
        eprintln!("bench --check: all rows within tolerance of {snapshot_path}");
        0
    }
}

/// One protocol run under the aggregating metrics sink: both parties
/// share a [`MetricsSink`], and the reconciliation pulls everything from
/// the recorded events — `Ce` from the engines' `*_done` events, bytes
/// and frames from the counting transport's `frame_sent` events, set
/// sizes from the events' `own_values` fields.
fn profile_protocol(
    protocol: Protocol,
    sink: &MetricsSink,
    k_bits: u64,
    k_prime_bits: u64,
) -> Reconciliation {
    let scope = reconcile::protocol_slug(protocol);
    let ce = |name: &str| sink.sum(scope, name, "encryptions") + sink.sum(scope, name, "decryptions");
    let run = MeasuredRun {
        protocol,
        vs: sink.sum(scope, "sender_done", "own_values"),
        vr: sink.sum(scope, "receiver_done", "own_values"),
        k_bits,
        k_prime_bits,
        measured_ce: ce("sender_done") + ce("receiver_done"),
        measured_bytes: sink.sum("net", "frame_sent", "bytes"),
        frames: sink.sum("net", "frame_sent", "frames"),
    };
    reconcile::reconcile(run)
}

/// `--profile [smoke]`: serial runs of all four protocols with tracing
/// on, reconciled against the §6.1 formulas. Prints a JSON report and
/// exits nonzero unless every protocol's measured `Ce` count matches the
/// formula exactly and its wire bytes sit within the framing envelope.
fn run_profile(smoke: bool) -> i32 {
    let (group_bits, set_n) = if smoke { (256u64, 32usize) } else { (512, 48) };
    let g = bench_group(group_bits);
    let (vs, vr) = overlapping_sets(set_n, set_n, set_n / 2);
    let k_bits = 8 * g.codeword_bytes() as u64;
    let record = b"record-payload".to_vec();
    let cipher = HybridCipher::new(g.clone(), record.len());
    // One payload-table entry costs its codeword (in the k term) plus a
    // 4-byte length prefix and the fixed-width ciphertext: that is §6.1's
    // k' as this wire format realizes it.
    let k_prime_bits = 8 * (4 + cipher.ciphertext_len()) as u64;

    let mut reconciliations: Vec<Reconciliation> = Vec::new();
    for protocol in Protocol::all() {
        let sink = Arc::new(MetricsSink::new());
        let traced = |sink: &Arc<MetricsSink>| {
            Tracer::to_sink(Arc::clone(sink) as Arc<dyn TraceSink>)
        };
        let (s_sink, r_sink) = (Arc::clone(&sink), Arc::clone(&sink));
        let run = match protocol {
            Protocol::Intersection => run_two_party(
                |t| {
                    let _trace = minshare_trace::install(traced(&s_sink));
                    let mut rng = StdRng::seed_from_u64(1);
                    intersection::run_sender(t, &g, &vs, &mut rng).map(|_| ())
                },
                |t| {
                    let _trace = minshare_trace::install(traced(&r_sink));
                    let mut rng = StdRng::seed_from_u64(2);
                    intersection::run_receiver(t, &g, &vr, &mut rng).map(|_| ())
                },
            ),
            Protocol::Equijoin => {
                let entries: Vec<(Vec<u8>, Vec<u8>)> =
                    vs.iter().map(|v| (v.clone(), record.clone())).collect();
                run_two_party(
                    |t| {
                        let _trace = minshare_trace::install(traced(&s_sink));
                        let mut rng = StdRng::seed_from_u64(1);
                        equijoin::run_sender(t, &g, &cipher, &entries, &mut rng).map(|_| ())
                    },
                    |t| {
                        let _trace = minshare_trace::install(traced(&r_sink));
                        let cipher = HybridCipher::new(g.clone(), record.len());
                        let mut rng = StdRng::seed_from_u64(2);
                        equijoin::run_receiver(t, &g, &cipher, &vr, &mut rng).map(|_| ())
                    },
                )
            }
            Protocol::IntersectionSize => run_two_party(
                |t| {
                    let _trace = minshare_trace::install(traced(&s_sink));
                    let mut rng = StdRng::seed_from_u64(1);
                    intersection_size::run_sender(t, &g, &vs, &mut rng).map(|_| ())
                },
                |t| {
                    let _trace = minshare_trace::install(traced(&r_sink));
                    let mut rng = StdRng::seed_from_u64(2);
                    intersection_size::run_receiver(t, &g, &vr, &mut rng).map(|_| ())
                },
            ),
            Protocol::EquijoinSize => run_two_party(
                |t| {
                    let _trace = minshare_trace::install(traced(&s_sink));
                    let mut rng = StdRng::seed_from_u64(1);
                    equijoin_size::run_sender(t, &g, &vs, &mut rng).map(|_| ())
                },
                |t| {
                    let _trace = minshare_trace::install(traced(&r_sink));
                    let mut rng = StdRng::seed_from_u64(2);
                    equijoin_size::run_receiver(t, &g, &vr, &mut rng).map(|_| ())
                },
            ),
        };
        run.expect("profiled protocol run");
        reconciliations.push(profile_protocol(
            protocol,
            &sink,
            k_bits,
            if protocol == Protocol::Equijoin {
                k_prime_bits
            } else {
                0
            },
        ));
    }

    println!("{{");
    println!(
        "  \"profile\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    println!("  \"group_bits\": {group_bits},");
    println!("  \"set_n\": {set_n},");
    println!("  \"reconciliations\": [");
    for (i, r) in reconciliations.iter().enumerate() {
        let comma = if i + 1 == reconciliations.len() { "" } else { "," };
        println!("    {}{comma}", r.to_json());
    }
    println!("  ]");
    println!("}}");

    let failed: Vec<&Reconciliation> = reconciliations.iter().filter(|r| !r.ok()).collect();
    for r in &failed {
        eprintln!(
            "bench --profile: {} failed reconciliation: ce {}/{} bytes {}/{}+{}",
            reconcile::protocol_slug(r.run.protocol),
            r.run.measured_ce,
            r.predicted_ce,
            r.run.measured_bytes,
            r.predicted_bytes,
            reconcile::ENVELOPE_BYTES_PER_FRAME * r.run.frames,
        );
    }
    if failed.is_empty() {
        eprintln!("bench --profile: all four protocols reconcile with the section 6.1 model");
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--profile") {
        let smoke = args.get(1).map(String::as_str) == Some("smoke");
        std::process::exit(run_profile(smoke));
    }
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_protocols.json");
        std::process::exit(run_check(path));
    }

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- 512-bit fixed-exponent batch exponentiation -------------------
    let n = odd_modulus(512, 0x5d);
    let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
    let mut rng = StdRng::seed_from_u64(3);
    let exp = random_below(&mut rng, &n);
    let bases: Vec<UBig> = (0..32).map(|_| random_below(&mut rng, &n)).collect();
    let batch = bases.len();
    let fixed4_s = median_secs(15, || {
        for b in &bases {
            std::hint::black_box(ctx.pow_fixed4_reference(b, &exp));
        }
    });
    let sliding_s = median_secs(15, || {
        std::hint::black_box(ctx.pow_batch(&bases, &exp));
    });
    let multi_s = median_secs(15, || {
        std::hint::black_box(ctx.pow_multi_ctx(&bases, &exp));
    });
    // Forced-scalar interleaved kernel: the honest baseline for the SIMD
    // speedup claim (identical ladder, no IFMA dispatch).
    let scalar_multi_s = median_secs(15, || {
        std::hint::black_box(ctx.pow_batch_scalar(&bases, &exp));
    });
    let simd_active = ctx.simd_active();
    let sliding_speedup = fixed4_s / sliding_s;
    let multi_speedup = sliding_s / multi_s;
    let simd_speedup = scalar_multi_s / multi_s;

    // --- EncryptPool scaling (§6.2) ------------------------------------
    let g = bench_group(256);
    let mut rng = StdRng::seed_from_u64(7);
    let key = g.gen_key(&mut rng);
    let items: Vec<UBig> = (0..64).map(|_| g.sample_element(&mut rng)).collect();
    let pool_runs: Vec<(usize, f64)> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let pool = EncryptPool::new(threads);
            let t = median_secs(9, || {
                std::hint::black_box(pool.encrypt_batch(&g, &key, &items));
            });
            (threads, t)
        })
        .collect();

    // --- end-to-end serial vs. pipelined, all four protocols -----------
    let e2e = measure_e2e(7);

    // --- live-telemetry overhead (registry attached vs. untraced) ------
    let overhead = measure_telemetry_overhead(9);

    // --- hand-rolled JSON (no serde in the workspace) ------------------
    let us = |s: f64| s * 1e6;
    println!("{{");
    println!("  \"host_cores\": {host_cores},");
    println!("  \"modexp_512_fixed_exponent\": {{");
    println!("    \"batch_size\": {batch},");
    println!("    \"fixed4_reference_us\": {:.1},", us(fixed4_s));
    println!("    \"sliding_window_us\": {:.1},", us(sliding_s));
    println!("    \"pow_multi_us\": {:.1},", us(multi_s));
    println!("    \"scalar_multi_us\": {:.1},", us(scalar_multi_s));
    println!("    \"simd_active\": {simd_active},");
    println!("    \"sliding_speedup_vs_fixed4\": {sliding_speedup:.3},");
    println!("    \"pow_multi_speedup_vs_sliding\": {multi_speedup:.3},");
    println!("    \"simd_speedup_vs_scalar_multi\": {simd_speedup:.3}");
    println!("  }},");
    println!("  \"pool_scaling_encrypt64_qr256\": [");
    let base_t = pool_runs[0].1;
    for (i, (threads, t)) in pool_runs.iter().enumerate() {
        let comma = if i + 1 == pool_runs.len() { "" } else { "," };
        println!(
            "    {{ \"threads\": {threads}, \"wall_us\": {:.1}, \"speedup_vs_1\": {:.3} }}{comma}",
            us(*t),
            base_t / t
        );
    }
    println!("  ],");
    println!("  \"e2e_qr256_n48\": {{");
    println!("    \"intersection_serial_us\": {:.1},", us(e2e.inter_serial_s));
    println!(
        "    \"intersection_pipelined_us\": {:.1},",
        us(e2e.inter_pipelined_s)
    );
    println!(
        "    \"intersection_pipelined_vs_serial\": {:.3},",
        e2e.inter_pipelined_s / e2e.inter_serial_s
    );
    println!(
        "    \"intersection_speedup_vs_serial\": {:.3},",
        e2e.inter_serial_s / e2e.inter_pipelined_s
    );
    println!("    \"equijoin_serial_us\": {:.1},", us(e2e.join_serial_s));
    println!(
        "    \"equijoin_pipelined_us\": {:.1},",
        us(e2e.join_pipelined_s)
    );
    println!(
        "    \"equijoin_pipelined_vs_serial\": {:.3},",
        e2e.join_pipelined_s / e2e.join_serial_s
    );
    println!(
        "    \"equijoin_speedup_vs_serial\": {:.3},",
        e2e.join_serial_s / e2e.join_pipelined_s
    );
    println!(
        "    \"intersection_size_serial_us\": {:.1},",
        us(e2e.inter_size_serial_s)
    );
    println!(
        "    \"equijoin_size_serial_us\": {:.1},",
        us(e2e.join_size_serial_s)
    );
    println!(
        "    \"intersection_sharded4_us\": {:.1},",
        us(e2e.inter_sharded_s)
    );
    println!(
        "    \"intersection_sharded_vs_serial\": {:.3}",
        e2e.inter_sharded_s / e2e.inter_serial_s
    );
    println!("  }},");
    // The same serial intersection with the daemon's metrics registry
    // attached to both parties — the live-telemetry tax `--check` holds
    // to the TELEMETRY_OVERHEAD_CEILING.
    println!("  \"telemetry_overhead_qr256_n48\": {{");
    println!("    \"plain_us\": {:.1},", us(overhead.plain_s));
    println!("    \"traced_us\": {:.1},", us(overhead.traced_s));
    println!(
        "    \"traced_vs_plain\": {:.3}",
        overhead.traced_s / overhead.plain_s
    );
    println!("  }},");
    // Peak RSS after each protocol row. VmHWM is a process-lifetime
    // high-water mark, so the rows are monotone: each reflects the
    // largest working set of *any* row measured so far, not that row in
    // isolation. The interesting signal is the delta between rows.
    println!("  \"peak_rss_kb\": [");
    for (i, (row, kb)) in e2e.peak_rss_kb.iter().enumerate() {
        let comma = if i + 1 == e2e.peak_rss_kb.len() { "" } else { "," };
        println!("    {{ \"row\": \"{row}\", \"vm_hwm_kb\": {kb} }}{comma}");
    }
    println!("  ]");
    println!("}}");
}
