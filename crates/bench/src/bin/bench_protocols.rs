//! Emits `BENCH_protocols.json`: the committed throughput numbers for the
//! perf-overhaul acceptance criteria — fixed-exponent 512-bit batch
//! exponentiation (old fixed-4-bit windows vs. sliding windows + squaring
//! kernel), §6.2 `EncryptPool` scaling, and serial vs. chunk-pipelined
//! end-to-end protocol wall time.
//!
//! All numbers are wall-clock medians on the current host; the host's
//! logical core count is recorded alongside so a single-core CI box's
//! flat pool-scaling curve reads as hardware, not regression.

use std::time::Instant;

use minshare::pipeline::{self, PipelineConfig};
use minshare::prelude::*;
use minshare_bench::{bench_group, overlapping_sets};
use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::random::random_below;
use minshare_bignum::UBig;
use minshare_crypto::pool::EncryptPool;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Median wall time of `samples` runs of `f`, in seconds.
fn median_secs<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn odd_modulus(bits: usize, seed: u64) -> UBig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bytes = vec![0u8; bits / 8];
    rng.fill_bytes(&mut bytes);
    bytes[0] |= 0x80;
    let last = bytes.len() - 1;
    bytes[last] |= 1;
    UBig::from_be_bytes(&bytes)
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- 512-bit fixed-exponent batch exponentiation -------------------
    let n = odd_modulus(512, 0x5d);
    let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
    let mut rng = StdRng::seed_from_u64(3);
    let exp = random_below(&mut rng, &n);
    let bases: Vec<UBig> = (0..32).map(|_| random_below(&mut rng, &n)).collect();
    let batch = bases.len();
    let fixed4_s = median_secs(9, || {
        for b in &bases {
            std::hint::black_box(ctx.pow_fixed4_reference(b, &exp));
        }
    });
    let sliding_s = median_secs(9, || {
        std::hint::black_box(ctx.pow_batch(&bases, &exp));
    });
    let speedup = fixed4_s / sliding_s;

    // --- EncryptPool scaling (§6.2) ------------------------------------
    let g = bench_group(256);
    let mut rng = StdRng::seed_from_u64(7);
    let key = g.gen_key(&mut rng);
    let items: Vec<UBig> = (0..64).map(|_| g.sample_element(&mut rng)).collect();
    let pool_runs: Vec<(usize, f64)> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let pool = EncryptPool::new(threads);
            let t = median_secs(7, || {
                std::hint::black_box(pool.encrypt_batch(&g, &key, &items));
            });
            (threads, t)
        })
        .collect();

    // --- end-to-end serial vs. pipelined -------------------------------
    let set_n = 48usize;
    let (vs, vr) = overlapping_sets(set_n, set_n, set_n / 2);
    let pool = EncryptPool::new(4);
    let cfg = PipelineConfig { chunk_size: 8 };
    let inter_serial_s = median_secs(7, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                intersection::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                intersection::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .expect("serial intersection");
    });
    let inter_pipelined_s = median_secs(7, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                pipeline::run_intersection_sender(t, &g, &vs, &mut rng, &pool, cfg)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                pipeline::run_intersection_receiver(t, &g, &vr, &mut rng, &pool, cfg)
            },
        )
        .expect("pipelined intersection");
    });

    let entries: Vec<(Vec<u8>, Vec<u8>)> = vs
        .iter()
        .map(|v| (v.clone(), b"record-payload".to_vec()))
        .collect();
    let cipher = HybridCipher::new(g.clone(), 32);
    let join_serial_s = median_secs(7, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                equijoin::run_sender(t, &g, &cipher, &entries, &mut rng)
            },
            |t| {
                let cipher = HybridCipher::new(g.clone(), 32);
                let mut rng = StdRng::seed_from_u64(2);
                equijoin::run_receiver(t, &g, &cipher, &vr, &mut rng)
            },
        )
        .expect("serial equijoin");
    });
    let join_pipelined_s = median_secs(7, || {
        run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                pipeline::run_equijoin_sender(t, &g, &cipher, &entries, &mut rng, &pool, cfg)
            },
            |t| {
                let cipher = HybridCipher::new(g.clone(), 32);
                let mut rng = StdRng::seed_from_u64(2);
                pipeline::run_equijoin_receiver(t, &g, &cipher, &vr, &mut rng, &pool, cfg)
            },
        )
        .expect("pipelined equijoin");
    });

    // --- hand-rolled JSON (no serde in the workspace) ------------------
    let us = |s: f64| s * 1e6;
    println!("{{");
    println!("  \"host_cores\": {host_cores},");
    println!("  \"modexp_512_fixed_exponent\": {{");
    println!("    \"batch_size\": {batch},");
    println!("    \"fixed4_reference_us\": {:.1},", us(fixed4_s));
    println!("    \"sliding_window_us\": {:.1},", us(sliding_s));
    println!("    \"speedup\": {speedup:.3}");
    println!("  }},");
    println!("  \"pool_scaling_encrypt64_qr256\": [");
    let base_t = pool_runs[0].1;
    for (i, (threads, t)) in pool_runs.iter().enumerate() {
        let comma = if i + 1 == pool_runs.len() { "" } else { "," };
        println!(
            "    {{ \"threads\": {threads}, \"wall_us\": {:.1}, \"speedup_vs_1\": {:.3} }}{comma}",
            us(*t),
            base_t / t
        );
    }
    println!("  ],");
    println!("  \"e2e_qr256_n48\": {{");
    println!("    \"intersection_serial_us\": {:.1},", us(inter_serial_s));
    println!(
        "    \"intersection_pipelined_us\": {:.1},",
        us(inter_pipelined_s)
    );
    println!("    \"equijoin_serial_us\": {:.1},", us(join_serial_s));
    println!("    \"equijoin_pipelined_us\": {:.1}", us(join_pipelined_s));
    println!("  }}");
    println!("}}");
}
