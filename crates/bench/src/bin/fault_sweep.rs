//! Fault sweep: replay all four protocols over hundreds of seeded fault
//! schedules on the simulated network and prove the conformance contract
//! at scale — zero panics, zero hangs (virtual-clock deadline), zero
//! wrong answers — then re-run one schedule to demonstrate that a seed
//! reproduces its fault trace byte for byte.
//!
//! Usage: `fault_sweep [--schedules N] [--base-seed S]`
//!
//! With the default `--schedules 60`, the sweep is 60 schedules × 4
//! protocols = 240 seeded runs. The process exits non-zero on any
//! contract violation, so it can gate CI.
//!
//! Output is machine-first: stdout carries one JSON object per seeded
//! run — wall-clock time, outcome, violation latency, and the
//! trace-layer counters (`Ce` operations charged, protocol-layer frames
//! and bytes from the metrics sink) — followed by a final summary
//! object. The human-readable tallies and VIOLATION diagnostics go to
//! stderr.

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use minshare::naive::naive_intersection;
use minshare::prelude::*;
use minshare::simrun::{run_two_party_sim, SimOutcome, SimRunConfig, SimTwoPartyRun};
use minshare_bench::bench_group;
use minshare_net::FaultPlan;
use minshare_trace::sink::MetricsSink;
use minshare_trace::{TraceSink, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
    strs.iter().map(|s| s.as_bytes().to_vec()).collect()
}

fn vs() -> Vec<Vec<u8>> {
    to_values(&["apple", "grape", "melon", "peach", "berry", "mango", "lemon"])
}

fn vr() -> Vec<Vec<u8>> {
    to_values(&["grape", "kiwi", "apple", "plum", "melon"])
}

fn ms() -> Vec<Vec<u8>> {
    to_values(&["ash", "ash", "ash", "oak", "oak", "elm", "fir"])
}

fn mr() -> Vec<Vec<u8>> {
    to_values(&["oak", "ash", "oak", "yew", "yew", "elm"])
}

fn chunked() -> PipelineConfig {
    PipelineConfig::chunked(3)
}

/// A tracer feeding the shared per-run metrics sink; installed inside
/// each party closure so the thread-local trace context exists on the
/// party threads that `run_two_party_sim` spawns.
fn metrics_tracer(sink: &Arc<MetricsSink>) -> Tracer {
    Tracer::to_sink(Arc::clone(sink) as Arc<dyn TraceSink>)
}

/// Per-protocol sweep tally.
#[derive(Debug, Default)]
struct Tally {
    complete: u32,
    typed_failure: u32,
    violations: u32,
}

impl Tally {
    /// Classifies one faulty run against the perfect-link baseline and
    /// returns how many violations this seed alone contributed.
    fn record<SO, RO>(
        &mut self,
        tag: &str,
        seed: u64,
        baseline: &SimTwoPartyRun<SO, RO>,
        faulty: &SimTwoPartyRun<SO, RO>,
    ) -> u32
    where
        SO: PartialEq + std::fmt::Debug,
        RO: PartialEq + std::fmt::Debug,
    {
        let before = self.violations;
        match faulty.outcome() {
            SimOutcome::Panicked => {
                self.violations += 1;
                eprintln!(
                    "VIOLATION [{tag} seed {seed}]: party panicked: {:?} / {:?}",
                    faulty.sender, faulty.receiver
                );
                return self.violations - before;
            }
            SimOutcome::Complete => self.complete += 1,
            SimOutcome::TypedFailure => self.typed_failure += 1,
        }
        // A completing party must match the perfect-link run exactly, in
        // output and in protocol-layer bytes (retransmits excluded).
        if let (Ok(b), Ok(f)) = (&baseline.sender, &faulty.sender) {
            if b != f {
                self.violations += 1;
                eprintln!("VIOLATION [{tag} seed {seed}]: wrong sender answer");
            }
            if baseline.sender_traffic.bytes_sent() != faulty.sender_traffic.bytes_sent() {
                self.violations += 1;
                eprintln!("VIOLATION [{tag} seed {seed}]: sender leakage profile changed");
            }
        }
        if let (Ok(b), Ok(f)) = (&baseline.receiver, &faulty.receiver) {
            if b != f {
                self.violations += 1;
                eprintln!("VIOLATION [{tag} seed {seed}]: wrong receiver answer");
            }
            if baseline.receiver_traffic.bytes_sent() != faulty.receiver_traffic.bytes_sent() {
                self.violations += 1;
                eprintln!("VIOLATION [{tag} seed {seed}]: receiver leakage profile changed");
            }
        }
        self.violations - before
    }
}

fn outcome_slug(outcome: SimOutcome) -> &'static str {
    match outcome {
        SimOutcome::Complete => "complete",
        SimOutcome::TypedFailure => "typed_failure",
        SimOutcome::Panicked => "panicked",
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One JSON-lines row per seeded run. `ce_ops` counts the §6.1 units
/// charged by parties that *completed* (a failed party never reaches its
/// `*_done` event); `frames`/`bytes` count protocol-layer traffic from
/// both endpoints' counting transports, retransmits excluded.
#[allow(clippy::too_many_arguments)]
fn seed_row_json(
    tag: &str,
    scope: &str,
    seed: u64,
    outcome: SimOutcome,
    wall: Duration,
    violations: u32,
    violation_latency: Option<Duration>,
    sink: &MetricsSink,
) -> String {
    let ce_ops = sink.sum(scope, "sender_done", "encryptions")
        + sink.sum(scope, "sender_done", "decryptions")
        + sink.sum(scope, "receiver_done", "encryptions")
        + sink.sum(scope, "receiver_done", "decryptions");
    let frames = sink.sum("net", "frame_sent", "frames");
    let bytes = sink.sum("net", "frame_sent", "bytes");
    let latency = match violation_latency {
        Some(d) => format!("{:.3}", millis(d)),
        None => "null".to_string(),
    };
    format!(
        concat!(
            "{{\"fault_sweep_seed\":{{\"protocol\":\"{}\",\"seed\":{},",
            "\"outcome\":\"{}\",\"wall_ms\":{:.3},\"violations\":{},",
            "\"violation_latency_ms\":{},\"ce_ops\":{},\"frames\":{},",
            "\"bytes\":{}}}}}"
        ),
        tag,
        seed,
        outcome_slug(outcome),
        millis(wall),
        violations,
        latency,
        ce_ops,
        frames,
        bytes,
    )
}

fn sweep_protocol<SO, RO>(
    tag: &str,
    scope: &str,
    schedules: u64,
    base_seed: u64,
    run: impl Fn(&FaultPlan, &Arc<MetricsSink>) -> SimTwoPartyRun<SO, RO>,
) -> Tally
where
    SO: PartialEq + std::fmt::Debug,
    RO: PartialEq + std::fmt::Debug,
{
    let mut tally = Tally::default();
    let baseline = run(&FaultPlan::perfect(), &Arc::new(MetricsSink::new()));
    if baseline.outcome() != SimOutcome::Complete {
        tally.violations += 1;
        eprintln!(
            "VIOLATION [{tag}]: perfect link did not complete: {:?} / {:?}",
            baseline.sender, baseline.receiver
        );
        return tally;
    }
    for i in 0..schedules {
        let seed = base_seed.wrapping_add(i);
        let sink = Arc::new(MetricsSink::new());
        let started = Instant::now();
        let faulty = run(&FaultPlan::from_seed(seed), &sink);
        let wall = started.elapsed();
        let seed_violations = tally.record(tag, seed, &baseline, &faulty);
        // Violation latency: how long after the run started the contract
        // breach was established (the run itself plus the post-hoc
        // baseline comparison — the sweep only ever detects post-hoc).
        let latency = (seed_violations > 0).then(|| started.elapsed());
        println!(
            "{}",
            seed_row_json(
                tag,
                scope,
                seed,
                faulty.outcome(),
                wall,
                seed_violations,
                latency,
                &sink
            )
        );
    }
    // Reproducibility spot check: replaying the first schedule must give
    // a byte-identical fault trace and the same outcome.
    let plan = FaultPlan::from_seed(base_seed);
    let fresh = || Arc::new(MetricsSink::new());
    let (r1, r2) = (run(&plan, &fresh()), run(&plan, &fresh()));
    if r1.trace.digest() != r2.trace.digest() || r1.outcome() != r2.outcome() {
        tally.violations += 1;
        eprintln!("VIOLATION [{tag}]: seed {base_seed} did not reproduce its trace");
    }
    tally
}

fn parse_args() -> Result<(u64, u64), String> {
    let mut schedules = 60u64;
    let mut base_seed = 0x5eed_0000u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--schedules" => schedules = grab("--schedules")?,
            "--base-seed" => base_seed = grab("--base-seed")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if schedules == 0 {
        return Err("--schedules must be positive".into());
    }
    Ok((schedules, base_seed))
}

fn main() -> ExitCode {
    let (schedules, base_seed) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fault_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let group = bench_group(64);
    let pool = EncryptPool::new(2);
    let sim = SimRunConfig::default();

    eprintln!(
        "fault_sweep: {schedules} schedules x 4 protocols = {} seeded runs (base seed {base_seed:#x})",
        schedules * 4
    );

    let g = &group;
    let p = &pool;
    let intersection = sweep_protocol(
        "intersection",
        "intersection",
        schedules,
        base_seed,
        |plan, sink| {
            let (s_vals, r_vals) = (vs(), vr());
            let (s_sink, r_sink) = (Arc::clone(sink), Arc::clone(sink));
            run_two_party_sim(
                sim,
                plan,
                move |t| {
                    let _trace = minshare_trace::install(metrics_tracer(&s_sink));
                    let mut rng = StdRng::seed_from_u64(7);
                    pipeline::run_intersection_sender(t, g, &s_vals, &mut rng, p, chunked())
                },
                move |t| {
                    let _trace = minshare_trace::install(metrics_tracer(&r_sink));
                    let mut rng = StdRng::seed_from_u64(8);
                    pipeline::run_intersection_receiver(t, g, &r_vals, &mut rng, p, chunked())
                },
            )
        },
    );
    let equijoin = sweep_protocol("equijoin", "equijoin", schedules, base_seed, |plan, sink| {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = vs()
            .into_iter()
            .map(|v| {
                let mut ext = b"ext:".to_vec();
                ext.extend_from_slice(&v);
                (v, ext)
            })
            .collect();
        let r_vals = vr();
        let (s_sink, r_sink) = (Arc::clone(sink), Arc::clone(sink));
        run_two_party_sim(
            sim,
            plan,
            move |t| {
                let _trace = minshare_trace::install(metrics_tracer(&s_sink));
                let cipher = HybridCipher::new(g.clone(), 16);
                let mut rng = StdRng::seed_from_u64(9);
                pipeline::run_equijoin_sender(t, g, &cipher, &entries, &mut rng, p, chunked())
            },
            move |t| {
                let _trace = minshare_trace::install(metrics_tracer(&r_sink));
                let cipher = HybridCipher::new(g.clone(), 16);
                let mut rng = StdRng::seed_from_u64(10);
                pipeline::run_equijoin_receiver(t, g, &cipher, &r_vals, &mut rng, p, chunked())
            },
        )
    });
    let intersection_size = sweep_protocol(
        "intersection-size",
        "intersection_size",
        schedules,
        base_seed,
        |plan, sink| {
            let (s_vals, r_vals) = (vs(), vr());
            let (s_sink, r_sink) = (Arc::clone(sink), Arc::clone(sink));
            run_two_party_sim(
                sim,
                plan,
                move |t| {
                    let _trace = minshare_trace::install(metrics_tracer(&s_sink));
                    let mut rng = StdRng::seed_from_u64(11);
                    intersection_size::run_sender(t, g, &s_vals, &mut rng)
                },
                move |t| {
                    let _trace = minshare_trace::install(metrics_tracer(&r_sink));
                    let mut rng = StdRng::seed_from_u64(12);
                    intersection_size::run_receiver(t, g, &r_vals, &mut rng)
                },
            )
        },
    );
    let equijoin_size = sweep_protocol(
        "equijoin-size",
        "equijoin_size",
        schedules,
        base_seed,
        |plan, sink| {
            let (s_vals, r_vals) = (ms(), mr());
            let (s_sink, r_sink) = (Arc::clone(sink), Arc::clone(sink));
            run_two_party_sim(
                sim,
                plan,
                move |t| {
                    let _trace = minshare_trace::install(metrics_tracer(&s_sink));
                    let mut rng = StdRng::seed_from_u64(13);
                    equijoin_size::run_sender(t, g, &s_vals, &mut rng)
                },
                move |t| {
                    let _trace = minshare_trace::install(metrics_tracer(&r_sink));
                    let mut rng = StdRng::seed_from_u64(14);
                    equijoin_size::run_receiver(t, g, &r_vals, &mut rng)
                },
            )
        },
    );

    // Sanity-check the baselines against the clear-text reference once,
    // so "complete" above really means "correct", not just "consistent".
    let (clear, _) = naive_intersection(&vs(), &vr());
    let clear_set: BTreeSet<Vec<u8>> = clear.into_iter().collect();
    let reference_ok = {
        let run = run_two_party_sim(
            sim,
            &FaultPlan::perfect(),
            |t| {
                let mut rng = StdRng::seed_from_u64(7);
                pipeline::run_intersection_sender(t, g, &vs(), &mut rng, p, chunked())
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(8);
                pipeline::run_intersection_receiver(t, g, &vr(), &mut rng, p, chunked())
            },
        );
        match run.receiver {
            Ok(out) => out.intersection.into_iter().collect::<BTreeSet<_>>() == clear_set,
            Err(_) => false,
        }
    };

    let mut violations = 0;
    for (tag, tally) in [
        ("intersection", &intersection),
        ("equijoin", &equijoin),
        ("intersection-size", &intersection_size),
        ("equijoin-size", &equijoin_size),
    ] {
        eprintln!(
            "  {tag:<18} complete {:>4}  typed-failure {:>4}  violations {}",
            tally.complete, tally.typed_failure, tally.violations
        );
        violations += tally.violations;
    }
    if !reference_ok {
        violations += 1;
        eprintln!("VIOLATION: perfect-link intersection disagrees with the clear reference");
    }

    println!(
        "{{\"fault_sweep\":{{\"schedules\":{schedules},\"runs\":{},\"violations\":{violations},\"pass\":{}}}}}",
        schedules * 4,
        violations == 0
    );
    if violations == 0 {
        eprintln!(
            "fault_sweep: PASS — {} runs, zero panics, zero hangs, zero wrong answers",
            schedules * 4
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("fault_sweep: FAIL — {violations} contract violations");
        ExitCode::FAILURE
    }
}
