//! Fault sweep: replay all four protocols over hundreds of seeded fault
//! schedules on the simulated network and prove the conformance contract
//! at scale — zero panics, zero hangs (virtual-clock deadline), zero
//! wrong answers — then re-run one schedule to demonstrate that a seed
//! reproduces its fault trace byte for byte.
//!
//! Usage: `fault_sweep [--schedules N] [--base-seed S]`
//!
//! With the default `--schedules 60`, the sweep is 60 schedules × 4
//! protocols = 240 seeded runs. The process exits non-zero on any
//! contract violation, so it can gate CI.

use std::collections::BTreeSet;
use std::process::ExitCode;

use minshare::naive::naive_intersection;
use minshare::prelude::*;
use minshare::simrun::{run_two_party_sim, SimOutcome, SimRunConfig, SimTwoPartyRun};
use minshare_bench::bench_group;
use minshare_net::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
    strs.iter().map(|s| s.as_bytes().to_vec()).collect()
}

fn vs() -> Vec<Vec<u8>> {
    to_values(&["apple", "grape", "melon", "peach", "berry", "mango", "lemon"])
}

fn vr() -> Vec<Vec<u8>> {
    to_values(&["grape", "kiwi", "apple", "plum", "melon"])
}

fn ms() -> Vec<Vec<u8>> {
    to_values(&["ash", "ash", "ash", "oak", "oak", "elm", "fir"])
}

fn mr() -> Vec<Vec<u8>> {
    to_values(&["oak", "ash", "oak", "yew", "yew", "elm"])
}

fn chunked() -> PipelineConfig {
    PipelineConfig::chunked(3)
}

/// Per-protocol sweep tally.
#[derive(Debug, Default)]
struct Tally {
    complete: u32,
    typed_failure: u32,
    violations: u32,
}

impl Tally {
    fn record<SO, RO>(
        &mut self,
        tag: &str,
        seed: u64,
        baseline: &SimTwoPartyRun<SO, RO>,
        faulty: &SimTwoPartyRun<SO, RO>,
    ) where
        SO: PartialEq + std::fmt::Debug,
        RO: PartialEq + std::fmt::Debug,
    {
        match faulty.outcome() {
            SimOutcome::Panicked => {
                self.violations += 1;
                eprintln!(
                    "VIOLATION [{tag} seed {seed}]: party panicked: {:?} / {:?}",
                    faulty.sender, faulty.receiver
                );
                return;
            }
            SimOutcome::Complete => self.complete += 1,
            SimOutcome::TypedFailure => self.typed_failure += 1,
        }
        // A completing party must match the perfect-link run exactly, in
        // output and in protocol-layer bytes (retransmits excluded).
        if let (Ok(b), Ok(f)) = (&baseline.sender, &faulty.sender) {
            if b != f {
                self.violations += 1;
                eprintln!("VIOLATION [{tag} seed {seed}]: wrong sender answer");
            }
            if baseline.sender_traffic.bytes_sent() != faulty.sender_traffic.bytes_sent() {
                self.violations += 1;
                eprintln!("VIOLATION [{tag} seed {seed}]: sender leakage profile changed");
            }
        }
        if let (Ok(b), Ok(f)) = (&baseline.receiver, &faulty.receiver) {
            if b != f {
                self.violations += 1;
                eprintln!("VIOLATION [{tag} seed {seed}]: wrong receiver answer");
            }
            if baseline.receiver_traffic.bytes_sent() != faulty.receiver_traffic.bytes_sent() {
                self.violations += 1;
                eprintln!("VIOLATION [{tag} seed {seed}]: receiver leakage profile changed");
            }
        }
    }
}

fn sweep_protocol<SO, RO>(
    tag: &str,
    schedules: u64,
    base_seed: u64,
    run: impl Fn(&FaultPlan) -> SimTwoPartyRun<SO, RO>,
) -> Tally
where
    SO: PartialEq + std::fmt::Debug,
    RO: PartialEq + std::fmt::Debug,
{
    let mut tally = Tally::default();
    let baseline = run(&FaultPlan::perfect());
    if baseline.outcome() != SimOutcome::Complete {
        tally.violations += 1;
        eprintln!(
            "VIOLATION [{tag}]: perfect link did not complete: {:?} / {:?}",
            baseline.sender, baseline.receiver
        );
        return tally;
    }
    for i in 0..schedules {
        let seed = base_seed.wrapping_add(i);
        let faulty = run(&FaultPlan::from_seed(seed));
        tally.record(tag, seed, &baseline, &faulty);
    }
    // Reproducibility spot check: replaying the first schedule must give
    // a byte-identical fault trace and the same outcome.
    let plan = FaultPlan::from_seed(base_seed);
    let (r1, r2) = (run(&plan), run(&plan));
    if r1.trace.digest() != r2.trace.digest() || r1.outcome() != r2.outcome() {
        tally.violations += 1;
        eprintln!("VIOLATION [{tag}]: seed {base_seed} did not reproduce its trace");
    }
    tally
}

fn parse_args() -> Result<(u64, u64), String> {
    let mut schedules = 60u64;
    let mut base_seed = 0x5eed_0000u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--schedules" => schedules = grab("--schedules")?,
            "--base-seed" => base_seed = grab("--base-seed")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if schedules == 0 {
        return Err("--schedules must be positive".into());
    }
    Ok((schedules, base_seed))
}

fn main() -> ExitCode {
    let (schedules, base_seed) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fault_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let group = bench_group(64);
    let pool = EncryptPool::new(2);
    let sim = SimRunConfig::default();

    println!(
        "fault_sweep: {schedules} schedules x 4 protocols = {} seeded runs (base seed {base_seed:#x})",
        schedules * 4
    );

    let g = &group;
    let p = &pool;
    let intersection = sweep_protocol("intersection", schedules, base_seed, |plan| {
        let (s_vals, r_vals) = (vs(), vr());
        run_two_party_sim(
            sim,
            plan,
            move |t| {
                let mut rng = StdRng::seed_from_u64(7);
                pipeline::run_intersection_sender(t, g, &s_vals, &mut rng, p, chunked())
            },
            move |t| {
                let mut rng = StdRng::seed_from_u64(8);
                pipeline::run_intersection_receiver(t, g, &r_vals, &mut rng, p, chunked())
            },
        )
    });
    let equijoin = sweep_protocol("equijoin", schedules, base_seed, |plan| {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = vs()
            .into_iter()
            .map(|v| {
                let mut ext = b"ext:".to_vec();
                ext.extend_from_slice(&v);
                (v, ext)
            })
            .collect();
        let r_vals = vr();
        run_two_party_sim(
            sim,
            plan,
            move |t| {
                let cipher = HybridCipher::new(g.clone(), 16);
                let mut rng = StdRng::seed_from_u64(9);
                pipeline::run_equijoin_sender(t, g, &cipher, &entries, &mut rng, p, chunked())
            },
            move |t| {
                let cipher = HybridCipher::new(g.clone(), 16);
                let mut rng = StdRng::seed_from_u64(10);
                pipeline::run_equijoin_receiver(t, g, &cipher, &r_vals, &mut rng, p, chunked())
            },
        )
    });
    let intersection_size = sweep_protocol("intersection-size", schedules, base_seed, |plan| {
        let (s_vals, r_vals) = (vs(), vr());
        run_two_party_sim(
            sim,
            plan,
            move |t| {
                let mut rng = StdRng::seed_from_u64(11);
                intersection_size::run_sender(t, g, &s_vals, &mut rng)
            },
            move |t| {
                let mut rng = StdRng::seed_from_u64(12);
                intersection_size::run_receiver(t, g, &r_vals, &mut rng)
            },
        )
    });
    let equijoin_size = sweep_protocol("equijoin-size", schedules, base_seed, |plan| {
        let (s_vals, r_vals) = (ms(), mr());
        run_two_party_sim(
            sim,
            plan,
            move |t| {
                let mut rng = StdRng::seed_from_u64(13);
                equijoin_size::run_sender(t, g, &s_vals, &mut rng)
            },
            move |t| {
                let mut rng = StdRng::seed_from_u64(14);
                equijoin_size::run_receiver(t, g, &r_vals, &mut rng)
            },
        )
    });

    // Sanity-check the baselines against the clear-text reference once,
    // so "complete" above really means "correct", not just "consistent".
    let (clear, _) = naive_intersection(&vs(), &vr());
    let clear_set: BTreeSet<Vec<u8>> = clear.into_iter().collect();
    let reference_ok = {
        let run = run_two_party_sim(
            sim,
            &FaultPlan::perfect(),
            |t| {
                let mut rng = StdRng::seed_from_u64(7);
                pipeline::run_intersection_sender(t, g, &vs(), &mut rng, p, chunked())
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(8);
                pipeline::run_intersection_receiver(t, g, &vr(), &mut rng, p, chunked())
            },
        );
        match run.receiver {
            Ok(out) => out.intersection.into_iter().collect::<BTreeSet<_>>() == clear_set,
            Err(_) => false,
        }
    };

    let mut violations = 0;
    for (tag, tally) in [
        ("intersection", &intersection),
        ("equijoin", &equijoin),
        ("intersection-size", &intersection_size),
        ("equijoin-size", &equijoin_size),
    ] {
        println!(
            "  {tag:<18} complete {:>4}  typed-failure {:>4}  violations {}",
            tally.complete, tally.typed_failure, tally.violations
        );
        violations += tally.violations;
    }
    if !reference_ok {
        violations += 1;
        eprintln!("VIOLATION: perfect-link intersection disagrees with the clear reference");
    }

    if violations == 0 {
        println!(
            "fault_sweep: PASS — {} runs, zero panics, zero hangs, zero wrong answers",
            schedules * 4
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("fault_sweep: FAIL — {violations} contract violations");
        ExitCode::FAILURE
    }
}
